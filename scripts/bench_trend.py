#!/usr/bin/env python
"""Perf-trend gate: a fresh bench point vs the committed trajectory.

``BENCH_campaign.json`` is the perf trajectory of the repo; this
script re-measures its two headline *ratios* at the committed shapes
and fails when either has regressed by more than
``MAX_REGRESSION`` (default 20%):

* the batch speedup - events/sec of the batch executor vs the scalar
  path at shards=1, on the same campaign as the committed ``rows``;
* the streaming speedup - a full ``detect()`` rescan vs the per-hour
  incremental update, on the same campaign as the committed
  ``streaming_detect`` point.

Ratios (not absolute wall seconds) are compared, so the gate is
robust to the host being faster or slower than the machine that
committed the anchor point.  Each check appends one entry to the
doc's ``history`` list - the in-file tail of the perf curve (the full
curve stays in the git history of the JSON file).

Opt-in from ``scripts/check.py`` via ``REPRO_BENCH_TREND=1`` - fresh
campaign runs take ~15s, too slow for the default gate.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.congestion import detect  # noqa: E402
from repro.core.streaming import (StreamingCongestionDetector,  # noqa: E402
                                  dataset_offsets, iter_hourly)
from repro.experiments.scenario import build_scenario  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_campaign.json"

#: Fail when a fresh ratio drops below this fraction of the committed
#: anchor (0.8 == a >20% regression fails the gate).
MAX_REGRESSION = 0.8

#: Best-of runs per timed measurement (jitter suppression).
BEST_OF = 3


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _deploy_shape(shape):
    scenario = build_scenario(seed=shape["seed"], scale=shape["scale"],
                              faults=None)
    clasp = scenario.clasp
    plans = []
    for region in shape["regions"]:
        selection = clasp.select_topology_servers(region)
        plans.append(clasp.deploy_topology(
            region, selection, budget_servers=shape["budget_servers"]))
    return clasp, plans


def fresh_batch_speedup(doc):
    """events/sec ratio, batch vs scalar, at the committed shape."""
    shape = doc["shape"]
    clasp, plans = _deploy_shape(shape)
    walls = {}
    for batch in (False, True):
        wall, _dataset = _best_of(1, lambda batch=batch: clasp.run_campaign(
            plans, days=shape["days"], charge_billing=False, batch=batch))
        walls[batch] = wall
    # Identical event streams either way (tier-1 guarantee), so the
    # events/sec ratio collapses to the inverse wall-time ratio.
    return walls[False] / walls[True]


def committed_batch_speedup(doc):
    per_sec = {row["batch"]: row["events_per_sec"]
               for row in doc["rows"] if row["shards"] == 1}
    return per_sec[True] / per_sec[False]


def fresh_streaming_speedup(doc):
    """detect() rescan vs per-hour incremental, at the committed shape."""
    shape = doc["streaming_detect"]["shape"]
    clasp, plans = _deploy_shape(shape)
    dataset = clasp.run_campaign(plans, days=shape["days"],
                                 charge_billing=False)
    rows = []
    for pair in dataset.pairs():
        series = dataset.table.series(pair)
        for ts, value in zip(series["ts"], series["download"]):
            rows.append((float(ts), pair, float(value)))
    rows.sort(key=lambda row: row[0])

    rescan_wall, _report = _best_of(BEST_OF, lambda: detect(dataset))

    def replay():
        detector = StreamingCongestionDetector(
            dataset.start_ts, dataset_offsets(dataset))
        for hour_ts, hour_rows in iter_hourly(rows, dataset.start_ts,
                                              dataset.end_ts):
            detector.advance(hour_ts)
            for ts, pair, value in hour_rows:
                detector.observe(pair, ts, value)
        return detector

    stream_wall, _detector = _best_of(BEST_OF, replay)
    per_hour = stream_wall / (shape["days"] * 24)
    return rescan_wall / per_hour


def main() -> int:
    if not BENCH_PATH.exists():
        print("bench-trend: no BENCH_campaign.json to compare against",
              file=sys.stderr)
        return 1
    doc = json.loads(BENCH_PATH.read_text(encoding="utf-8"))

    checks = []  # (name, fresh, committed)
    print("== bench-trend: fresh batch point "
          f"(shape: {doc['shape']['regions']})", flush=True)
    checks.append(("batch_speedup", fresh_batch_speedup(doc),
                   committed_batch_speedup(doc)))
    print("== bench-trend: fresh streaming point", flush=True)
    checks.append(("streaming_speedup", fresh_streaming_speedup(doc),
                   doc["streaming_detect"]["speedup_incremental_vs_rescan"]))

    failures = []
    entry = {"label": doc.get("label", "?"), "verdict": "ok"}
    for name, fresh, committed in checks:
        ratio = fresh / committed
        status = "ok" if ratio >= MAX_REGRESSION else "REGRESSED"
        print(f"   {name}: fresh {fresh:.2f}x vs committed "
              f"{committed:.2f}x ({ratio:.2f} of anchor) -> {status}")
        entry[name] = round(fresh, 2)
        if ratio < MAX_REGRESSION:
            failures.append(name)
    if failures:
        entry["verdict"] = "regressed: " + ", ".join(failures)

    doc.setdefault("history", []).append(entry)
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")

    if failures:
        print(f"bench-trend: regression in {', '.join(failures)} "
              f"(> {1 - MAX_REGRESSION:.0%} below the committed anchor)",
              file=sys.stderr)
        return 1
    print("bench-trend: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
