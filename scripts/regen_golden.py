#!/usr/bin/env python
"""Regenerate the golden fixtures under ``tests/golden/``.

Run from the repo root::

    PYTHONPATH=src python scripts/regen_golden.py

Writes the campaign dataset digests (``digests.json``) and the pinned
congestion-detection output (``congestion_detection.json``).  Only
commit the result when a behaviour change was *intentional*: the
fixtures are the determinism contract that makes silent drift in the
campaign pipeline or the detector a tier-1 failure.
"""

from __future__ import annotations

import json
import pathlib
import sys

_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))
sys.path.insert(0, str(_ROOT))

from repro.core.congestion import detect               # noqa: E402
from repro.core.export import dataset_digest          # noqa: E402
from repro.experiments.scenario import build_scenario  # noqa: E402
from repro.faults import FaultPlan                     # noqa: E402

from tests.fixtures_congestion import (                # noqa: E402
    regression_dataset, serialize_report)

GOLDEN_PATH = _ROOT / "tests" / "golden" / "digests.json"
DETECTION_PATH = (_ROOT / "tests" / "golden"
                  / "congestion_detection.json")

#: The pinned campaign shape.  Keep in sync with tests/test_golden.py.
SEED = 11
SCALE = 0.05
REGION = "us-west1"
BUDGET_SERVERS = 8
DAYS = 2


def run_campaign(faults):
    scenario = build_scenario(seed=SEED, scale=SCALE, faults=faults)
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(REGION)
    plan = clasp.deploy_topology(REGION, selection,
                                 budget_servers=BUDGET_SERVERS)
    return clasp.run_campaign([plan], days=DAYS)


def main() -> int:
    golden = {
        "_comment": f"Golden dataset digests: seed={SEED} scale={SCALE} "
                    f"{REGION} budget_servers={BUDGET_SERVERS} "
                    f"days={DAYS}. Regenerate with "
                    f"scripts/regen_golden.py only when an intentional "
                    f"behaviour change shifts the dataset.",
        "faults_off": dataset_digest(run_campaign(None)),
        "faults_default": dataset_digest(
            run_campaign(FaultPlan.default())),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1) + "\n",
                           encoding="utf-8")
    print(json.dumps(golden, indent=1))
    print(f"wrote {GOLDEN_PATH}")

    detection = {
        "_comment": "Pinned detect() output over the multi-offset, "
                    "non-midnight-start dataset from "
                    "tests/fixtures_congestion.py: the "
                    "midnight-alignment contract. Regenerate with "
                    "scripts/regen_golden.py only when an intentional "
                    "behaviour change shifts detection.",
        "report": serialize_report(detect(regression_dataset(),
                                          threshold=0.5)),
    }
    DETECTION_PATH.write_text(json.dumps(detection, indent=1) + "\n",
                              encoding="utf-8")
    print(f"wrote {DETECTION_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
