#!/usr/bin/env python
"""Regenerate the golden dataset digests under ``tests/golden/``.

Run from the repo root::

    PYTHONPATH=src python scripts/regen_golden.py

Only commit the result when a behaviour change was *intentional*: the
digests are the determinism contract that makes silent drift in the
campaign pipeline a tier-1 failure.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.core.export import dataset_digest          # noqa: E402
from repro.experiments.scenario import build_scenario  # noqa: E402
from repro.faults import FaultPlan                     # noqa: E402

GOLDEN_PATH = (pathlib.Path(__file__).resolve().parent.parent
               / "tests" / "golden" / "digests.json")

#: The pinned campaign shape.  Keep in sync with tests/test_golden.py.
SEED = 11
SCALE = 0.05
REGION = "us-west1"
BUDGET_SERVERS = 8
DAYS = 2


def run_campaign(faults):
    scenario = build_scenario(seed=SEED, scale=SCALE, faults=faults)
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(REGION)
    plan = clasp.deploy_topology(REGION, selection,
                                 budget_servers=BUDGET_SERVERS)
    return clasp.run_campaign([plan], days=DAYS)


def main() -> int:
    golden = {
        "_comment": f"Golden dataset digests: seed={SEED} scale={SCALE} "
                    f"{REGION} budget_servers={BUDGET_SERVERS} "
                    f"days={DAYS}. Regenerate with "
                    f"scripts/regen_golden.py only when an intentional "
                    f"behaviour change shifts the dataset.",
        "faults_off": dataset_digest(run_campaign(None)),
        "faults_default": dataset_digest(
            run_campaign(FaultPlan.default())),
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1) + "\n",
                           encoding="utf-8")
    print(json.dumps(golden, indent=1))
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
