#!/usr/bin/env python
"""One-stop verification: lint, a SARIF smoke, the tests, a bench smoke.

This is what ``make check`` runs.  After the full lint pass, the
cross-file rules (RPR009-RPR013) run once more as a
focused ``--select`` step: that exercises RPR009's allowlist-liveness
check against the :mod:`repro.shard` module in isolation, so a stale
shared-state allowlist entry fails the build even if some other rule's
cache masked it.  The shard-equivalence suite (``tests/test_shard.py``,
byte-identical digests across shards x batch), the provider
conformance suite (``tests/test_providers.py``, every registered
cloud provider against the shared contract), and the streaming
equivalence suite (``tests/test_streaming.py``, incremental detection
== batch ``detect()`` across fault plans x shard counts) then gate
the run before the full test suite.

Coverage enforcement for ``repro.faults``, ``repro.engine``,
``repro.obs``, and ``repro.shard`` (configured in pyproject.toml,
>=90% lines) activates automatically when pytest-cov is installed;
without it the suite still runs, just without the coverage gate, so
the check works in minimal environments.  The bench smoke runs the
observability-overhead benchmark at a tiny scale to catch
instrumentation cost regressions without the full bench harness.

Set ``REPRO_BENCH_TREND=1`` to append a perf-trend gate
(``scripts/bench_trend.py``): it re-measures the batch and streaming
speedup ratios at the committed ``BENCH_campaign.json`` shapes and
fails on a >20% regression.  Opt-in because the fresh campaign runs
add ~15s.
"""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _run(label, argv):
    print(f"== {label}: {' '.join(argv)}", flush=True)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{SRC}{os.pathsep}{existing}" if existing
                         else str(SRC))
    return subprocess.call(argv, cwd=str(REPO_ROOT), env=env)


def _sarif_smoke() -> int:
    """Emit the tree as SARIF and verify the log parses and is clean."""
    print("== sarif smoke: repro.lint --format sarif", flush=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(SRC / "repro"),
         "--format", "sarif", "--no-cache"],
        cwd=str(REPO_ROOT), env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        return proc.returncode
    log = json.loads(proc.stdout)
    if log.get("version") != "2.1.0" or len(log.get("runs", [])) != 1:
        print("sarif smoke: malformed log", file=sys.stderr)
        return 1
    return 0


def main() -> int:
    status = _run("lint", [sys.executable, "-m", "repro.lint",
                           str(SRC / "repro")])
    if status != 0:
        return status

    status = _sarif_smoke()
    if status != 0:
        return status

    status = _run("shard-safety lint", [
        sys.executable, "-m", "repro.lint", str(SRC / "repro"),
        "--select", "RPR009,RPR010,RPR011,RPR012,RPR013", "--no-cache"])
    if status != 0:
        return status

    status = _run("shard equivalence gate", [
        sys.executable, "-m", "pytest", "-q", "-x", "tests/test_shard.py"])
    if status != 0:
        return status

    status = _run("provider conformance gate", [
        sys.executable, "-m", "pytest", "-q", "-x",
        "tests/test_providers.py"])
    if status != 0:
        return status

    status = _run("streaming equivalence gate", [
        sys.executable, "-m", "pytest", "-q", "-x",
        "tests/test_streaming.py"])
    if status != 0:
        return status

    pytest_argv = [sys.executable, "-m", "pytest", "-q"]
    if importlib.util.find_spec("pytest_cov") is not None:
        pytest_argv += ["--cov", "--cov-fail-under=90"]
    else:
        print("== note: pytest-cov not installed; skipping the "
              "repro.faults / repro.engine / repro.obs / repro.shard "
              "coverage gate", flush=True)
    status = _run("tests", pytest_argv)
    if status != 0:
        return status

    status = _run("bench smoke", [
        sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
        "benchmarks/bench_obs_overhead.py"])
    if status != 0:
        return status

    if os.environ.get("REPRO_BENCH_TREND") == "1":
        return _run("bench trend gate", [
            sys.executable, "scripts/bench_trend.py"])
    print("== note: REPRO_BENCH_TREND not set; skipping the perf-trend "
          "gate (scripts/bench_trend.py)", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
