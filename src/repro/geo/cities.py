"""City catalog used to place PoPs, cloud regions, and test servers.

The catalog is a curated list of real metros with approximate
coordinates and standard-time UTC offsets.  The topology generator
samples from it (population-weighted) when placing ASes, interdomain
links, and speed test servers; the differential-based experiments use
the non-U.S. entries (Europe, India, Australia, ...) to reproduce the
paper's globe-spanning server selection for europe-west1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError, ValidationError
from .coords import GeoPoint

__all__ = ["City", "CityCatalog", "default_catalog"]


@dataclass(frozen=True)
class City:
    """A metro area where network infrastructure can be placed."""

    name: str
    country: str           # ISO-3166 alpha-2
    region: str            # coarse region label: us-west, us-east, eu, apac, ...
    point: GeoPoint
    utc_offset_hours: float
    population_weight: float = 1.0  # relative sampling weight

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"Los Angeles, US"``."""
        return f"{self.name}, {self.country}"


# name, country, region, lat, lon, utc offset (standard time), weight
_CITY_ROWS = [
    # --- U.S. West ---
    ("Seattle", "US", "us-west", 47.61, -122.33, -8, 4.0),
    ("Portland", "US", "us-west", 45.52, -122.68, -8, 2.5),
    ("The Dalles", "US", "us-west", 45.59, -121.18, -8, 0.3),
    ("San Francisco", "US", "us-west", 37.77, -122.42, -8, 5.0),
    ("San Jose", "US", "us-west", 37.34, -121.89, -8, 4.0),
    ("Sacramento", "US", "us-west", 38.58, -121.49, -8, 2.0),
    ("Fresno", "US", "us-west", 36.74, -119.78, -8, 1.2),
    ("Los Angeles", "US", "us-west", 34.05, -118.24, -8, 8.0),
    ("San Diego", "US", "us-west", 32.72, -117.16, -8, 3.0),
    ("Las Vegas", "US", "us-west", 36.17, -115.14, -8, 2.5),
    ("Reno", "US", "us-west", 39.53, -119.81, -8, 0.8),
    ("Phoenix", "US", "us-west", 33.45, -112.07, -7, 3.5),
    ("Tucson", "US", "us-west", 32.22, -110.97, -7, 1.0),
    ("Salt Lake City", "US", "us-west", 40.76, -111.89, -7, 1.5),
    ("Boise", "US", "us-west", 43.62, -116.20, -7, 0.7),
    ("Denver", "US", "us-central", 39.74, -104.99, -7, 3.0),
    ("Albuquerque", "US", "us-west", 35.08, -106.65, -7, 0.9),
    ("Spokane", "US", "us-west", 47.66, -117.43, -8, 0.6),
    ("Anchorage", "US", "us-west", 61.22, -149.90, -9, 0.3),
    ("Honolulu", "US", "us-west", 21.31, -157.86, -10, 0.5),
    # --- U.S. Central ---
    ("Dallas", "US", "us-central", 32.78, -96.80, -6, 6.0),
    ("Houston", "US", "us-central", 29.76, -95.37, -6, 5.0),
    ("Austin", "US", "us-central", 30.27, -97.74, -6, 2.0),
    ("San Antonio", "US", "us-central", 29.42, -98.49, -6, 1.8),
    ("Oklahoma City", "US", "us-central", 35.47, -97.52, -6, 1.0),
    ("Kansas City", "US", "us-central", 39.10, -94.58, -6, 1.5),
    ("Council Bluffs", "US", "us-central", 41.26, -95.86, -6, 0.3),
    ("Omaha", "US", "us-central", 41.26, -95.93, -6, 0.9),
    ("Minneapolis", "US", "us-central", 44.98, -93.27, -6, 2.5),
    ("St. Louis", "US", "us-central", 38.63, -90.20, -6, 1.8),
    ("Chicago", "US", "us-central", 41.88, -87.63, -6, 7.0),
    ("Milwaukee", "US", "us-central", 43.04, -87.91, -6, 1.0),
    ("Indianapolis", "US", "us-central", 39.77, -86.16, -5, 1.4),
    ("Memphis", "US", "us-central", 35.15, -90.05, -6, 1.0),
    ("New Orleans", "US", "us-central", 29.95, -90.07, -6, 0.9),
    ("Tulsa", "US", "us-central", 36.15, -95.99, -6, 0.7),
    ("Des Moines", "US", "us-central", 41.59, -93.62, -6, 0.6),
    ("Fargo", "US", "us-central", 46.88, -96.79, -6, 0.3),
    ("Wichita", "US", "us-central", 37.69, -97.34, -6, 0.5),
    ("Little Rock", "US", "us-central", 34.75, -92.29, -6, 0.5),
    # --- U.S. East ---
    ("New York", "US", "us-east", 40.71, -74.01, -5, 10.0),
    ("Newark", "US", "us-east", 40.74, -74.17, -5, 2.0),
    ("Philadelphia", "US", "us-east", 39.95, -75.17, -5, 3.0),
    ("Boston", "US", "us-east", 42.36, -71.06, -5, 3.0),
    ("Washington", "US", "us-east", 38.91, -77.04, -5, 4.0),
    ("Ashburn", "US", "us-east", 39.04, -77.49, -5, 2.0),
    ("Baltimore", "US", "us-east", 39.29, -76.61, -5, 1.2),
    ("Pittsburgh", "US", "us-east", 40.44, -79.99, -5, 1.2),
    ("Buffalo", "US", "us-east", 42.89, -78.88, -5, 0.7),
    ("Cleveland", "US", "us-east", 41.50, -81.69, -5, 1.2),
    ("Columbus", "US", "us-east", 39.96, -83.00, -5, 1.2),
    ("Cincinnati", "US", "us-east", 39.10, -84.51, -5, 1.1),
    ("Detroit", "US", "us-east", 42.33, -83.05, -5, 2.0),
    ("Atlanta", "US", "us-east", 33.75, -84.39, -5, 4.5),
    ("Charlotte", "US", "us-east", 35.23, -80.84, -5, 1.5),
    ("Raleigh", "US", "us-east", 35.78, -78.64, -5, 1.2),
    ("Moncks Corner", "US", "us-east", 33.20, -80.01, -5, 0.2),
    ("Charleston", "US", "us-east", 32.78, -79.93, -5, 0.6),
    ("Jacksonville", "US", "us-east", 30.33, -81.66, -5, 1.0),
    ("Orlando", "US", "us-east", 28.54, -81.38, -5, 1.5),
    ("Tampa", "US", "us-east", 27.95, -82.46, -5, 1.5),
    ("Miami", "US", "us-east", 25.76, -80.19, -5, 3.0),
    ("Nashville", "US", "us-east", 36.16, -86.78, -6, 1.2),
    ("Louisville", "US", "us-east", 38.25, -85.76, -5, 0.8),
    ("Richmond", "US", "us-east", 37.54, -77.44, -5, 0.8),
    ("Norfolk", "US", "us-east", 36.85, -76.29, -5, 0.6),
    ("Albany", "US", "us-east", 42.65, -73.75, -5, 0.5),
    ("Grand Rapids", "US", "us-east", 42.96, -85.66, -5, 0.5),
    ("Knoxville", "US", "us-east", 35.96, -83.92, -5, 0.5),
    ("Birmingham", "US", "us-east", 33.52, -86.80, -6, 0.7),
    # --- Europe ---
    ("London", "GB", "eu", 51.51, -0.13, 0, 6.0),
    ("Amsterdam", "NL", "eu", 52.37, 4.90, 1, 3.0),
    ("Brussels", "BE", "eu", 50.85, 4.35, 1, 1.5),
    ("St. Ghislain", "BE", "eu", 50.45, 3.82, 1, 0.2),
    ("Paris", "FR", "eu", 48.86, 2.35, 1, 5.0),
    ("Frankfurt", "DE", "eu", 50.11, 8.68, 1, 4.0),
    ("Berlin", "DE", "eu", 52.52, 13.40, 1, 2.5),
    ("Madrid", "ES", "eu", 40.42, -3.70, 1, 2.5),
    ("Milan", "IT", "eu", 45.46, 9.19, 1, 2.5),
    ("Zurich", "CH", "eu", 47.38, 8.54, 1, 1.2),
    ("Vienna", "AT", "eu", 48.21, 16.37, 1, 1.2),
    ("Warsaw", "PL", "eu", 52.23, 21.01, 1, 1.5),
    ("Stockholm", "SE", "eu", 59.33, 18.06, 1, 1.2),
    ("Dublin", "IE", "eu", 53.35, -6.26, 0, 1.0),
    ("Lisbon", "PT", "eu", 38.72, -9.14, 0, 1.0),
    ("Prague", "CZ", "eu", 50.08, 14.44, 1, 1.0),
    ("Bucharest", "RO", "eu", 44.43, 26.10, 2, 1.0),
    ("Athens", "GR", "eu", 37.98, 23.73, 2, 0.8),
    ("Helsinki", "FI", "eu", 60.17, 24.94, 2, 0.7),
    ("Oslo", "NO", "eu", 59.91, 10.75, 1, 0.7),
    # --- Asia-Pacific / rest of world (differential-based targets) ---
    ("Mumbai", "IN", "apac", 19.08, 72.88, 5.5, 4.0),
    ("Delhi", "IN", "apac", 28.70, 77.10, 5.5, 4.0),
    ("Bangalore", "IN", "apac", 12.97, 77.59, 5.5, 2.5),
    ("Chennai", "IN", "apac", 13.08, 80.27, 5.5, 1.8),
    ("Singapore", "SG", "apac", 1.35, 103.82, 8, 2.0),
    ("Tokyo", "JP", "apac", 35.68, 139.65, 9, 5.0),
    ("Seoul", "KR", "apac", 37.57, 126.98, 9, 3.0),
    ("Hong Kong", "HK", "apac", 22.32, 114.17, 8, 2.0),
    ("Sydney", "AU", "apac", -33.87, 151.21, 10, 2.5),
    ("Melbourne", "AU", "apac", -37.81, 144.96, 10, 2.0),
    ("Perth", "AU", "apac", -31.95, 115.86, 8, 0.8),
    ("Auckland", "NZ", "apac", -36.85, 174.76, 12, 0.7),
    ("Sao Paulo", "BR", "latam", -23.55, -46.63, -3, 3.0),
    ("Buenos Aires", "AR", "latam", -34.60, -58.38, -3, 1.8),
    ("Santiago", "CL", "latam", -33.45, -70.67, -4, 1.2),
    ("Mexico City", "MX", "latam", 19.43, -99.13, -6, 2.5),
    ("Toronto", "CA", "us-east", 43.65, -79.38, -5, 2.5),
    ("Vancouver", "CA", "us-west", 49.28, -123.12, -8, 1.5),
    ("Montreal", "CA", "us-east", 45.50, -73.57, -5, 1.5),
    ("Johannesburg", "ZA", "emea", -26.20, 28.05, 2, 1.2),
    ("Dubai", "AE", "emea", 25.20, 55.27, 4, 1.2),
    ("Istanbul", "TR", "emea", 41.01, 28.98, 3, 1.5),
    ("Tel Aviv", "IL", "emea", 32.09, 34.78, 2, 1.0),
]


class CityCatalog:
    """An indexed collection of :class:`City` records with sampling."""

    def __init__(self, cities: Sequence[City]) -> None:
        if not cities:
            raise ConfigError("city catalog cannot be empty")
        self._cities: List[City] = list(cities)
        self._by_key: Dict[str, City] = {}
        for city in self._cities:
            if city.key in self._by_key:
                raise ConfigError(f"duplicate city key: {city.key}")
            self._by_key[city.key] = city

    def __len__(self) -> int:
        return len(self._cities)

    def __iter__(self) -> Iterator[City]:
        return iter(self._cities)

    def __contains__(self, key: str) -> bool:
        return key in self._by_key

    def get(self, key: str) -> City:
        """Return the city with the given ``"Name, CC"`` key."""
        try:
            return self._by_key[key]
        except KeyError:
            raise ConfigError(f"unknown city: {key!r}") from None

    def by_name(self, name: str) -> City:
        """Return the first city matching a bare name (no country)."""
        for city in self._cities:
            if city.name == name:
                return city
        raise ConfigError(f"unknown city name: {name!r}")

    def filter(self, country: Optional[str] = None,
               region: Optional[str] = None) -> "CityCatalog":
        """Return a sub-catalog restricted by country and/or region."""
        chosen = [c for c in self._cities
                  if (country is None or c.country == country)
                  and (region is None or c.region == region)]
        if not chosen:
            raise ConfigError(
                f"no cities match country={country!r} region={region!r}")
        return CityCatalog(chosen)

    def sample(self, rng: np.random.Generator, k: int = 1,
               replace: bool = True) -> List[City]:
        """Sample *k* cities weighted by population weight."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if not replace and k > len(self._cities):
            raise ValidationError(
                f"cannot sample {k} distinct cities from {len(self._cities)}")
        weights = np.array([c.population_weight for c in self._cities], dtype=float)
        weights /= weights.sum()
        idx = rng.choice(len(self._cities), size=k, replace=replace, p=weights)
        return [self._cities[i] for i in idx]

    def nearest(self, point: GeoPoint) -> City:
        """Return the catalog city geographically closest to *point*."""
        return min(self._cities, key=lambda c: c.point.distance_km(point))


def default_catalog() -> CityCatalog:
    """Build the default worldwide catalog used by the experiments."""
    cities = [
        City(name=name, country=cc, region=region,
             point=GeoPoint(lat, lon),
             utc_offset_hours=float(off), population_weight=w)
        for name, cc, region, lat, lon, off, w in _CITY_ROWS
    ]
    return CityCatalog(cities)
