"""Geography substrate: coordinates, distances, delays, and city catalog."""

from .coords import GeoPoint, haversine_km, propagation_delay_ms
from .cities import City, CityCatalog, default_catalog

__all__ = [
    "GeoPoint",
    "haversine_km",
    "propagation_delay_ms",
    "City",
    "CityCatalog",
    "default_catalog",
]
