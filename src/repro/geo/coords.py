"""Geographic coordinates, great-circle distance, and fibre delay."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..units import FIBER_KM_PER_MS, ROUTE_INFLATION
from ..errors import ValidationError

__all__ = ["GeoPoint", "haversine_km", "propagation_delay_ms"]

_EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A latitude/longitude point in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValidationError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValidationError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to *other* in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (math.sin(dlat / 2.0) ** 2
         + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2)
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def propagation_delay_ms(a: GeoPoint, b: GeoPoint,
                         inflation: float = ROUTE_INFLATION) -> float:
    """One-way fibre propagation delay between two points, in ms.

    *inflation* scales the great-circle distance up to account for the
    fact that fibre paths are not great circles.  A small floor (0.05 ms)
    models serialization and local switching even at zero distance.
    """
    if inflation < 1.0:
        raise ValidationError(f"route inflation must be >= 1, got {inflation}")
    km = haversine_km(a, b) * inflation
    return max(0.05, km / FIBER_KM_PER_MS)
