"""The metrics registry: counters, gauges, and log2 histograms.

One process-wide :class:`MetricsRegistry` (owned by :mod:`repro.obs`)
collects operational metrics from every layer of the simulation stack.
Metric values are *derived from* simulated data but never feed back
into it, so instrumentation cannot perturb a campaign.

:class:`Histogram` is the deterministic log2-bucketed histogram the
engine's :class:`~repro.engine.observers.MetricsObserver` has always
used; it moved here so the engine and the registry share one bucket
shape (the engine re-exports it for compatibility).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping

from ..errors import ConfigError, ValidationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "snapshot_percentile"]


def snapshot_percentile(hist: Mapping[str, Any], q: float) -> float:
    """Upper-bound q-quantile from a :meth:`Histogram.snapshot` dict.

    Walks the sparse ``buckets`` mapping (keys ``"<N"``) cumulatively
    and returns the upper bound of the bucket containing the target
    rank, capped at the observed ``max``.  Works on merged snapshots
    too; returns 0.0 for an empty histogram.
    """
    if not 0.0 < q <= 1.0:
        raise ValidationError(f"quantile must be in (0, 1], got {q}")
    count = int(hist.get("count", 0))
    if count == 0:
        return 0.0
    bounds = sorted((int(key[1:]), n)
                    for key, n in hist.get("buckets", {}).items())
    target = math.ceil(q * count)
    cumulative = 0
    for bound, n in bounds:
        cumulative += n
        if cumulative >= target:
            return min(float(bound), float(hist.get("max", bound)))
    return float(hist.get("max", 0.0))


class Histogram:
    """A deterministic log2-bucketed histogram of non-negative values.

    Bucket ``i`` holds values in ``[2**(i-1), 2**i)`` (bucket 0 holds
    ``[0, 1)``), capped at ``n_buckets - 1``.  Bounds are fixed, so
    two identical runs produce identical snapshots.
    """

    def __init__(self, n_buckets: int = 40) -> None:
        if n_buckets < 1:
            raise ValidationError(
                f"n_buckets must be >= 1, got {n_buckets}")
        self.n_buckets = n_buckets
        self.counts = [0] * n_buckets
        self.n = 0
        self.total = 0.0
        self.max_value = 0.0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValidationError(
                f"histogram values must be >= 0, got {value}")
        index = 0 if value < 1.0 else int(math.log2(value)) + 1
        self.counts[min(index, self.n_buckets - 1)] += 1
        self.n += 1
        self.total += value
        self.max_value = max(self.max_value, value)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Bucket bounds are fixed per shape, so merging is exact: counts
        add bucket-wise, ``n``/``total`` add, ``max_value`` takes the
        max.  Shapes must match; merging a 40-bucket histogram into a
        20-bucket one would silently clip, so it raises instead.
        """
        if not isinstance(other, Histogram):
            raise ValidationError(
                f"can only merge a Histogram, got {type(other).__name__}")
        if other.n_buckets != self.n_buckets:
            raise ValidationError(
                f"histogram shapes differ: {self.n_buckets} vs "
                f"{other.n_buckets} buckets")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.n += other.n
        self.total += other.total
        self.max_value = max(self.max_value, other.max_value)

    def snapshot(self) -> Dict[str, Any]:
        """Summary + the non-empty buckets, keyed by upper bound."""
        buckets = {f"<{2 ** index if index else 1}": count
                   for index, count in enumerate(self.counts) if count}
        return {"count": self.n, "mean": self.mean,
                "max": self.max_value, "buckets": buckets}

    def percentile(self, q: float) -> float:
        """Upper-bound q-quantile estimate from the log2 buckets."""
        return snapshot_percentile(self.snapshot(), q)


class Counter:
    """A monotonically increasing count (events, cache hits, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (inc by {n})")
        self.value += n


class Gauge:
    """A point-in-time value (queue depth, active lanes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first use.

    A name belongs to exactly one metric type for the registry's
    lifetime; asking for the same name as a different type raises
    :class:`~repro.errors.ConfigError` rather than silently splitting
    the series.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        if not name or not isinstance(name, str):
            raise ValidationError(
                f"metric name must be a non-empty string, got {name!r}")
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ConfigError(
                    f"metric {name!r} is already registered as a "
                    f"{other_kind}, cannot reuse it as a {kind}")

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._claim(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._claim(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, n_buckets: int = 40) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._claim(name, "histogram")
            metric = self._histograms[name] = Histogram(n_buckets)
        return metric

    # ------------------------------------------------------------------

    @property
    def n_metrics(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def snapshot(self) -> Dict[str, Any]:
        """One plain, sorted, mutation-safe dict of every metric."""
        return {
            "counters": {name: metric.value for name, metric
                         in sorted(self._counters.items())},
            "gauges": {name: metric.value for name, metric
                       in sorted(self._gauges.items())},
            "histograms": {name: metric.snapshot() for name, metric
                           in sorted(self._histograms.items())},
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s metrics into this registry.

        Counters add; histograms merge bucket-wise (shapes must match);
        gauges are point-in-time values, so the merged-in reading wins
        (last merge wins when folding several shards in order).  Names
        keep their type-uniqueness guarantee: a name registered here as
        one type and in *other* as another raises
        :class:`~repro.errors.ConfigError` via the usual claim check.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.n_buckets).merge(histogram)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # persistence (daemon save/restore)

    def dump_state(self) -> Dict[str, Any]:
        """JSON-serializable raw internals, exact to the float.

        Unlike :meth:`snapshot` (which exposes derived values such as
        the mean), this captures ``total``/``n``/``counts`` directly so
        :meth:`restore_state` reproduces the registry bit for bit.
        """
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {
                name: {"n_buckets": hist.n_buckets,
                       "counts": list(hist.counts), "n": hist.n,
                       "total": hist.total, "max_value": hist.max_value}
                for name, hist in sorted(self._histograms.items())},
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`dump_state` output (per-name overwrite).

        Each restored name gets exactly the dumped value; names not in
        the dump are left alone.  Restored names claim their type as
        usual, so restoring into a registry that already uses a name
        as a different type raises
        :class:`~repro.errors.ConfigError`.
        """
        for name, value in state["counters"].items():
            self.counter(name).value = float(value)
        for name, value in state["gauges"].items():
            self.gauge(name).set(value)
        for name, data in state["histograms"].items():
            n_buckets = int(data["n_buckets"])
            if len(data["counts"]) != n_buckets:
                raise ValidationError(
                    f"histogram {name!r} state is malformed: "
                    f"{len(data['counts'])} counts for {n_buckets} "
                    f"buckets")
            hist = self.histogram(name, n_buckets)
            if hist.n_buckets != n_buckets:
                raise ValidationError(
                    f"histogram {name!r} shape changed: registry has "
                    f"{hist.n_buckets} buckets, state has "
                    f"{data['n_buckets']}")
            hist.counts = [int(c) for c in data["counts"]]
            hist.n = int(data["n"])
            hist.total = float(data["total"])
            hist.max_value = float(data["max_value"])
