"""Hierarchical span tracing over the simulation stack.

A :class:`Span` is one timed region of work (a bdrmap run, a speed
test, a campaign).  Spans nest: the :class:`Tracer` keeps the active
span stack, so a ``netsim.tcp.transfer`` span opened while a
``speedtest.run_test`` span is active becomes its child, and a whole
campaign renders as one tree.

Two clocks, two rules:

* **sim-time** (:mod:`repro.simclock` timestamps) is simulation data;
  callers pass it explicitly (``sim_ts=``) and it is stored verbatim.
* **wall-time** (``time.perf_counter``) exists *only* as a span
  annotation (``wall_ms``) for profiling.  It never flows back into
  simulation state - lint rule RPR008 confines the perf-counter family
  to this package so that stays true by construction.

Finished spans land in a bounded :class:`FlightRecorder` ring buffer:
on a fault-heavy run the most recent spans survive for a post-mortem
while memory stays flat, and the drop count is reported rather than
hidden.
"""

from __future__ import annotations

import functools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ValidationError
from ..units import s_to_ms

__all__ = ["FlightRecorder", "Span", "Tracer"]

#: Annotation values that survive into :meth:`Span.payload`.
_SCALAR_TYPES = (str, int, float, bool, type(None))


@dataclass
class Span:
    """One finished (or in-flight) timed region of work."""

    span_id: int
    parent_id: Optional[int]
    name: str
    layer: str
    depth: int
    #: Simulated timestamp at entry (epoch seconds), when the caller
    #: supplied one; pure-computation spans leave it None.
    sim_ts: Optional[float] = None
    #: Wall-clock duration - an annotation for profiling, never data.
    wall_ms: float = 0.0
    #: "ok", or the exception class name that unwound the span.
    status: str = "ok"
    annotations: Dict[str, Any] = field(default_factory=dict)

    def annotate(self, **values: Any) -> "Span":
        """Attach scalar facts to the span (counts, ids, outcomes)."""
        self.annotations.update(values)
        return self

    def payload(self) -> Dict[str, Any]:
        """JSON-serializable flat view (non-scalar annotations drop)."""
        out: Dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "layer": self.layer,
            "depth": self.depth,
            "sim_ts": self.sim_ts,
            "wall_ms": round(self.wall_ms, 4),
            "status": self.status,
        }
        ann = {key: value for key, value in self.annotations.items()
               if isinstance(value, _SCALAR_TYPES)}
        if ann:
            out["annotations"] = ann
        return out


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled.

    It satisfies the full ``with tracer.span(...) as sp`` protocol at
    near-zero cost, which is what keeps instrumented hot paths cheap
    when observability is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def annotate(self, **values: Any) -> "_NullSpan":
        return self


#: Shared singleton; every disabled span is this object.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that times one span on the tracer's stack."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        self._t0 = time.perf_counter()
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        elapsed_s = time.perf_counter() - self._t0
        self.span.wall_ms = s_to_ms(elapsed_s)
        if exc_type is not None:
            self.span.status = exc_type.__name__
        self._tracer._pop(self.span)
        return False  # never swallow the exception


class FlightRecorder:
    """A bounded ring buffer of finished spans.

    Keeps the most recent *capacity* spans; older ones fall off the
    front and are only counted (``n_dropped``), so a months-long
    fault-heavy campaign can stay instrumented without growing memory.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValidationError(
                f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: "deque[Span]" = deque(maxlen=capacity)
        self.n_recorded = 0

    def record(self, span: Span) -> None:
        self._ring.append(span)
        self.n_recorded += 1

    @property
    def n_dropped(self) -> int:
        return self.n_recorded - len(self._ring)

    def spans(self) -> List[Span]:
        """The retained spans, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.n_recorded = 0


class Tracer:
    """Creates, nests, and records spans."""

    def __init__(self, capacity: int = 4096) -> None:
        self.recorder = FlightRecorder(capacity)
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # internal stack discipline (driven by _ActiveSpan)

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Exceptions unwind spans in strict LIFO order because every
        # span lives in a `with` block, so the top *is* this span.
        top = self._stack.pop()
        if top is not span:  # pragma: no cover - stack invariant
            raise ValidationError(
                f"span stack corrupted: closing {span.name!r} but "
                f"{top.name!r} was on top")
        self.recorder.record(span)

    # ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, layer: str = "other",
             sim_ts: Optional[float] = None,
             **annotations: Any) -> _ActiveSpan:
        """Open a child span of the current one (context manager)."""
        parent = self.current
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            layer=layer,
            depth=parent.depth + 1 if parent is not None else 0,
            sim_ts=sim_ts,
            annotations=dict(annotations) if annotations else {},
        )
        self._next_id += 1
        return _ActiveSpan(self, span)

    def traced(self, name: str, layer: str = "other"
               ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form: the whole function body becomes one span."""

        def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(name, layer=layer):
                    return func(*args, **kwargs)
            return wrapper

        return decorate

    # ------------------------------------------------------------------

    def finished(self) -> List[Span]:
        """Finished spans retained by the flight recorder."""
        return self.recorder.spans()

    def layers(self) -> List[str]:
        """Distinct layers observed so far, sorted."""
        return sorted({span.layer for span in self.recorder.spans()})

    def reset(self) -> None:
        """Drop recorded spans (active spans keep running)."""
        self.recorder.clear()
