"""repro.obs - process-wide observability for the simulation stack.

One tracer and one metrics registry serve the whole process, switched
on explicitly::

    import repro.obs as obs

    obs.enable()
    try:
        ...  # run a campaign; instrumented layers record into obs
        tree = obs.tracer().finished()
        snap = obs.snapshot()
    finally:
        obs.disable()

Hot paths call the module-level helpers (:func:`span`, :func:`inc`,
:func:`observe`, :func:`set_gauge`), which collapse to near-free no-ops
while obs is disabled - so instrumentation can stay in place
permanently without taxing ordinary runs.

Determinism contract: obs *reads* simulation data (timestamps, counts)
but never feeds anything back, and wall-clock time exists only inside
span annotations.  Lint rule RPR008 enforces both halves - the
``time.perf_counter`` family may only be called under ``repro.obs``,
and ``repro.obs`` may only import ``units``/``errors``/``simclock``
from the package, so it can never reach into simulation state.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import ConfigError
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import NULL_SPAN, FlightRecorder, Span, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "inc",
    "observe",
    "registry",
    "set_gauge",
    "snapshot",
    "span",
    "tracer",
]

_tracer: Optional[Tracer] = None
_registry: Optional[MetricsRegistry] = None


def enable(capacity: int = 4096) -> None:
    """Turn observability on with a fresh tracer and registry."""
    global _tracer, _registry
    _tracer = Tracer(capacity)
    _registry = MetricsRegistry()


def disable() -> None:
    """Turn observability off and drop all recorded state."""
    global _tracer, _registry
    _tracer = None
    _registry = None


def enabled() -> bool:
    return _tracer is not None


def tracer() -> Tracer:
    if _tracer is None:
        raise ConfigError(
            "observability is disabled; call repro.obs.enable() first")
    return _tracer


def registry() -> MetricsRegistry:
    if _registry is None:
        raise ConfigError(
            "observability is disabled; call repro.obs.enable() first")
    return _registry


# ----------------------------------------------------------------------
# hot-path helpers: safe to call unconditionally from any layer


def span(name: str, layer: str = "other",
         sim_ts: Optional[float] = None, **annotations: Any):
    """A span context manager, or the shared no-op when disabled."""
    if _tracer is None:
        return NULL_SPAN
    return _tracer.span(name, layer=layer, sim_ts=sim_ts, **annotations)


def inc(name: str, n: float = 1.0) -> None:
    """Bump a counter (no-op while disabled)."""
    if _registry is not None:
        _registry.counter(name).inc(n)


def observe(name: str, value: float) -> None:
    """Record one histogram sample (no-op while disabled)."""
    if _registry is not None:
        _registry.histogram(name).add(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if _registry is not None:
        _registry.gauge(name).set(value)


def snapshot() -> dict:
    """The registry snapshot, or an empty shape when disabled."""
    if _registry is None:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return _registry.snapshot()
