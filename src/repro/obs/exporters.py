"""Exporters: turn obs state into JSON-lines, Prometheus text, trees.

Everything here is a pure serializer over :class:`Span` lists and
:meth:`MetricsRegistry.snapshot` dicts - no I/O except
:func:`write_profile`, which materialises one profile directory so
``--profile PATH`` on the CLI is a single call.

Output ordering is deterministic (sorted metric names, recorder span
order), so profile artifacts diff cleanly between runs.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ValidationError
from .metrics import MetricsRegistry, snapshot_percentile
from .spans import FlightRecorder, Span, Tracer

__all__ = [
    "metrics_to_jsonlines",
    "metrics_to_prometheus",
    "render_span_tree",
    "spans_to_jsonlines",
    "write_profile",
]

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset."""
    safe = _PROM_BAD.sub("_", name)
    if not safe or safe[0].isdigit():
        safe = "_" + safe
    return safe


def _fmt(value: float) -> str:
    """Render a sample value; integral floats lose the trailing .0."""
    return str(int(value)) if float(value).is_integer() else repr(value)


# ----------------------------------------------------------------------
# metrics


def metrics_to_jsonlines(snapshot: Dict[str, Any]) -> str:
    """One JSON object per metric: ``{"kind", "name", ...}`` lines."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(json.dumps(
            {"kind": "counter", "name": name, "value": value},
            sort_keys=True))
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(json.dumps(
            {"kind": "gauge", "name": name, "value": value},
            sort_keys=True))
    for name, hist in snapshot.get("histograms", {}).items():
        lines.append(json.dumps(
            {"kind": "histogram", "name": name, **hist}, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_prometheus(snapshot: Dict[str, Any],
                          recorder: Optional[FlightRecorder] = None
                          ) -> str:
    """Prometheus text exposition format (counters, gauges, histograms).

    Histogram buckets are converted from the registry's sparse
    ``{"<N": count}`` shape to the cumulative ``le``-labelled series
    Prometheus expects, ending with the mandatory ``le="+Inf"`` bucket,
    followed by ``_p50``/``_p90``/``_p99`` upper-bound summaries.
    Passing the tracer's *recorder* additionally exposes the flight
    recorder's recorded/dropped span totals, so span loss is visible
    on the same scrape as everything else.
    """
    out: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} counter")
        out.append(f"{prom} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} gauge")
        out.append(f"{prom} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        out.append(f"# TYPE {prom} histogram")
        bounds = sorted((int(key[1:]), count) for key, count
                        in hist.get("buckets", {}).items())
        cumulative = 0
        for bound, count in bounds:
            cumulative += count
            out.append(f'{prom}_bucket{{le="{bound}"}} {cumulative}')
        out.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
        out.append(f"{prom}_sum {_fmt(hist['mean'] * hist['count'])}")
        out.append(f"{prom}_count {hist['count']}")
        for label, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
            out.append(
                f"{prom}_{label} {_fmt(snapshot_percentile(hist, q))}")
    if recorder is not None:
        out.append("# TYPE obs_spans_recorded_total counter")
        out.append(f"obs_spans_recorded_total {recorder.n_recorded}")
        out.append("# TYPE obs_spans_dropped_total counter")
        out.append(f"obs_spans_dropped_total {recorder.n_dropped}")
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# spans


def spans_to_jsonlines(spans: Sequence[Span]) -> str:
    """One JSON object per finished span, recorder order."""
    lines = [json.dumps(span.payload(), sort_keys=True) for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def render_span_tree(spans: Sequence[Span], max_spans: int = 200) -> str:
    """ASCII tree of the span forest, most useful for the CLI.

    Spans whose parent fell off the flight-recorder ring render as
    roots; at most *max_spans* lines are shown, with a trailing note
    when the forest is larger.
    """
    if max_spans < 1:
        raise ValidationError(
            f"max_spans must be >= 1, got {max_spans}")
    by_id = {span.span_id: span for span in spans}
    children: Dict[Any, List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)

    lines: List[str] = []

    def walk(span: Span, indent: int) -> None:
        if len(lines) >= max_spans:
            return
        status = "" if span.status == "ok" else f" !{span.status}"
        extra = ""
        if span.sim_ts is not None:
            extra = f" sim_ts={span.sim_ts:.0f}"
        lines.append(f"{'  ' * indent}{span.name} [{span.layer}] "
                     f"{span.wall_ms:.3f}ms{extra}{status}")
        for child in children.get(span.span_id, []):
            walk(child, indent + 1)

    for root in children.get(None, []):
        walk(root, 0)
    if len(spans) > len(lines):
        lines.append(f"... ({len(spans) - len(lines)} more spans)")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# profile directory


def write_profile(path: Union[str, Path], tracer: Tracer,
                  registry: MetricsRegistry) -> List[Path]:
    """Write a self-contained profile directory and return its files.

    Layout::

        PATH/spans.jsonl     one line per finished span
        PATH/metrics.jsonl   one line per metric
        PATH/metrics.prom    Prometheus text format
        PATH/profile.txt     human-readable span tree + hot-span table
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    spans = tracer.finished()
    snapshot = registry.snapshot()

    files = []

    def emit(name: str, text: str) -> None:
        target = root / name
        target.write_text(text, encoding="utf-8")
        files.append(target)

    emit("spans.jsonl", spans_to_jsonlines(spans))
    emit("metrics.jsonl", metrics_to_jsonlines(snapshot))
    emit("metrics.prom",
         metrics_to_prometheus(snapshot, recorder=tracer.recorder))

    # profile.txt: span tree plus the wall-time-hottest span names.
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for span in spans:
        totals[span.name] = totals.get(span.name, 0.0) + span.wall_ms
        counts[span.name] = counts.get(span.name, 0) + 1
    hot = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    report = ["# span tree", "",
              render_span_tree(spans).rstrip("\n"), "",
              "# hottest spans (total wall ms)", ""]
    for name, total in hot[:20]:
        report.append(f"{total:12.3f}ms  x{counts[name]:<6d} {name}")
    if tracer.recorder.n_dropped:
        report.append("")
        report.append(f"# flight recorder dropped "
                      f"{tracer.recorder.n_dropped} older spans")
    emit("profile.txt", "\n".join(report) + "\n")
    return files
