"""Serving layer: live congestion state for dashboard consumers.

:class:`MonitorService` sits on top of a
:class:`~repro.core.streaming.StreamingCongestionDetector` and answers
"which pairs are congested right now?" queries from a TTL-cached
snapshot, so millions of dashboard/API consumers cost one snapshot
rebuild per TTL window instead of one detector scan per query.  All
serving traffic is metered through a
:class:`~repro.obs.metrics.MetricsRegistry` (the service owns its own
instance, so metering works without enabling the global obs plane) and
exported with the existing :mod:`repro.obs` serializers
(:func:`~repro.obs.exporters.metrics_to_prometheus` /
:func:`~repro.obs.exporters.metrics_to_jsonlines`).

The load model is honest about volume: :meth:`MonitorService.serve_batch`
accounts a whole sorted arrival array in O(cache refreshes) -
segments between refreshes are pure cache hits whose count and
staleness total come from vectorized prefix arithmetic, while the
staleness *histogram* records one per-segment mean sample (documented
sampling, exact counters).  :func:`simulate_load` and
:class:`ConsumerLoadObserver` generate those arrivals from a
:class:`~repro.rng.SeedTree`, so a simulated day of a million
consumers per hour is deterministic and takes milliseconds.

Time is simulated throughout: queries carry their own ``now_ts`` and
cache expiry is measured against it, never against the wall clock.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Union

import numpy as np

from .core.streaming import StreamingCongestionDetector
from .engine.observers import Observer
from .errors import ValidationError
from .obs.exporters import metrics_to_jsonlines, metrics_to_prometheus
from .obs.metrics import MetricsRegistry
from .rng import SeedTree
from .units import HOUR

__all__ = [
    "ConsumerLoadObserver",
    "LoadReport",
    "MonitorService",
    "simulate_load",
]


@dataclass(frozen=True)
class LoadReport:
    """Aggregate serving statistics over everything metered so far."""

    queries: int
    cache_hits: int
    cache_misses: int
    mean_staleness_s: float
    max_staleness_s: float

    @property
    def hit_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.cache_hits / self.queries


class MonitorService:
    """TTL-cached congestion snapshots over a streaming detector.

    A snapshot (pair states, congested set, detector health counters)
    is rebuilt at most once per *ttl_s* of simulated time; every query
    inside the window is a cache hit served the cached result, with
    its staleness (query time minus snapshot time) metered.  The
    detector's :attr:`~StreamingCongestionDetector.version` is stamped
    on each snapshot, so the exported ``serve.version_lag`` gauge
    shows how many sealed-state changes the cache is behind.
    """

    def __init__(self, detector: StreamingCongestionDetector,
                 ttl_s: float = HOUR,
                 registry: Optional[MetricsRegistry] = None,
                 min_day_fraction: float = 0.10,
                 evaluator: Optional[Any] = None) -> None:
        if ttl_s <= 0:
            raise ValidationError(f"ttl_s must be > 0, got {ttl_s}")
        self.detector = detector
        self.ttl_s = float(ttl_s)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.min_day_fraction = min_day_fraction
        #: Optional :class:`~repro.alerts.engine.RuleEvaluator`; when
        #: set, snapshots and exports carry live alert state too.
        self.evaluator = evaluator
        self._snapshot: Optional[Dict[str, Any]] = None
        self._cached_at: Optional[float] = None
        self._stale_max = 0.0

    # ------------------------------------------------------------------
    # cache core

    @property
    def cached_at(self) -> Optional[float]:
        """Simulated time of the current snapshot (None before any)."""
        return self._cached_at

    def _valid_at(self, now_ts: float) -> bool:
        return (self._cached_at is not None
                and now_ts - self._cached_at < self.ttl_s)

    def _build_snapshot(self, now_ts: float) -> Dict[str, Any]:
        detector = self.detector
        pairs = detector.pairs()
        states = [detector.pair_state(pair, self.min_day_fraction)
                  for pair in pairs]
        congested = [state.pair for state in states if state.congested]
        return {
            "ts": now_ts,
            "version": detector.version,
            "watermark": detector.watermark,
            "metric": detector.metric,
            "threshold": detector.threshold,
            "window_days": detector.window_days,
            "n_pairs": len(pairs),
            "n_congested": len(congested),
            "congested": ["/".join(pair) for pair in congested],
            "pairs": {
                "/".join(state.pair): {
                    "measured_days": state.measured_days,
                    "congested_days": state.congested_days,
                    "n_events": state.n_events,
                    "congested": state.congested,
                } for state in states
            },
            "observed": detector.observed,
            "late_dropped": detector.late_dropped,
            "sealed_days": detector.sealed_days,
            "alerts": None if self.evaluator is None else {
                "active": self.evaluator.active_count,
                "firing": [rule.name for rule, _since
                           in self.evaluator.firing()],
                "notifications": len(self.evaluator.notifications),
            },
        }

    def _refresh(self, now_ts: float) -> Dict[str, Any]:
        snapshot = self._build_snapshot(now_ts)
        self._snapshot = snapshot
        self._cached_at = float(now_ts)
        registry = self.registry
        registry.counter("serve.cache.misses").inc()
        registry.gauge("serve.pairs").set(snapshot["n_pairs"])
        registry.gauge("serve.congested_pairs").set(
            snapshot["n_congested"])
        registry.gauge("serve.snapshot_version").set(snapshot["version"])
        registry.gauge("serve.version_lag").set(0.0)
        return snapshot

    def _meter_staleness(self, total_s: float, n: int,
                         max_s: float) -> None:
        registry = self.registry
        registry.counter("serve.staleness_s_total").inc(total_s)
        if n:
            registry.histogram("serve.staleness_s").add(total_s / n)
        if max_s > self._stale_max:
            self._stale_max = max_s
            registry.gauge("serve.staleness_s_max").set(max_s)

    # ------------------------------------------------------------------
    # queries

    def query(self, now_ts: float) -> Dict[str, Any]:
        """One consumer query at simulated time *now_ts*."""
        registry = self.registry
        registry.counter("serve.queries").inc()
        if self._valid_at(now_ts):
            registry.counter("serve.cache.hits").inc()
            assert self._cached_at is not None
            stale = max(now_ts - self._cached_at, 0.0)
            self._meter_staleness(stale, 1, stale)
            registry.gauge("serve.version_lag").set(
                self.detector.version - self._snapshot["version"])
            return self._snapshot  # type: ignore[return-value]
        return self._refresh(now_ts)

    def serve_batch(self, arrivals: Union[np.ndarray, Any]) -> int:
        """Account a sorted array of query arrival times in bulk.

        Equivalent to calling :meth:`query` once per arrival, but the
        work (and the metering) is O(number of cache refreshes): each
        refresh opens a hit segment whose bounds come from one
        ``searchsorted`` and whose staleness total is one vectorized
        sum.  Returns the number of cache refreshes performed.
        """
        times = np.asarray(arrivals, dtype=float)
        if times.ndim != 1:
            raise ValidationError(
                f"arrivals must be 1-D, got shape {times.shape}")
        if times.size == 0:
            return 0
        if np.any(np.diff(times) < 0):
            raise ValidationError("arrivals must be sorted ascending")
        registry = self.registry
        registry.counter("serve.queries").inc(int(times.size))
        refreshes = 0
        index = 0
        n = times.size
        while index < n:
            ts = float(times[index])
            if not self._valid_at(ts):
                self._refresh(ts)
                refreshes += 1
                index += 1
                if index >= n:
                    break
            assert self._cached_at is not None
            valid_until = self._cached_at + self.ttl_s
            upper = int(np.searchsorted(times, valid_until, side="left"))
            if upper <= index:
                # Next arrival is already past expiry; refresh on it.
                continue
            segment = times[index:upper]
            stale = segment - self._cached_at
            registry.counter("serve.cache.hits").inc(int(segment.size))
            self._meter_staleness(float(stale.sum()), int(segment.size),
                                  float(stale[-1]))
            index = upper
        registry.gauge("serve.version_lag").set(
            self.detector.version - self._snapshot["version"])
        return refreshes

    # ------------------------------------------------------------------
    # exports

    def load_report(self) -> LoadReport:
        snapshot = self.registry.snapshot()
        counters = snapshot["counters"]
        queries = int(counters.get("serve.queries", 0))
        hits = int(counters.get("serve.cache.hits", 0))
        misses = int(counters.get("serve.cache.misses", 0))
        total_stale = counters.get("serve.staleness_s_total", 0.0)
        return LoadReport(
            queries=queries, cache_hits=hits, cache_misses=misses,
            mean_staleness_s=(total_stale / hits if hits else 0.0),
            max_staleness_s=self._stale_max)

    def prometheus(self) -> str:
        """Serving + detector metrics (+ alerts) in Prometheus text."""
        text = metrics_to_prometheus(self.registry.snapshot())
        if self.evaluator is not None:
            from .alerts.notify import alerts_to_prometheus
            text += alerts_to_prometheus(self.evaluator)
        return text

    def json_lines(self) -> str:
        """Serving + detector metrics as JSON lines."""
        return metrics_to_jsonlines(self.registry.snapshot())

    def state_json(self, now_ts: Optional[float] = None) -> str:
        """The current (or freshly queried) snapshot as a JSON document."""
        snapshot = self._snapshot
        if now_ts is not None:
            snapshot = self.query(now_ts)
        if snapshot is None:
            raise ValidationError(
                "no snapshot cached yet; pass now_ts to query one")
        return json.dumps(snapshot, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# load generation


def simulate_load(service: MonitorService, seeds: SeedTree,
                  start_ts: float, hours: int,
                  consumers_per_hour: int) -> LoadReport:
    """Replay *hours* of dashboard traffic against the service cache.

    Each simulated hour draws *consumers_per_hour* arrival instants
    (uniform within the hour, from the ``serve.load`` seed stream) and
    serves them through :meth:`MonitorService.serve_batch`.  Returns
    the cumulative :class:`LoadReport`.
    """
    if hours < 1:
        raise ValidationError(f"hours must be >= 1, got {hours}")
    if consumers_per_hour < 1:
        raise ValidationError(
            f"consumers_per_hour must be >= 1, got {consumers_per_hour}")
    gen = seeds.generator("serve.load")
    for hour in range(hours):
        hour_ts = start_ts + hour * HOUR
        offsets = np.sort(gen.random(int(consumers_per_hour))) * HOUR
        service.serve_batch(hour_ts + offsets)
    return service.load_report()


class ConsumerLoadObserver(Observer):
    """In-campaign consumer traffic: queries ride the hour boundaries.

    Subscribed *after* the :class:`~repro.core.streaming.
    StreamingDetectorObserver`, each ``hour-started`` event draws the
    hour's consumer arrivals and serves them in bulk, so the campaign
    run itself produces the serving-load metrics.
    """

    #: Kinds that carry no serving traffic.
    IGNORED_EVENTS: ClassVar[Tuple[str, ...]] = (
        "billing-charged", "test-completed", "test-lost",
        "test-retried", "upload-attempted", "vm-preempted",
        "vm-replaced")

    def __init__(self, service: MonitorService, seeds: SeedTree,
                 consumers_per_hour: int = 10_000) -> None:
        if consumers_per_hour < 1:
            raise ValidationError(
                f"consumers_per_hour must be >= 1, got "
                f"{consumers_per_hour}")
        self.service = service
        self.consumers_per_hour = consumers_per_hour
        self._gen = seeds.generator("serve.consumers")

    def on_hour_started(self, event: Any) -> None:
        offsets = np.sort(
            self._gen.random(self.consumers_per_hour)) * HOUR
        self.service.serve_batch(event.ts + offsets)

    def on_campaign_finished(self, event: Any) -> None:
        # One final query so the exported state reflects the last hour.
        self.service.query(event.ts)
