"""The campaign event taxonomy.

Every operational fact the engine knows is published as one of the
frozen dataclasses below.  Events are plain data: strings, numbers,
booleans - plus at most one opaque ``record`` payload that observers
outside the engine may understand (the engine itself never looks
inside it).  :func:`event_payload` flattens an event to its
JSON-serializable fields, which is the wire format the trace observer
writes and what tests compare across runs.

``kind`` is a stable string identifier (``"test-completed"``, ...) so
observers can dispatch without importing every class, and so traces
stay readable after the class names refactor.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, FrozenSet, Tuple

__all__ = [
    "BillingCharged",
    "CampaignEvent",
    "CampaignFinished",
    "EVENT_KINDS",
    "HourStarted",
    "OPAQUE_FIELDS",
    "TestCompleted",
    "TestLost",
    "TestRetried",
    "UploadAttempted",
    "VMPreempted",
    "VMReplaced",
    "event_payload",
]

#: Field values of these types survive into :func:`event_payload`.
_SCALAR_TYPES = (str, int, float, bool, type(None))

#: Event fields that are *deliberately* non-scalar and therefore
#: excluded from :func:`event_payload`.  Every non-scalar field must be
#: declared here - the lint gate (RPR012) enforces it - so a payload
#: field can never be dropped from the wire format by accident.
OPAQUE_FIELDS: FrozenSet[str] = frozenset({"record"})


@dataclass(frozen=True)
class CampaignEvent:
    """Base of every engine event: when it happened, simulated time."""

    kind: ClassVar[str] = "event"

    ts: float


@dataclass(frozen=True)
class HourStarted(CampaignEvent):
    """The engine is about to step every lane for one campaign hour."""

    kind: ClassVar[str] = "hour-started"

    hour_index: int


@dataclass(frozen=True)
class TestCompleted(CampaignEvent):
    """One speed test produced a usable measurement.

    ``record`` carries the processed measurement object for dataset
    observers; the engine treats it as opaque and it is excluded from
    :func:`event_payload`.
    """

    kind: ClassVar[str] = "test-completed"

    region: str
    vm_name: str
    server_id: str
    tier: str
    latency_ms: float
    download_mbps: float
    upload_mbps: float
    #: Bytes pushed during the upload phase (what egress billing sees).
    upload_bytes: float
    #: Compressed artefact bytes left on disk for the bucket upload.
    artefact_bytes: int
    record: Any = None


@dataclass(frozen=True)
class TestRetried(CampaignEvent):
    """A test needed more than one attempt before completing."""

    kind: ClassVar[str] = "test-retried"

    region: str
    vm_name: str
    server_id: str
    #: Total attempts made, including the successful one (>= 2).
    attempts: int


@dataclass(frozen=True)
class TestLost(CampaignEvent):
    """A scheduled slot produced no usable data (see ``reason``)."""

    kind: ClassVar[str] = "test-lost"

    region: str
    vm_name: str
    server_id: str
    reason: str


@dataclass(frozen=True)
class UploadAttempted(CampaignEvent):
    """One try at shipping an hour's artefacts to the bucket."""

    kind: ClassVar[str] = "upload-attempted"

    region: str
    vm_name: str
    key: str
    #: 0-based attempt number within the bounded retry budget.
    attempt: int
    ok: bool
    size_bytes: int


@dataclass(frozen=True)
class VMPreempted(CampaignEvent):
    """The provider reclaimed a lane's VM mid-campaign."""

    kind: ClassVar[str] = "vm-preempted"

    region: str
    vm_name: str
    #: Which cloud the VM belonged to ("gcp" unless a fleet is running).
    provider: str = "gcp"


@dataclass(frozen=True)
class VMReplaced(CampaignEvent):
    """A replacement VM took over a lane's assignment."""

    kind: ClassVar[str] = "vm-replaced"

    region: str
    old_name: str
    new_name: str
    #: When the replacement can serve its first full hour.
    ready_ts: float
    #: Which cloud the VM belongs to ("gcp" unless a fleet is running).
    provider: str = "gcp"


@dataclass(frozen=True)
class BillingCharged(CampaignEvent):
    """Money left the budget (``category`` matches the cost tracker)."""

    kind: ClassVar[str] = "billing-charged"

    category: str
    amount_usd: float
    #: Which cloud's cost tracker the charge landed on.
    provider: str = "gcp"


@dataclass(frozen=True)
class CampaignFinished(CampaignEvent):
    """The engine stepped every lane through every hour."""

    kind: ClassVar[str] = "campaign-finished"

    n_hours: int


#: Every event kind the engine can emit, in a stable order.
EVENT_KINDS: Tuple[str, ...] = tuple(
    cls.kind for cls in (HourStarted, TestCompleted, TestRetried, TestLost,
                         UploadAttempted, VMPreempted, VMReplaced,
                         BillingCharged, CampaignFinished))


def event_payload(event: CampaignEvent) -> Dict[str, Any]:
    """Flatten an event to ``{"kind": ..., <scalar fields>}``.

    Opaque payload fields (anything that is not a str/int/float/bool/
    None) are dropped, so the result is always JSON-serializable and
    comparable across runs.
    """
    payload: Dict[str, Any] = {"kind": event.kind}
    for spec in fields(event):
        if spec.name in OPAQUE_FIELDS:
            continue
        value = getattr(event, spec.name)
        if isinstance(value, _SCALAR_TYPES):
            payload[spec.name] = value
    return payload
