"""Execution lanes and the staged hour loop.

A :class:`Lane` is one independent unit of campaign work: the pairing
of a deployment plan with one measurement VM assignment.  The lane
owns everything that is per-assignment state - the hourly schedule,
the earliest timestamp the current VM can serve (``ready_ts``), and
the replacement counter that names re-provisioned VMs - so no shared
dictionaries are threaded through the hour loop.

:class:`CampaignEngine` is the loop itself: advance the simulated
clock one hour, publish :class:`~repro.engine.events.HourStarted`,
step every lane, repeat; then publish
:class:`~repro.engine.events.CampaignFinished`.  *How* a lane-hour
runs (tests, retries, uploads, preemption recovery) is the
:class:`LaneStepper`'s business - the campaign layer implements it and
emits the remaining event taxonomy.  Because lanes are independent,
"step every lane" is the seam where later work can fan the lanes out
across workers without touching scheduling or analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Protocol, Sequence

from ..errors import ValidationError
from ..simclock import SimClock
from ..units import HOUR
from .bus import EventBus
from .events import CampaignFinished, HourStarted

__all__ = ["CampaignEngine", "Lane", "LaneStepper"]


@dataclass
class Lane:
    """One (plan, VM) assignment and every bit of its per-lane state.

    ``schedule``, ``vm``, and ``plan`` are opaque to the engine (they
    are core/cloud objects); the engine only guarantees their identity
    and ownership.  ``name`` is the *original* VM name and stays
    stable across replacements - it keys the lane's seed stream and
    prefixes replacement VM names.
    """

    name: str
    region: str
    schedule: Any
    vm: Any
    ready_ts: float
    plan: Any = None
    replacements: int = 0

    def next_replacement_name(self) -> str:
        """Reserve the next ``<lane>-r<n>`` replacement VM name."""
        self.replacements += 1
        return f"{self.name}-r{self.replacements}"


class LaneStepper(Protocol):
    """What the campaign layer plugs into the engine."""

    def step(self, lane: Lane, hour_start: float) -> None:
        """Run one lane for the hour starting at *hour_start*."""


class CampaignEngine:
    """Steps every lane through every hour, publishing events."""

    def __init__(self, lanes: Sequence[Lane], stepper: LaneStepper,
                 bus: EventBus, start_ts: float, n_hours: int,
                 hour_hook: Optional[Callable[[float, int], None]] = None
                 ) -> None:
        if n_hours < 1:
            raise ValidationError(f"n_hours must be >= 1, got {n_hours}")
        if start_ts % HOUR != 0:
            raise ValidationError(
                f"start_ts {start_ts} is not hour-aligned")
        self.lanes: List[Lane] = list(lanes)
        self.stepper = stepper
        self.bus = bus
        self.start_ts = float(start_ts)
        self.n_hours = int(n_hours)
        self.clock = SimClock(self.start_ts)
        #: Called as ``hook(hour_start, hour_index)`` after the
        #: HourStarted event, before any lane steps.  The vectorized
        #: batch planner uses it to pre-compute the whole hour's
        #: transfers in one numpy pass; the engine itself stays
        #: oblivious to what the hook does.
        self.hour_hook = hour_hook

    @property
    def end_ts(self) -> float:
        return self.start_ts + self.n_hours * HOUR

    def run(self) -> None:
        """The whole campaign: ``for hour: step every lane``."""
        for hour_index in range(self.n_hours):
            hour_start = self.start_ts + hour_index * HOUR
            self.clock.advance_to(hour_start)
            self.bus.emit(HourStarted(ts=hour_start, hour_index=hour_index))
            if self.hour_hook is not None:
                self.hour_hook(hour_start, hour_index)
            for lane in self.lanes:
                self.stepper.step(lane, hour_start)
        self.bus.emit(CampaignFinished(ts=self.end_ts,
                                       n_hours=self.n_hours))
