"""A synchronous, deterministic-order event bus.

Dispatch rules (these are contracts, pinned by tests):

* Subscribers are invoked in **registration order** for every event.
* :meth:`EventBus.emit` is synchronous: when it returns, every
  subscriber has seen the event.
* Events emitted *from inside a handler* (e.g. a billing observer
  publishing ``BillingCharged`` while handling ``TestCompleted``) are
  queued FIFO and dispatched after the current event finishes its full
  subscriber pass - emission order is never reordered, and no handler
  ever sees event B before event A when A was emitted first.

There are no threads, no async, no wall clocks: the bus adds zero
nondeterminism to a campaign run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List

from ..errors import ValidationError
from .events import CampaignEvent

__all__ = ["EventBus", "Handler"]

Handler = Callable[[CampaignEvent], None]


class EventBus:
    """Deterministic synchronous pub/sub for campaign events."""

    def __init__(self) -> None:
        self._handlers: List[Handler] = []
        self._queue: Deque[CampaignEvent] = deque()
        self._dispatching = False
        #: Total events dispatched (handy for progress and assertions).
        self.n_emitted = 0

    def subscribe(self, observer: Any) -> Any:
        """Register an observer; returns it (decorator-friendly).

        *observer* is either a callable taking one event, or an object
        with an ``on_event(event)`` method (the
        :class:`~repro.engine.observers.Observer` contract).
        """
        handler = getattr(observer, "on_event", observer)
        if not callable(handler):
            raise ValidationError(
                f"subscriber {observer!r} is neither callable nor has "
                f"an on_event method")
        self._handlers.append(handler)
        return observer

    @property
    def n_subscribers(self) -> int:
        return len(self._handlers)

    def emit(self, event: CampaignEvent) -> None:
        """Publish *event* to every subscriber, in registration order.

        Re-entrant calls (a handler emitting while a dispatch is in
        progress) enqueue behind the in-flight event instead of
        preempting it, so observers always see a linear, identical
        event sequence regardless of which of them emit.
        """
        self._queue.append(event)
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._queue:
                current = self._queue.popleft()
                self.n_emitted += 1
                for handler in tuple(self._handlers):
                    handler(current)
        finally:
            self._dispatching = False
