"""Pluggable observers: everything downstream of the event bus.

Observers are the only consumers of campaign telemetry; none of them
is load-bearing for the measurement itself, and all of them rebuild
their state purely from the event stream:

* :class:`DatasetObserver` - reconstructs the campaign dataset
  (measurement rows, completed/failed/retried/lost accounting) from
  events, batching each hour's rows into one ``extend`` flush.
* :class:`MetricsObserver` - per-kind event counters, latency/byte
  histograms, and billing totals, snapshotted as one plain dict.
* :class:`TraceObserver` - a JSON-lines event trace for offline
  inspection (the ``--trace`` CLI flag).
* :class:`ProgressObserver` - periodic one-line progress ticks for
  interactive runs.

The dataset the :class:`DatasetObserver` mutates is passed in as an
opaque object exposing ``extend(records)`` / ``mark_lost(...)`` plus
the four counters - the engine never imports the core layer.
"""

from __future__ import annotations

import copy
import json
from collections import Counter
from typing import (Any, Callable, ClassVar, Dict, IO, List, Optional,
                    TextIO, Tuple, Union)

from ..errors import ValidationError
from ..obs.metrics import Histogram, MetricsRegistry
from .events import CampaignEvent, event_payload

__all__ = ["DatasetObserver", "Histogram", "MetricsObserver",
           "Observer", "ProgressObserver", "TraceObserver"]


class Observer:
    """Base observer: dispatches each event to an ``on_<kind>`` method.

    Subclasses implement only the hooks they care about; kind names
    map dash-to-underscore (``test-completed`` -> ``on_test_completed``).
    Event kinds a subclass deliberately does not handle go in its
    ``IGNORED_EVENTS`` tuple - the lint gate (RPR012) requires every
    engine event kind to be either handled or listed there, so growing
    the taxonomy can never silently bypass an observer.
    """

    #: Event kinds this observer deliberately does not react to.
    IGNORED_EVENTS: ClassVar[Tuple[str, ...]] = ()

    def on_event(self, event: CampaignEvent) -> None:
        handler = getattr(self, "on_" + event.kind.replace("-", "_"),
                          None)
        if handler is not None:
            handler(event)


# ----------------------------------------------------------------------


class DatasetObserver(Observer):
    """Rebuilds a campaign dataset from the event stream.

    Completed measurements are buffered per hour and flushed in one
    batched ``dataset.extend(records)`` call on the next hour boundary
    (and once more at campaign end), which keeps the per-row append
    cost off the hot loop.  Counters are event-derived: one
    ``test-retried`` event is one retried test, one ``test-lost``
    event is one lost slot (and a ``speedtest`` loss is also a failed
    test, matching the historical accounting).
    """

    #: Infra/billing kinds that never touch dataset contents.
    IGNORED_EVENTS: ClassVar[Tuple[str, ...]] = (
        "billing-charged", "upload-attempted", "vm-preempted",
        "vm-replaced")

    def __init__(self, dataset: Any) -> None:
        self.dataset = dataset
        self._pending: List[Any] = []

    def on_hour_started(self, event: CampaignEvent) -> None:
        self._flush()

    def on_campaign_finished(self, event: CampaignEvent) -> None:
        self._flush()

    def on_test_completed(self, event: Any) -> None:
        if event.record is None:
            raise ValidationError(
                "TestCompleted event carries no record payload; the "
                "dataset observer cannot rebuild the dataset without it")
        self._pending.append(event.record)

    def on_test_retried(self, event: Any) -> None:
        self.dataset.retried_tests += 1

    def on_test_lost(self, event: Any) -> None:
        if event.reason == "speedtest":
            self.dataset.failed_tests += 1
        self.dataset.mark_lost(event.ts, event.region, event.vm_name,
                               event.server_id, event.reason)

    def _flush(self) -> None:
        if self._pending:
            self.dataset.extend(self._pending)
            self._pending.clear()


# ----------------------------------------------------------------------


# Histogram moved to repro.obs.metrics (the registry and the engine
# share one bucket shape); it stays importable from here.

#: Event fields feeding the latency / byte histograms.
_LATENCY_FIELDS = ("latency_ms",)
_BYTE_FIELDS = ("artefact_bytes", "size_bytes")


class MetricsObserver(Observer):
    """Counters + histograms + billing totals over the event stream.

    When handed a :class:`~repro.obs.metrics.MetricsRegistry`, every
    sample is mirrored into it under ``engine.*`` names, so campaign
    events land in the same process-wide snapshot as the layer
    instrumentation (spans, cache counters, ...).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.counts: Counter = Counter()
        self.lost_by_reason: Counter = Counter()
        self.latency_ms: Dict[str, Histogram] = {}
        self.bytes: Dict[str, Histogram] = {}
        self.usd_by_category: Dict[str, float] = {}
        self.registry = registry

    def on_event(self, event: CampaignEvent) -> None:
        kind = event.kind
        registry = self.registry
        self.counts[kind] += 1
        if registry is not None:
            registry.counter(f"engine.events.{kind}").inc()
        for name in _LATENCY_FIELDS:
            value = getattr(event, name, None)
            if value is not None:
                self._hist(self.latency_ms, kind).add(float(value))
                if registry is not None:
                    registry.histogram(
                        f"engine.latency_ms.{kind}").add(float(value))
        for name in _BYTE_FIELDS:
            value = getattr(event, name, None)
            if value is not None:
                self._hist(self.bytes, kind).add(float(value))
                if registry is not None:
                    registry.histogram(
                        f"engine.bytes.{kind}").add(float(value))
        if kind == "test-lost":
            self.lost_by_reason[event.reason] += 1
            if registry is not None:
                registry.counter(
                    f"engine.lost.{event.reason}").inc()
        elif kind == "billing-charged":
            self.usd_by_category[event.category] = (
                self.usd_by_category.get(event.category, 0.0)
                + event.amount_usd)
            if registry is not None:
                registry.counter(
                    f"engine.usd.{event.category}").inc(event.amount_usd)

    @staticmethod
    def _hist(table: Dict[str, Histogram], kind: str) -> Histogram:
        hist = table.get(kind)
        if hist is None:
            hist = table[kind] = Histogram()
        return hist

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def snapshot(self) -> Dict[str, Any]:
        """One plain, sorted dict with everything this observer saw.

        The result is a deep copy: mutating it (or anything nested in
        it) can never corrupt the live counters or histograms.
        """
        return copy.deepcopy({
            "events": dict(sorted(self.counts.items())),
            "lost_by_reason": dict(sorted(self.lost_by_reason.items())),
            "latency_ms": {kind: hist.snapshot()
                           for kind, hist in sorted(self.latency_ms.items())},
            "bytes": {kind: hist.snapshot()
                      for kind, hist in sorted(self.bytes.items())},
            "usd_by_category": dict(sorted(self.usd_by_category.items())),
        })


# ----------------------------------------------------------------------


class TraceObserver(Observer):
    """Writes every event as one JSON line (opaque payloads dropped).

    Accepts a path (opened lazily, closed by :meth:`close`) or any
    object with a ``write`` method (kept open; the caller owns it).
    """

    def __init__(self, target: Union[str, "IO[str]", TextIO]) -> None:
        self._path: Optional[str] = None
        self._handle: Optional[Any] = None
        if hasattr(target, "write"):
            self._handle = target
            self._owns_handle = False
        else:
            self._path = str(target)
            self._owns_handle = True
        self.n_written = 0

    def on_event(self, event: CampaignEvent) -> None:
        if self._handle is None:
            self._handle = open(self._path, "w", encoding="utf-8")
        self._handle.write(json.dumps(event_payload(event),
                                      sort_keys=True) + "\n")
        self.n_written += 1

    def close(self) -> None:
        """Flush and (when we opened the file) close the trace."""
        if self._handle is None:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceObserver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------


class ProgressObserver(Observer):
    """One-line campaign progress ticks for interactive runs."""

    #: Kinds with no bearing on the tests/lost tallies it prints.
    IGNORED_EVENTS: ClassVar[Tuple[str, ...]] = (
        "billing-charged", "test-retried", "upload-attempted",
        "vm-preempted", "vm-replaced")

    def __init__(self, echo: Optional[Callable[[str], None]] = None,
                 every_hours: int = 24) -> None:
        if every_hours < 1:
            raise ValidationError(
                f"every_hours must be >= 1, got {every_hours}")
        self.echo = echo if echo is not None else print
        self.every_hours = every_hours
        self.completed = 0
        self.lost = 0

    def on_test_completed(self, event: CampaignEvent) -> None:
        self.completed += 1

    def on_test_lost(self, event: CampaignEvent) -> None:
        self.lost += 1

    def on_hour_started(self, event: Any) -> None:
        if event.hour_index % self.every_hours == 0:
            self.echo(f"[campaign] hour {event.hour_index}: "
                      f"{self.completed} tests, {self.lost} lost")

    def on_campaign_finished(self, event: Any) -> None:
        self.echo(f"[campaign] finished {event.n_hours} hours: "
                  f"{self.completed} tests, {self.lost} lost")
