"""The staged campaign engine: events, bus, lanes, observers.

This package is the instrumentation seam of the campaign stack.  The
hour loop lives here as :class:`~repro.engine.lanes.CampaignEngine`,
which steps one independent :class:`~repro.engine.lanes.Lane` per
(plan, VM) assignment and publishes every operational fact - tests
completed, retries, losses, uploads, preemptions, billing - as a typed
event on a deterministic :class:`~repro.engine.bus.EventBus`.

The engine is deliberately domain-agnostic: it may import only
``repro.units``, ``repro.errors``, ``repro.rng``, and
``repro.simclock`` (enforced by lint rule RPR007).  Domain objects
(VMs, schedules, deployment plans, datasets) pass through it as opaque
payloads; the campaign layer in :mod:`repro.core.campaign` supplies
the lane stepper that knows how to run an hour, and observers rebuild
datasets, metrics, traces, and progress ticks from the event stream
alone.
"""

from .bus import EventBus
from .events import (BillingCharged, CampaignEvent, CampaignFinished,
                     EVENT_KINDS, HourStarted, TestCompleted, TestLost,
                     TestRetried, UploadAttempted, VMPreempted, VMReplaced,
                     event_payload)
from .lanes import CampaignEngine, Lane, LaneStepper
from .observers import (DatasetObserver, Histogram, MetricsObserver,
                        Observer, ProgressObserver, TraceObserver)

__all__ = [
    "BillingCharged",
    "CampaignEngine",
    "CampaignEvent",
    "CampaignFinished",
    "DatasetObserver",
    "EVENT_KINDS",
    "EventBus",
    "Histogram",
    "HourStarted",
    "Lane",
    "LaneStepper",
    "MetricsObserver",
    "Observer",
    "ProgressObserver",
    "TestCompleted",
    "TestLost",
    "TestRetried",
    "TraceObserver",
    "UploadAttempted",
    "VMPreempted",
    "VMReplaced",
    "event_payload",
]
