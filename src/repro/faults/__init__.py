"""Deterministic fault injection for the cloud/campaign stack.

CLASP ran on real GCP for five months, where VM preemptions, failed
speed tests, upload hiccups, and link flaps are routine.  This package
models that operational noise *reproducibly*: a :class:`FaultPlan`
declares the rates, a :class:`FaultInjector` combines the plan with a
:class:`~repro.rng.SeedTree`, and every per-event decision is a pure
function of the root seed - so the same seed always produces the same
fault schedule and (with the recovery paths in the orchestrator and
campaign runner) the byte-identical dataset.

Injection sites:

==========================  ======================================
fault kind                  site
==========================  ======================================
VM preemption / slow start  ``cloud.api`` / ``cloud.vm``
speed-test failure          ``speedtest.protocol``
truncated transfer          ``speedtest.protocol`` (browser retries)
upload failure              ``cloud.storage``
link flap                   ``netsim.linkstate``
==========================  ======================================
"""

from .injector import FaultEvent, FaultInjector
from .plan import FaultKind, FaultPlan

__all__ = ["FaultEvent", "FaultInjector", "FaultKind", "FaultPlan"]
