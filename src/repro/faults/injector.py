"""Seed-deterministic fault decisions.

The :class:`FaultInjector` answers one question per injection site:
*does this fault fire for this entity at this simulated time?*  Every
decision is a pure function of ``(root seed, fault kind, entity key,
timestamp)``: the injector derives a dedicated RNG stream per decision
from its :class:`~repro.rng.SeedTree` label space, so

* the same seed always yields the identical fault schedule (which is
  what makes golden-dataset tests possible),
* decisions are independent of *call order* - adding a new consumer or
  skipping a preempted VM's hour never perturbs other decisions, and
* no wall-clock or OS entropy is involved anywhere.

Positive decisions are logged as :class:`FaultEvent` records so tests
and the CLI can report what was injected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rng import SeedTree
from ..units import HOUR
from .plan import FaultKind, FaultPlan

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what, where, when."""

    kind: FaultKind
    key: str
    ts: float


class FaultInjector:
    """Deterministic per-event fault decisions for one campaign."""

    def __init__(self, plan: FaultPlan, seeds: SeedTree) -> None:
        self.plan = plan
        self._seeds = seeds
        self.events: List[FaultEvent] = []
        self._cache: Dict[Tuple[FaultKind, str, int], bool] = {}

    # ------------------------------------------------------------------
    # internals

    def _stream(self, kind: FaultKind, key: str, ts: float):
        """A fresh generator unique to (kind, key, ts) - order-free."""
        label = f"{kind.value}/{key}/{int(ts)}"
        return self._seeds.generator(label, allow_reuse=True)

    def _decide(self, kind: FaultKind, key: str, ts: float,
                rate: float) -> bool:
        if not self.plan.enabled or rate <= 0.0:
            return False
        cache_key = (kind, key, int(ts))
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        hit = bool(self._stream(kind, key, ts).random() < rate)
        self._cache[cache_key] = hit
        if hit:
            self.events.append(FaultEvent(kind, key, float(ts)))
        return hit

    # ------------------------------------------------------------------
    # site APIs

    def vm_preempted(self, vm_name: str, hour_ts: float) -> bool:
        """Is this VM preempted during the hour starting at *hour_ts*?"""
        return self._decide(FaultKind.VM_PREEMPTION, vm_name, hour_ts,
                            self.plan.vm_preemption_per_hour)

    def slow_start_hours(self, vm_name: str, ts: float) -> int:
        """Extra warm-up hours a replacement VM misses (0..max)."""
        if not self.plan.enabled or self.plan.slow_start_max_hours == 0:
            return 0
        draw = self._stream(FaultKind.VM_SLOW_START, vm_name, ts)
        hours = int(draw.integers(0, self.plan.slow_start_max_hours + 1))
        if hours:
            self.events.append(
                FaultEvent(FaultKind.VM_SLOW_START, vm_name, float(ts)))
        return hours

    def speedtest_fails(self, vm_name: str, server_id: str,
                        ts: float) -> bool:
        """Does the test from *vm_name* to *server_id* fail outright?"""
        return self._decide(FaultKind.SPEEDTEST_FAILURE,
                            f"{vm_name}->{server_id}", ts,
                            self.plan.speedtest_failure_rate)

    def truncation_fraction(self, vm_name: str, server_id: str,
                            ts: float) -> Optional[float]:
        """Fraction of the transfer completed before truncation.

        ``None`` when the transfer runs to completion; otherwise a
        value in ``[0.2, 0.8)``.
        """
        key = f"{vm_name}->{server_id}"
        if not self._decide(FaultKind.TRUNCATED_TRANSFER, key, ts,
                            self.plan.truncated_transfer_rate):
            return None
        draw = self._stream(FaultKind.TRUNCATED_TRANSFER,
                            f"{key}/fraction", ts)
        return float(draw.uniform(0.2, 0.8))

    def upload_fails(self, bucket_name: str, key: str,
                     attempt: int) -> bool:
        """Does upload attempt *attempt* of *key* fail transiently?

        The attempt number is part of the decision key, so a retried
        upload re-rolls independently and eventually succeeds (or the
        caller exhausts its bounded retry budget).
        """
        return self._decide(FaultKind.UPLOAD_FAILURE,
                            f"{bucket_name}/{key}#{attempt}", 0.0,
                            self.plan.upload_failure_rate)

    def link_flap_utilization(self, link_id: int, direction: int,
                              ts: float) -> Optional[float]:
        """Utilization floor for a flapped link-hour, else ``None``.

        Flaps are hour-granular: every evaluation within the same hour
        sees the same (single) decision.
        """
        hour_index = int(ts // HOUR)
        if not self._decide(FaultKind.LINK_FLAP,
                            f"{link_id}/{direction}", hour_index * HOUR,
                            self.plan.link_flap_per_hour):
            return None
        return self.plan.link_flap_utilization

    def backoff_s(self, attempt: int) -> float:
        """Deterministic backoff before retry *attempt* (0-based)."""
        return self.plan.backoff_s(attempt)

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Injected-event counts per fault kind (for reports/CLI)."""
        counts: Dict[str, int] = {kind.value: 0 for kind in FaultKind}
        for event in self.events:
            counts[event.kind.value] += 1
        return counts
