"""Fault-plan configuration.

A :class:`FaultPlan` declares *how much* operational noise the
simulated cloud produces: VM preemptions, replacement VMs that are
slow to come up, transient speed-test failures and truncated
transfers, storage-upload hiccups, and link flaps.  It also fixes the
recovery budget the campaign stack is allowed (bounded retries with a
deterministic exponential backoff).

The plan carries no randomness of its own.  The
:class:`~repro.faults.injector.FaultInjector` combines a plan with a
:class:`~repro.rng.SeedTree`, which is what makes every fault schedule
reproducible from one integer seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ValidationError

__all__ = ["FaultKind", "FaultPlan"]


class FaultKind(enum.Enum):
    """Every category of injected fault, keyed by its injection site."""

    #: A running measurement VM is reclaimed by the provider
    #: (``cloud.api`` / ``cloud.vm``).
    VM_PREEMPTION = "vm-preemption"
    #: A replacement VM needs extra hours before it serves tests
    #: (``cloud.api``).
    VM_SLOW_START = "vm-slow-start"
    #: One speed test fails outright (``speedtest.protocol``).
    SPEEDTEST_FAILURE = "speedtest-failure"
    #: A bulk-transfer phase ends early (``speedtest.protocol`` /
    #: ``speedtest.browser`` retry path).
    TRUNCATED_TRANSFER = "truncated-transfer"
    #: Shipping an hour's artefacts to the bucket fails
    #: (``cloud.storage``).
    UPLOAD_FAILURE = "upload-failure"
    #: A link direction is saturated for a whole hour
    #: (``netsim.linkstate``).
    LINK_FLAP = "link-flap"


_RATE_FIELDS = (
    "vm_preemption_per_hour",
    "speedtest_failure_rate",
    "truncated_transfer_rate",
    "upload_failure_rate",
    "link_flap_per_hour",
)


@dataclass(frozen=True)
class FaultPlan:
    """Rates and recovery knobs for deterministic fault injection.

    All ``*_rate`` / ``*_per_hour`` values are per-event probabilities
    in ``[0, 1)``.  A disabled plan (``enabled=False``) injects
    nothing regardless of the rates.
    """

    enabled: bool = True
    #: Probability a running VM is preempted in any given hour.
    vm_preemption_per_hour: float = 0.0
    #: A replacement VM misses up to this many extra hours warming up.
    slow_start_max_hours: int = 2
    #: Probability one speed test fails outright.
    speedtest_failure_rate: float = 0.0
    #: Probability a test's bulk transfer is truncated mid-flight.
    truncated_transfer_rate: float = 0.0
    #: Probability one bucket-upload attempt fails.
    upload_failure_rate: float = 0.0
    #: Probability a link direction flaps for a given hour.
    link_flap_per_hour: float = 0.0
    #: Background utilization a flapped link is forced to (>= 1 means
    #: saturated: heavy loss, bufferbloat-level queueing).
    link_flap_utilization: float = 2.5
    #: Bounded-retry budget for tests and uploads.
    max_retries: int = 3
    #: Deterministic backoff: ``backoff_base_s * backoff_factor**attempt``.
    backoff_base_s: float = 5.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValidationError(
                    f"{name} must be in [0, 1), got {value}")
        if self.slow_start_max_hours < 0:
            raise ValidationError(
                f"slow_start_max_hours must be >= 0, "
                f"got {self.slow_start_max_hours}")
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s <= 0 or self.backoff_factor < 1.0:
            raise ValidationError(
                "backoff_base_s must be > 0 and backoff_factor >= 1")
        if self.link_flap_utilization < 1.0:
            raise ValidationError(
                f"link_flap_utilization must be >= 1, "
                f"got {self.link_flap_utilization}")

    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan that injects nothing (faults disabled)."""
        return cls(enabled=False)

    @classmethod
    def default(cls) -> "FaultPlan":
        """Moderate rates matching a long-running real GCP campaign."""
        return cls(
            vm_preemption_per_hour=0.002,
            slow_start_max_hours=2,
            speedtest_failure_rate=0.01,
            truncated_transfer_rate=0.01,
            upload_failure_rate=0.02,
            link_flap_per_hour=0.001,
        )

    @classmethod
    def heavy(cls) -> "FaultPlan":
        """Aggressive rates for stress-testing the recovery paths."""
        return cls(
            vm_preemption_per_hour=0.05,
            slow_start_max_hours=3,
            speedtest_failure_rate=0.10,
            truncated_transfer_rate=0.10,
            upload_failure_rate=0.15,
            link_flap_per_hour=0.01,
        )

    def backoff_s(self, attempt: int) -> float:
        """Deterministic backoff before retry number *attempt* (0-based)."""
        if attempt < 0:
            raise ValidationError(f"attempt must be >= 0, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** attempt

    def rate_of(self, kind: FaultKind) -> float:
        """The configured probability for one fault kind."""
        return {
            FaultKind.VM_PREEMPTION: self.vm_preemption_per_hour,
            FaultKind.SPEEDTEST_FAILURE: self.speedtest_failure_rate,
            FaultKind.TRUNCATED_TRANSFER: self.truncated_transfer_rate,
            FaultKind.UPLOAD_FAILURE: self.upload_failure_rate,
            FaultKind.LINK_FLAP: self.link_flap_per_hour,
            # Slow start is conditional on a preemption, not a rate.
            FaultKind.VM_SLOW_START: 1.0 if self.slow_start_max_hours else 0.0,
        }[kind]
