"""Dataset export / import.

The paper released CLASP's source and data publicly; this module is
the reproduction's equivalent: a campaign dataset round-trips through
a documented on-disk layout so analyses can run outside this package.

Layout of an export directory::

    manifest.json            # schema version, campaign window, counts
    servers.json             # per-server metadata (ServerMeta fields)
    measurements.csv         # one row per test, tagged columns
    lost.csv                 # one row per lost slot (schema >= 2)

CSV columns: ``ts, region, server_id, tier, download_mbps,
upload_mbps, latency_ms, download_loss_rate, upload_loss_rate``;
lost.csv columns: ``ts, region, vm_name, server_id, reason``.

:func:`dataset_digest` hashes the same canonical serializations that
the exporter writes, so "two runs produced the same dataset" can be
asserted from a single hex string without touching the filesystem.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import pathlib
from typing import Union

from ..cloud.providers import resolve_tier
from ..errors import AnalysisError
from .campaign import CampaignDataset
from .records import MeasurementRecord, ServerMeta

__all__ = ["dataset_digest", "export_dataset", "load_dataset",
           "SCHEMA_VERSION"]

SCHEMA_VERSION = 2

#: Schema versions :func:`load_dataset` understands.  Version 1 exports
#: lack ``lost.csv`` and the retried/lost manifest counters.
_SUPPORTED_SCHEMAS = (1, 2)

_CSV_COLUMNS = ("ts", "region", "server_id", "tier", "download_mbps",
                "upload_mbps", "latency_ms", "download_loss_rate",
                "upload_loss_rate")

_LOST_COLUMNS = ("ts", "region", "vm_name", "server_id", "reason")


# ----------------------------------------------------------------------
# canonical serializations (shared by the exporter and the digest)

def _serialize_servers(dataset: CampaignDataset) -> str:
    servers = {
        server_id: {
            "server_id": meta.server_id,
            "asn": meta.asn,
            "sponsor": meta.sponsor,
            "city_key": meta.city_key,
            "country": meta.country,
            "utc_offset_hours": meta.utc_offset_hours,
            "lat": meta.lat,
            "lon": meta.lon,
            "business_type": meta.business_type,
        }
        for server_id, meta in sorted(dataset.servers.items())
    }
    return json.dumps(servers, indent=1, sort_keys=True)


def _serialize_measurements(dataset: CampaignDataset) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_CSV_COLUMNS)
    for tags in dataset.table.tag_combinations():
        region, server_id, tier = tags
        series = dataset.table.series(tags)
        for i in range(series["ts"].size):
            writer.writerow([
                f"{series['ts'][i]:.0f}", region, server_id, tier,
                f"{series['download'][i]:.3f}",
                f"{series['upload'][i]:.3f}",
                f"{series['latency'][i]:.3f}",
                f"{series['loss_down'][i]:.6g}",
                f"{series['loss_up'][i]:.6g}",
            ])
    return buffer.getvalue()


def _serialize_lost(dataset: CampaignDataset) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_LOST_COLUMNS)
    ordered = sorted(dataset.lost,
                     key=lambda r: (r.ts, r.vm_name, r.server_id, r.reason))
    for rec in ordered:
        writer.writerow([f"{rec.ts:.0f}", rec.region, rec.vm_name,
                         rec.server_id, rec.reason])
    return buffer.getvalue()


def dataset_digest(dataset: CampaignDataset) -> str:
    """Canonical sha256 over servers + measurements + lost slots.

    Two campaigns with the same seed and config must produce the same
    digest; any drift in measured values, server metadata, or fault
    tagging changes it.  This is the determinism contract tier-1 tests
    pin with golden values.
    """
    hasher = hashlib.sha256()
    for section in (_serialize_servers(dataset),
                    _serialize_measurements(dataset),
                    _serialize_lost(dataset)):
        hasher.update(section.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


# ----------------------------------------------------------------------

def export_dataset(dataset: CampaignDataset,
                   directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a dataset to *directory*; returns the manifest path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    servers_text = _serialize_servers(dataset)
    (path / "servers.json").write_text(servers_text, encoding="utf-8")

    measurements_text = _serialize_measurements(dataset)
    (path / "measurements.csv").write_text(measurements_text,
                                           encoding="utf-8")

    lost_text = _serialize_lost(dataset)
    (path / "lost.csv").write_text(lost_text, encoding="utf-8")

    n_rows = max(0, measurements_text.count("\n") - 1)
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "provider": getattr(dataset, "provider", "gcp"),
        "start_ts": dataset.start_ts,
        "end_ts": dataset.end_ts,
        "n_measurements": n_rows,
        "n_servers": len(dataset.servers),
        "completed_tests": dataset.completed_tests,
        "failed_tests": dataset.failed_tests,
        "retried_tests": dataset.retried_tests,
        "lost_tests": dataset.lost_tests,
        "dataset_digest": dataset_digest(dataset),
    }
    manifest_path = path / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=1,
                                        sort_keys=True),
                             encoding="utf-8")
    return manifest_path


def load_dataset(directory: Union[str, pathlib.Path]) -> CampaignDataset:
    """Rebuild a :class:`CampaignDataset` from an export directory."""
    path = pathlib.Path(directory)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise AnalysisError(f"no manifest.json under {path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("schema_version") not in _SUPPORTED_SCHEMAS:
        raise AnalysisError(
            f"unsupported schema version "
            f"{manifest.get('schema_version')!r}")

    # Datasets written before the provider abstraction carry no
    # provider key; they are GCP by definition.
    provider = manifest.get("provider", "gcp")
    dataset = CampaignDataset(manifest["start_ts"], manifest["end_ts"],
                              provider=provider)
    servers = json.loads((path / "servers.json")
                         .read_text(encoding="utf-8"))
    for raw in servers.values():
        dataset.add_server_meta(ServerMeta(**raw))

    with open(path / "measurements.csv", newline="",
              encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if tuple(reader.fieldnames or ()) != _CSV_COLUMNS:
            raise AnalysisError("measurements.csv column mismatch")
        for row in reader:
            dataset.record(MeasurementRecord(
                ts=float(row["ts"]),
                region=row["region"],
                vm_name="",
                server_id=row["server_id"],
                tier=resolve_tier(row["tier"], provider),
                download_mbps=float(row["download_mbps"]),
                upload_mbps=float(row["upload_mbps"]),
                latency_ms=float(row["latency_ms"]),
                download_loss_rate=float(row["download_loss_rate"]),
                upload_loss_rate=float(row["upload_loss_rate"]),
            ))
    lost_path = path / "lost.csv"
    if lost_path.exists():
        with open(lost_path, newline="", encoding="utf-8") as handle:
            lost_reader = csv.DictReader(handle)
            if tuple(lost_reader.fieldnames or ()) != _LOST_COLUMNS:
                raise AnalysisError("lost.csv column mismatch")
            for row in lost_reader:
                dataset.mark_lost(float(row["ts"]), row["region"],
                                  row["vm_name"], row["server_id"],
                                  row["reason"])
    dataset.failed_tests = int(manifest.get("failed_tests", 0))
    dataset.retried_tests = int(manifest.get("retried_tests", 0))
    return dataset
