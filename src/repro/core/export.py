"""Dataset export / import.

The paper released CLASP's source and data publicly; this module is
the reproduction's equivalent: a campaign dataset round-trips through
a documented on-disk layout so analyses can run outside this package.

Layout of an export directory::

    manifest.json            # schema version, campaign window, counts
    servers.json             # per-server metadata (ServerMeta fields)
    measurements.csv         # one row per test, tagged columns

CSV columns: ``ts, region, server_id, tier, download_mbps,
upload_mbps, latency_ms, download_loss_rate, upload_loss_rate``.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Union

from ..cloud.tiers import NetworkTier
from ..errors import AnalysisError
from .campaign import CampaignDataset
from .records import MeasurementRecord, ServerMeta

__all__ = ["export_dataset", "load_dataset", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1

_CSV_COLUMNS = ("ts", "region", "server_id", "tier", "download_mbps",
                "upload_mbps", "latency_ms", "download_loss_rate",
                "upload_loss_rate")


def export_dataset(dataset: CampaignDataset,
                   directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write a dataset to *directory*; returns the manifest path."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    servers = {
        server_id: {
            "server_id": meta.server_id,
            "asn": meta.asn,
            "sponsor": meta.sponsor,
            "city_key": meta.city_key,
            "country": meta.country,
            "utc_offset_hours": meta.utc_offset_hours,
            "lat": meta.lat,
            "lon": meta.lon,
            "business_type": meta.business_type,
        }
        for server_id, meta in sorted(dataset.servers.items())
    }
    (path / "servers.json").write_text(
        json.dumps(servers, indent=1, sort_keys=True), encoding="utf-8")

    n_rows = 0
    with open(path / "measurements.csv", "w", newline="",
              encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_COLUMNS)
        for tags in dataset.table.tag_combinations():
            region, server_id, tier = tags
            series = dataset.table.series(tags)
            for i in range(series["ts"].size):
                writer.writerow([
                    f"{series['ts'][i]:.0f}", region, server_id, tier,
                    f"{series['download'][i]:.3f}",
                    f"{series['upload'][i]:.3f}",
                    f"{series['latency'][i]:.3f}",
                    f"{series['loss_down'][i]:.6g}",
                    f"{series['loss_up'][i]:.6g}",
                ])
                n_rows += 1

    manifest = {
        "schema_version": SCHEMA_VERSION,
        "start_ts": dataset.start_ts,
        "end_ts": dataset.end_ts,
        "n_measurements": n_rows,
        "n_servers": len(servers),
        "completed_tests": dataset.completed_tests,
        "failed_tests": dataset.failed_tests,
    }
    manifest_path = path / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=1,
                                        sort_keys=True),
                             encoding="utf-8")
    return manifest_path


def load_dataset(directory: Union[str, pathlib.Path]) -> CampaignDataset:
    """Rebuild a :class:`CampaignDataset` from an export directory."""
    path = pathlib.Path(directory)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise AnalysisError(f"no manifest.json under {path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("schema_version") != SCHEMA_VERSION:
        raise AnalysisError(
            f"unsupported schema version "
            f"{manifest.get('schema_version')!r}")

    dataset = CampaignDataset(manifest["start_ts"], manifest["end_ts"])
    servers = json.loads((path / "servers.json")
                         .read_text(encoding="utf-8"))
    for raw in servers.values():
        dataset.add_server_meta(ServerMeta(**raw))

    with open(path / "measurements.csv", newline="",
              encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if tuple(reader.fieldnames or ()) != _CSV_COLUMNS:
            raise AnalysisError("measurements.csv column mismatch")
        for row in reader:
            dataset.record(MeasurementRecord(
                ts=float(row["ts"]),
                region=row["region"],
                vm_name="",
                server_id=row["server_id"],
                tier=NetworkTier(row["tier"]),
                download_mbps=float(row["download_mbps"]),
                upload_mbps=float(row["upload_mbps"]),
                latency_ms=float(row["latency_ms"]),
                download_loss_rate=float(row["download_loss_rate"]),
                upload_loss_rate=float(row["upload_loss_rate"]),
            ))
    dataset.failed_tests = int(manifest.get("failed_tests", 0))
    return dataset
