"""Differential-based server selection.

From the Speedchecker preliminary study, compare the median latency to
a region over the standard vs the premium tier per <city, AS> tuple
(tuples need >100 samples).  Tuples where the tiers differ by at least
50 ms in absolute value, or by less than 10 ms, become *candidates*;
speed test servers in the same <city, AS> as a candidate tuple are
eligible, and 15-17 of them are chosen per region, heuristically
maximising geographic and network coverage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ... import obs
from ...cloud.tiers import NetworkTier
from ...errors import SelectionError
from ...speedtest.catalog import ServerCatalog
from ...speedtest.server import SpeedTestServer
from ...tools.prefix2as import Prefix2AS
from ...tools.speedchecker import TupleMedian

__all__ = ["LatencyClass", "DifferentialCandidate",
           "DifferentialSelection", "DifferentialSelector"]


class LatencyClass(enum.Enum):
    """How the tiers compared in the preliminary latency study."""

    PREMIUM_LOWER = "premium_lower"      # premium at least 50 ms faster
    COMPARABLE = "comparable"            # |difference| < 10 ms
    STANDARD_LOWER = "standard_lower"    # standard at least 50 ms faster


@dataclass(frozen=True)
class DifferentialCandidate:
    """A <city, AS> tuple whose tier latencies satisfied a condition."""

    city_key: str
    asn: int
    region: str
    premium_ms: float
    standard_ms: float
    latency_class: LatencyClass

    @property
    def delta_ms(self) -> float:
        """standard - premium (positive = premium faster)."""
        return self.standard_ms - self.premium_ms


@dataclass
class DifferentialSelection:
    """Chosen servers for one region, with their latency classes."""

    region: str
    candidates: List[DifferentialCandidate] = field(default_factory=list)
    #: (server, the candidate tuple that qualified it)
    selected: List[Tuple[SpeedTestServer, DifferentialCandidate]] = \
        field(default_factory=list)

    def server_ids(self) -> List[str]:
        return [s.server_id for s, _c in self.selected]

    def latency_class_of(self, server_id: str) -> Optional[LatencyClass]:
        for server, candidate in self.selected:
            if server.server_id == server_id:
                return candidate.latency_class
        return None

    def by_class(self) -> Dict[LatencyClass, List[str]]:
        out: Dict[LatencyClass, List[str]] = {c: [] for c in LatencyClass}
        for server, candidate in self.selected:
            out[candidate.latency_class].append(server.server_id)
        return out


class DifferentialSelector:
    """Classifies tuples and picks the per-region server list."""

    #: Paper's thresholds: >= 50 ms apart, or < 10 ms apart.
    BIG_DELTA_MS = 50.0
    SMALL_DELTA_MS = 10.0
    #: Tuples need more than this many samples to count.
    MIN_SAMPLES = 100

    def __init__(self, catalog: ServerCatalog, prefix2as: Prefix2AS) -> None:
        self._catalog = catalog
        self._p2a = prefix2as

    # ------------------------------------------------------------------

    def classify(self, medians: Sequence[TupleMedian],
                 region: str) -> List[DifferentialCandidate]:
        """Pair up tiers per <city, AS> and keep qualifying tuples."""
        by_tuple: Dict[Tuple[str, int], Dict[NetworkTier, TupleMedian]] = {}
        for m in medians:
            if m.region != region or m.n_samples <= self.MIN_SAMPLES:
                continue
            by_tuple.setdefault((m.city_key, m.asn), {})[m.tier] = m
        candidates: List[DifferentialCandidate] = []
        for (city_key, asn), tiers in sorted(by_tuple.items()):
            prem = tiers.get(NetworkTier.PREMIUM)
            std = tiers.get(NetworkTier.STANDARD)
            if prem is None or std is None:
                continue
            delta = std.median_rtt_ms - prem.median_rtt_ms
            if abs(delta) >= self.BIG_DELTA_MS:
                cls = (LatencyClass.PREMIUM_LOWER if delta > 0
                       else LatencyClass.STANDARD_LOWER)
            elif abs(delta) < self.SMALL_DELTA_MS:
                cls = LatencyClass.COMPARABLE
            else:
                continue
            candidates.append(DifferentialCandidate(
                city_key=city_key, asn=asn, region=region,
                premium_ms=prem.median_rtt_ms,
                standard_ms=std.median_rtt_ms,
                latency_class=cls))
        return candidates

    def eligible_servers(self, candidate: DifferentialCandidate
                         ) -> List[SpeedTestServer]:
        """Servers in the candidate's <city, AS> (AS via prefix-to-AS)."""
        out = []
        for server in self._catalog:
            if server.city_key != candidate.city_key:
                continue
            if self._p2a.lookup(server.ip) != candidate.asn:
                continue
            out.append(server)
        return sorted(out, key=lambda s: s.server_id)

    # ------------------------------------------------------------------

    def select(self, medians: Sequence[TupleMedian], region: str,
               target_count: int = 16) -> DifferentialSelection:
        """Pick ~*target_count* servers maximising coverage.

        Greedy: round-robin over latency classes; within a class prefer
        candidates in countries and cities not yet represented, one
        server per <city, AS>.
        """
        if target_count < 1:
            raise SelectionError(
                f"target_count must be >= 1, got {target_count}")
        with obs.span("selection.differential.select", layer="selection",
                      region=region) as sp:
            selection = self._select(medians, region, target_count)
            sp.annotate(n_candidates=len(selection.candidates),
                        n_selected=len(selection.selected))
        return selection

    def _select(self, medians: Sequence[TupleMedian], region: str,
                target_count: int) -> DifferentialSelection:
        candidates = self.classify(medians, region)
        selection = DifferentialSelection(region=region,
                                          candidates=candidates)

        pools: Dict[LatencyClass, List[Tuple[DifferentialCandidate,
                                             SpeedTestServer]]] = {
            c: [] for c in LatencyClass}
        for candidate in candidates:
            servers = self.eligible_servers(candidate)
            if servers:
                pools[candidate.latency_class].append(
                    (candidate, servers[0]))
        # Bigger |delta| first inside each class: the most informative
        # comparisons, mirroring "heuristically maximizing coverage".
        for pool in pools.values():
            pool.sort(key=lambda item: (-abs(item[0].delta_ms),
                                        item[1].server_id))

        seen_tuples: Set[Tuple[str, int]] = set()
        seen_countries: Dict[str, int] = {}
        order = [LatencyClass.PREMIUM_LOWER, LatencyClass.STANDARD_LOWER,
                 LatencyClass.COMPARABLE]
        while len(selection.selected) < target_count:
            progressed = False
            for cls in order:
                if len(selection.selected) >= target_count:
                    break
                pool = pools[cls]
                pick_idx = None
                # Prefer a country not yet doubly represented.
                for idx, (candidate, server) in enumerate(pool):
                    key = (candidate.city_key, candidate.asn)
                    if key in seen_tuples:
                        continue
                    if seen_countries.get(server.country, 0) < 2:
                        pick_idx = idx
                        break
                    if pick_idx is None:
                        pick_idx = idx
                if pick_idx is None:
                    continue
                candidate, server = pool.pop(pick_idx)
                key = (candidate.city_key, candidate.asn)
                if key in seen_tuples:
                    continue
                seen_tuples.add(key)
                seen_countries[server.country] = \
                    seen_countries.get(server.country, 0) + 1
                selection.selected.append((server, candidate))
                progressed = True
            if not progressed:
                break
        return selection
