"""Server selection: topology-based and differential-based methods."""

from .topology_based import SelectedServer, TopologySelection, TopologySelector
from .differential import (
    DifferentialCandidate,
    DifferentialSelection,
    DifferentialSelector,
    LatencyClass,
)

__all__ = [
    "SelectedServer", "TopologySelection", "TopologySelector",
    "DifferentialCandidate", "DifferentialSelection",
    "DifferentialSelector", "LatencyClass",
]
