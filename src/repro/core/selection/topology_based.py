"""Topology-based server selection.

The paper's pilot scan, per cloud region:

1. run **bdrmap** from a VM to discover the cloud's interdomain links,
2. **traceroute** (paris) from the VM to every U.S. test server,
3. resolve hop IPs with prefix-to-AS to estimate AS-path length,
4. match hops against bdrmap's far-side IPs (and their aliases) to
   find which interdomain link each server's path crosses,
5. group servers by far-side IP and pick, per link, the server with
   the shortest AS path (usually directly peering) and lowest RTT.

The selection is performed once at the start of the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ... import obs
from ...errors import NoRouteError, SelectionError
from ...netsim.routing import GraphMode, TierPolicy
from ...speedtest.catalog import ServerCatalog
from ...speedtest.server import SpeedTestServer
from ...tools.bdrmap import Bdrmap, BdrmapResult
from ...tools.prefix2as import Prefix2AS
from ...tools.traceroute import Scamper, Traceroute

__all__ = ["SelectedServer", "TopologySelection", "TopologySelector"]


@dataclass(frozen=True)
class SelectedServer:
    """One server chosen to represent one interdomain link."""

    server_id: str
    far_ip: int
    neighbor_asn: Optional[int]
    as_path_length: int
    rtt_ms: float


@dataclass
class TopologySelection:
    """Everything the pilot scan produced for one region."""

    region: str
    bdrmap: BdrmapResult
    #: server_id -> far-side IP its trace crossed (None = unmatched)
    server_links: Dict[str, Optional[int]] = field(default_factory=dict)
    #: server_id -> RTT (ms) observed in its pilot traceroute
    server_rtts: Dict[str, float] = field(default_factory=dict)
    #: far-side IP -> server ids sharing that interconnection
    groups: Dict[int, List[str]] = field(default_factory=dict)
    #: far-side *router* (canonical far IP after alias merging) ->
    #: server ids.  Parallel LAG members collapse here; selection picks
    #: one server per router, so measured servers cover only a subset
    #: of the traversed far-side IPs (Table 1's coverage column).
    router_groups: Dict[int, List[str]] = field(default_factory=dict)
    selected: List[SelectedServer] = field(default_factory=list)

    @property
    def n_interdomain_links(self) -> int:
        """Links bdrmap discovered in this region (Table 1, col. 1)."""
        return len(self.bdrmap)

    @property
    def n_links_traversed(self) -> int:
        """Distinct links all U.S. servers crossed (Table 1, col. 2)."""
        return len(self.groups)

    @property
    def n_servers_traced(self) -> int:
        return len(self.server_links)

    @property
    def shared_interconnection_fraction(self) -> float:
        """Fraction of traced servers that share a link with another."""
        matched = [fip for fip in self.server_links.values()
                   if fip is not None]
        if not matched:
            return 0.0
        return 1.0 - len(set(matched)) / len(matched)

    def selected_ids(self, budget: Optional[int] = None) -> List[str]:
        """Server ids to deploy, optionally truncated to a budget."""
        ids = [s.server_id for s in self.selected]
        return ids if budget is None else ids[:budget]

    def links_covered_by(self, server_ids: Sequence[str]) -> int:
        """Distinct links covered by a measured subset (Table 1, col 3)."""
        chosen = set(server_ids)
        return len({s.far_ip for s in self.selected
                    if s.server_id in chosen})

    def coverage(self, server_ids: Sequence[str]) -> float:
        """Covered / traversed fraction (Table 1's 20.7 - 69.4 %)."""
        if not self.groups:
            return 0.0
        return self.links_covered_by(server_ids) / self.n_links_traversed


class TopologySelector:
    """Runs the pilot scan and the per-link server choice."""

    def __init__(self, bdrmap: Bdrmap, scamper: Scamper,
                 prefix2as: Prefix2AS, catalog: ServerCatalog) -> None:
        self._bdrmap = bdrmap
        self._scamper = scamper
        self._p2a = prefix2as
        self._catalog = catalog

    # ------------------------------------------------------------------

    def trace_to_server(self, src_pop_id: int, server: SpeedTestServer,
                        ts: float) -> Optional[Traceroute]:
        """Premium-tier (cold potato) forward trace to one server."""
        try:
            return self._scamper.trace_to_ip(
                src_pop_id, server.ip, ts,
                mode=GraphMode.FULL,
                first_as_policy=TierPolicy.COLD_POTATO,
                flow_id=server.ip & 0xFFFFF)
        except NoRouteError:
            return None

    def as_path_length(self, trace: Traceroute) -> int:
        """Distinct origin ASNs along the responding hops."""
        path: List[int] = []
        for ip in trace.responding_ips():
            asn = self._p2a.lookup(ip)
            if asn is None:
                continue
            if not path or path[-1] != asn:
                path.append(asn)
        # Collapse A-B-A bounces caused by link addressing quirks.
        dedup: List[int] = []
        for asn in path:
            if asn not in dedup:
                dedup.append(asn)
        return len(dedup)

    # ------------------------------------------------------------------

    def run(self, region: str, src_pop_id: int, ts: float,
            country: str = "US") -> TopologySelection:
        """Full pilot scan for one region."""
        with obs.span("selection.topology.run", layer="selection",
                      sim_ts=ts, region=region) as sp:
            selection = self._run(region, src_pop_id, ts, country)
            sp.annotate(n_selected=len(selection.selected),
                        n_links=selection.n_interdomain_links)
        return selection

    def _run(self, region: str, src_pop_id: int, ts: float,
             country: str) -> TopologySelection:
        bdr_result = self._bdrmap.run(src_pop_id, ts)
        selection = TopologySelection(region=region, bdrmap=bdr_result)
        hop_index = bdr_result.build_hop_index()

        servers = self._catalog.servers(country=country)
        if not servers:
            raise SelectionError(f"no servers in country {country!r}")

        per_server: Dict[str, Tuple[Optional[int], int, float]] = {}
        for server in servers:
            trace = self.trace_to_server(src_pop_id, server, ts)
            if trace is None:
                continue
            far_ip: Optional[int] = None
            for ip in trace.responding_ips():
                hit = hop_index.get(ip)
                if hit is not None:
                    far_ip = hit
                    break
            rtt = trace.rtt_ms if trace.rtt_ms is not None else float("inf")
            per_server[server.server_id] = (
                far_ip, self.as_path_length(trace), rtt)
            selection.server_links[server.server_id] = far_ip
            selection.server_rtts[server.server_id] = rtt
            if far_ip is not None:
                selection.groups.setdefault(far_ip, []).append(
                    server.server_id)

        # Collapse parallel LAG members: far-side IPs whose alias sets
        # intersect belong to one border router ("interconnection").
        canonical: Dict[int, int] = {}
        for far_ip in selection.groups:
            aliases = bdr_result.far_aliases.get(far_ip, frozenset())
            siblings = [a for a in aliases if a in selection.groups]
            siblings.append(far_ip)
            canonical[far_ip] = min(siblings)
        for far_ip, ids in sorted(selection.groups.items()):
            root = canonical[far_ip]
            selection.router_groups.setdefault(root, []).extend(ids)

        # One server per interconnection: shortest AS path, then lowest
        # RTT, then stable id.
        for root, ids in sorted(selection.router_groups.items()):
            best = min(ids, key=lambda sid: (
                per_server[sid][1], per_server[sid][2], sid))
            far, path_len, rtt = per_server[best]
            assert far is not None
            link = bdr_result.links.get(far)
            selection.selected.append(SelectedServer(
                server_id=best,
                far_ip=far,
                neighbor_asn=link.neighbor_asn if link else None,
                as_path_length=path_len,
                rtt_ms=rtt,
            ))
        # Deterministic deployment order: closest (lowest RTT) first,
        # which is also how the paper biased its budget-capped subsets.
        selection.selected.sort(key=lambda s: (s.rtt_ms, s.server_id))
        return selection
