"""Adaptive server-list maintenance (future work §5).

The paper ran its pilot scans once, so CLASP "cannot adapt to changes
in the use of interdomain links and any new deployment of speed test
servers".  :class:`AdaptiveSelector` closes that gap: it re-runs the
pilot scan on a schedule, diffs the result against the deployed list,
and emits an update plan (servers to add for newly covered links,
servers to drop for links that disappeared), bounded by a churn budget
so the longitudinal series stays comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..errors import SelectionError
from .selection.topology_based import TopologySelection, TopologySelector

__all__ = ["ServerListUpdate", "AdaptiveSelector"]


@dataclass
class ServerListUpdate:
    """Diff between the deployed list and a fresh pilot scan."""

    region: str
    ts: float
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    kept: List[str] = field(default_factory=list)
    #: interconnections that appeared / vanished since the last scan
    new_links: Set[int] = field(default_factory=set)
    lost_links: Set[int] = field(default_factory=set)

    @property
    def churn(self) -> int:
        return len(self.added) + len(self.removed)

    def apply_to(self, current: Sequence[str]) -> List[str]:
        """The updated server list, preserving deployment order."""
        removed = set(self.removed)
        out = [sid for sid in current if sid not in removed]
        out.extend(self.added)
        return out


class AdaptiveSelector:
    """Periodic pilot re-scans with churn-bounded list updates."""

    def __init__(self, selector: TopologySelector,
                 rescan_interval_days: int = 30,
                 max_churn_fraction: float = 0.2) -> None:
        if rescan_interval_days < 1:
            raise SelectionError("rescan interval must be >= 1 day")
        if not 0 < max_churn_fraction <= 1:
            raise SelectionError("max_churn_fraction must be in (0, 1]")
        self.selector = selector
        self.rescan_interval_days = rescan_interval_days
        self.max_churn_fraction = max_churn_fraction
        self._last_selection: Dict[str, TopologySelection] = {}
        self._last_scan_ts: Dict[str, float] = {}

    def needs_rescan(self, region: str, ts: float) -> bool:
        last = self._last_scan_ts.get(region)
        if last is None:
            return True
        return (ts - last) >= self.rescan_interval_days * 86400

    def record_baseline(self, region: str, selection: TopologySelection,
                        ts: float) -> None:
        """Register the selection the deployment was built from."""
        self._last_selection[region] = selection
        self._last_scan_ts[region] = ts

    def rescan(self, region: str, src_pop_id: int, ts: float,
               deployed: Sequence[str]) -> ServerListUpdate:
        """Re-run the pilot scan and diff against the deployed list."""
        baseline = self._last_selection.get(region)
        fresh = self.selector.run(region, src_pop_id, ts)
        self._last_selection[region] = fresh
        self._last_scan_ts[region] = ts

        deployed_set = set(deployed)
        fresh_ids = fresh.selected_ids()
        fresh_set = set(fresh_ids)

        update = ServerListUpdate(region=region, ts=ts)
        update.kept = [sid for sid in deployed if sid in fresh_set]
        candidate_adds = [sid for sid in fresh_ids
                          if sid not in deployed_set]
        candidate_removes = [sid for sid in deployed
                             if sid not in fresh_set]
        # Bound total churn so the longitudinal series stays
        # comparable: removals first (dead links waste budget), then
        # additions with whatever churn budget remains.
        budget = max(1, int(len(deployed) * self.max_churn_fraction))
        update.removed = candidate_removes[:budget]
        remaining = budget - len(update.removed)
        update.added = candidate_adds[:remaining] if remaining > 0 else []

        if baseline is not None:
            old_links = set(baseline.groups)
            new_links = set(fresh.groups)
            update.new_links = new_links - old_links
            update.lost_links = old_links - new_links
        return update
