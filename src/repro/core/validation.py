"""Ground-truth validation of inference against the simulator.

A reproduction built on a simulator can do what the paper could not:
check its inference pipelines against reality.  This module provides
the oracles:

* :func:`bdrmap_accuracy` - precision/recall of inferred borders
  against the topology's interdomain registry,
* :func:`congestion_oracle` - the per-sample truth of whether a pair's
  ingress path was actually saturated by background load when a
  measurement ran,
* :func:`detector_scores` - precision/recall/F1 of any
  :class:`~repro.core.detectors.CongestionDetector` against the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..cloud.api import CloudPlatform, Direction
from ..errors import AnalysisError
from ..speedtest.catalog import ServerCatalog
from ..tools.bdrmap import BdrmapResult
from .campaign import CampaignDataset
from .congestion import PairKey
from .detectors import DetectionSeries

__all__ = [
    "AccuracyReport",
    "bdrmap_accuracy",
    "congestion_oracle",
    "detector_scores",
]


@dataclass(frozen=True)
class AccuracyReport:
    """Binary-classification accuracy against ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def bdrmap_accuracy(result: BdrmapResult, platform: CloudPlatform
                    ) -> AccuracyReport:
    """Score inferred far-side IPs against the interdomain registry."""
    truth = {r.far_ip for r in platform.topology.interdomain_links(
        platform.cloud_asn)}
    inferred = result.far_ips()
    tp = len(inferred & truth)
    return AccuracyReport(
        true_positives=tp,
        false_positives=len(inferred) - tp,
        false_negatives=len(truth) - tp,
    )


def congestion_oracle(platform: CloudPlatform, catalog: ServerCatalog,
                      dataset: CampaignDataset, pair: PairKey,
                      utilization_threshold: float = 0.97
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """(ts, truth mask): was the ingress path saturated at each test?

    Replays each measurement instant against the traffic model: the
    sample is truly congested when any forward (server-to-cloud) link's
    background utilization is at or above *utilization_threshold* -
    the regime where the loss ramp collapses TCP throughput.
    """
    region, server_id, tier = pair
    server = catalog.get(server_id)
    vm = _find_campaign_vm(platform, dataset, pair)
    series = dataset.table.series(pair)
    ts = series["ts"]
    data_route, ack_route = platform.route_pair(
        vm, server.host_pop_id, Direction.INGRESS)
    truth = np.zeros(ts.size, dtype=bool)
    for i, t in enumerate(ts):
        metrics = platform.path_model.evaluate(data_route, float(t),
                                               ack_route)
        truth[i] = metrics.max_forward_utilization >= \
            utilization_threshold
    return ts, truth


def _find_campaign_vm(platform: CloudPlatform, dataset: CampaignDataset,
                      pair: PairKey):
    """Recover the VM that measured a pair (from any of its records)."""
    region, server_id, tier = pair
    # The VM name is stable per pair; read it off the platform's
    # registry by matching region and tier.
    for vm in platform.vms(region_name=region, running_only=False):
        if vm.tier.value == tier:
            return vm
    raise AnalysisError(f"no VM found for pair {pair!r}")


def detector_scores(detection: DetectionSeries, truth_ts: np.ndarray,
                    truth_mask: np.ndarray) -> AccuracyReport:
    """Score one detector's labels against the oracle mask."""
    common, di, ti = np.intersect1d(detection.ts, truth_ts,
                                    return_indices=True)
    if common.size == 0:
        raise AnalysisError("detector and oracle share no timestamps")
    pred = detection.congested[di]
    truth = truth_mask[ti]
    tp = int((pred & truth).sum())
    fp = int((pred & ~truth).sum())
    fn = int((~pred & truth).sum())
    return AccuracyReport(true_positives=tp, false_positives=fp,
                          false_negatives=fn)
