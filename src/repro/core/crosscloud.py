"""Cross-cloud workloads: the VM-pair matrix and provider choice.

Two workloads become possible once several providers share one
simulated Internet (:class:`~repro.cloud.fleet.CloudFleet`):

* :func:`run_matrix` - a CloudCast-style connectivity matrix: one VM
  per (provider, region) endpoint, every ordered pair evaluated for
  RTT, loss, and achievable multi-flow TCP throughput.  The
  evaluation is pure path-model arithmetic (no RNG), so the matrix is
  bit-identical however the pair list is sharded.
* :func:`provider_choice` - the differential-selection methodology
  pointed at two *providers* instead of two *tiers*: probe the same
  vantage-point population against a VM in provider A and a VM in
  provider B, relabel A's medians into the premium slot and B's into
  the standard slot of a synthetic region, and run the unchanged
  :class:`~repro.core.selection.differential.DifferentialSelector`.
  ``PREMIUM_LOWER`` then reads "provider A reaches this <city, AS>
  tuple faster", ``STANDARD_LOWER`` the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..cloud.fleet import CloudFleet
from ..cloud.tiers import Direction, NetworkTier
from ..errors import (CloudError, NoRouteError, SelectionError,
                      ValidationError)
from ..netsim.tcp import multiflow_throughput_mbps
from ..rng import SeedTree
from ..simclock import CAMPAIGN_START
from ..speedtest.catalog import ServerCatalog
from ..tools.prefix2as import Prefix2AS
from ..tools.speedchecker import Speedchecker, TupleMedian
from .selection.differential import (DifferentialSelection,
                                     DifferentialSelector)

__all__ = ["MatrixCell", "CrossCloudMatrix", "ProviderChoice",
           "run_matrix", "provider_choice"]

#: Parallel flows per matrix transfer (CloudCast used multi-flow iperf).
MATRIX_FLOWS = 6

#: Hour samples per pair: RTT and throughput are medians over these.
MATRIX_SAMPLES = 6
MATRIX_SAMPLE_SPACING_H = 4


@dataclass(frozen=True)
class MatrixCell:
    """One ordered (source endpoint -> destination endpoint) result."""

    src_provider: str
    src_region: str
    dst_provider: str
    dst_region: str
    rtt_ms: float
    loss_rate: float
    throughput_mbps: float
    reachable: bool = True

    @property
    def cross_provider(self) -> bool:
        return self.src_provider != self.dst_provider


@dataclass
class CrossCloudMatrix:
    """The full ordered-pair matrix plus its endpoint inventory."""

    providers: Tuple[str, ...]
    #: (provider, region) endpoints, in evaluation order.
    endpoints: List[Tuple[str, str]] = field(default_factory=list)
    cells: List[MatrixCell] = field(default_factory=list)

    def cell(self, src_provider: str, src_region: str,
             dst_provider: str, dst_region: str) -> MatrixCell:
        for c in self.cells:
            if (c.src_provider, c.src_region,
                    c.dst_provider, c.dst_region) == (
                    src_provider, src_region, dst_provider, dst_region):
                return c
        raise SelectionError(
            f"no matrix cell {src_provider}/{src_region} -> "
            f"{dst_provider}/{dst_region}")

    def provider_pair_summary(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per (src provider, dst provider): median RTT / throughput."""
        grouped: Dict[Tuple[str, str], List[MatrixCell]] = {}
        for c in self.cells:
            if c.reachable:
                grouped.setdefault((c.src_provider, c.dst_provider),
                                   []).append(c)
        out: Dict[Tuple[str, str], Dict[str, float]] = {}
        for key, cells in grouped.items():
            rtts = sorted(c.rtt_ms for c in cells)
            tputs = sorted(c.throughput_mbps for c in cells)
            out[key] = {
                "n_pairs": float(len(cells)),
                "median_rtt_ms": _median(rtts),
                "median_throughput_mbps": _median(tputs),
            }
        return out

    @property
    def n_pairs(self) -> int:
        return len(self.cells)


def _median(ordered: Sequence[float]) -> float:
    n = len(ordered)
    if n == 0:
        raise ValidationError("median of an empty sequence")
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return float((ordered[mid - 1] + ordered[mid]) / 2.0)


def _study_region(platform) -> str:
    """A provider's region to probe from: its default, if the metro
    exists at this scenario scale, else the first available region."""
    available = platform.available_regions()
    if not available:
        raise SelectionError(
            f"provider {platform.provider.name!r} has no region whose "
            f"metro exists in this topology")
    default = platform.provider.default_region
    return default if default in available else available[0]


def _endpoint_regions(platform, regions_per_provider: int) -> List[str]:
    available = platform.available_regions()
    if not available:
        raise SelectionError(
            f"provider {platform.provider.name!r} has no region whose "
            f"metro exists in this topology")
    ordered = [_study_region(platform)]
    for region in available:
        if region not in ordered:
            ordered.append(region)
    return ordered[:max(1, regions_per_provider)]


def _free_name(platform, base: str) -> str:
    """*base*, or ``base-N``: VM names stay registered after
    termination, so a second matrix run on the same fleet needs fresh
    ones."""
    name, n = base, 1
    while True:
        try:
            platform.get_vm(name)
        except CloudError:
            return name
        n += 1
        name = f"{base}-{n}"


def _free_study_prefix(platform, base: str, region: str,
                       tier) -> str:
    """A Speedchecker ``name_prefix`` whose VM name is still free."""
    prefix, n = base, 1
    while True:
        try:
            platform.get_vm(f"{prefix}-{region}-{tier.value}")
        except CloudError:
            return prefix
        n += 1
        prefix = f"{base}-{n}"


def run_matrix(fleet: CloudFleet,
               regions_per_provider: int = 2,
               start_ts: float = float(CAMPAIGN_START),
               samples: int = MATRIX_SAMPLES,
               sample_spacing_h: int = MATRIX_SAMPLE_SPACING_H,
               n_flows: int = MATRIX_FLOWS,
               shards: int = 1) -> CrossCloudMatrix:
    """Evaluate every ordered endpoint pair in the fleet.

    One VM per (provider, region) endpoint - the provider's default
    machine type on its measurement tier, named
    ``xc-{provider}-{region}`` - then, for each ordered pair of
    distinct endpoints, the source platform computes its tier-correct
    egress route to the destination VM's PoP (plus the ingress route
    for the ACK stream), the path model samples RTT/loss/available
    bandwidth at *samples* hours, and the throughput is the multi-flow
    TCP rate capped by the slower VM's egress cap.

    *shards* splits the pair list into contiguous chunks evaluated
    chunk by chunk.  Cells are pure functions of (pair, ts) - no RNG -
    so any shard count produces the identical matrix on an
    identically-built fleet; tests pin this.  (Two *successive* runs
    on the same fleet attach fresh VM leaf hosts and so may differ
    slightly - compare matrices across fresh scenarios, not reruns.)
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    if samples < 1:
        raise ValidationError(f"samples must be >= 1, got {samples}")
    matrix = CrossCloudMatrix(providers=fleet.names())
    vms: Dict[Tuple[str, str], object] = {}
    end_ts = start_ts + samples * sample_spacing_h * 3600.0
    with obs.span("crosscloud.run_matrix", layer="crosscloud",
                  sim_ts=start_ts, providers=",".join(fleet.names())) as sp:
        try:
            for platform in fleet:
                pname = platform.provider.name
                for region in _endpoint_regions(platform,
                                                regions_per_provider):
                    vm = platform.create_vm(
                        region, platform.provider.default_machine_type,
                        platform.provider.measurement_tier, start_ts,
                        name=_free_name(platform, f"xc-{pname}-{region}"))
                    matrix.endpoints.append((pname, region))
                    vms[(pname, region)] = vm

            pairs = [(src, dst)
                     for src in matrix.endpoints
                     for dst in matrix.endpoints if src != dst]
            chunk = -(-len(pairs) // shards)  # ceil division
            for shard_idx in range(shards):
                for src, dst in pairs[shard_idx * chunk:
                                      (shard_idx + 1) * chunk]:
                    matrix.cells.append(_evaluate_pair(
                        fleet, vms, src, dst, start_ts,
                        samples, sample_spacing_h, n_flows))
            sp.annotate(n_endpoints=len(matrix.endpoints),
                        n_pairs=len(matrix.cells))
        finally:
            for (pname, _region), vm in vms.items():
                platform = fleet.platform(pname)
                if vm.is_running:
                    platform.terminate_vm(vm.name, end_ts)
    obs.inc("crosscloud.matrix_cells", float(len(matrix.cells)))
    return matrix


def _evaluate_pair(fleet: CloudFleet, vms: Dict[Tuple[str, str], object],
                   src: Tuple[str, str], dst: Tuple[str, str],
                   start_ts: float, samples: int, sample_spacing_h: int,
                   n_flows: int) -> MatrixCell:
    src_platform = fleet.platform(src[0])
    src_vm = vms[src]
    dst_vm = vms[dst]
    dst_pop = dst_vm.nic.host_pop_id
    try:
        fwd = src_platform.route(src_vm, dst_pop, Direction.EGRESS)
        rev = src_platform.route(src_vm, dst_pop, Direction.INGRESS)
    except NoRouteError:
        return MatrixCell(
            src_provider=src[0], src_region=src[1],
            dst_provider=dst[0], dst_region=dst[1],
            rtt_ms=float("inf"), loss_rate=1.0, throughput_mbps=0.0,
            reachable=False)
    rtts: List[float] = []
    tputs: List[float] = []
    losses: List[float] = []
    cap = min(src_vm.machine_type.egress_cap_mbps,
              dst_vm.machine_type.egress_cap_mbps)
    for i in range(samples):
        ts = start_ts + i * sample_spacing_h * 3600.0
        metrics = src_platform.path_model.evaluate(fwd, ts, rev)
        rtts.append(metrics.rtt_ms)
        losses.append(metrics.loss_rate)
        tputs.append(min(cap, multiflow_throughput_mbps(
            metrics.rtt_ms, metrics.loss_rate, n_flows,
            metrics.avail_mbps)))
    return MatrixCell(
        src_provider=src[0], src_region=src[1],
        dst_provider=dst[0], dst_region=dst[1],
        rtt_ms=_median(sorted(rtts)),
        loss_rate=_median(sorted(losses)),
        throughput_mbps=_median(sorted(tputs)))


# ----------------------------------------------------------------------
# provider choice

@dataclass
class ProviderChoice:
    """Which provider reaches which <city, AS> tuples faster.

    Wraps an unchanged :class:`DifferentialSelection` whose synthetic
    region is ``{provider_a}-vs-{provider_b}``; provider A's medians
    occupy the premium slot, provider B's the standard slot, so
    ``PREMIUM_LOWER`` candidates are tuples provider A wins and
    ``STANDARD_LOWER`` ones provider B wins.
    """

    provider_a: str
    provider_b: str
    region_a: str
    region_b: str
    selection: DifferentialSelection

    @property
    def label(self) -> str:
        return f"{self.provider_a}-vs-{self.provider_b}"

    def winner_counts(self) -> Dict[str, int]:
        """candidate counts: provider A wins / provider B wins / tie."""
        counts = {self.provider_a: 0, self.provider_b: 0,
                  "comparable": 0}
        for candidate in self.selection.candidates:
            if candidate.latency_class.value == "premium_lower":
                counts[self.provider_a] += 1
            elif candidate.latency_class.value == "standard_lower":
                counts[self.provider_b] += 1
            else:
                counts["comparable"] += 1
        return counts


def provider_choice(fleet: CloudFleet, catalog: ServerCatalog,
                    prefix2as: Prefix2AS,
                    provider_a: str, provider_b: str,
                    seed: int = 0,
                    start_ts: float = float(CAMPAIGN_START),
                    samples_per_tuple: int = 120,
                    target_count: int = 16,
                    region_a: Optional[str] = None,
                    region_b: Optional[str] = None) -> ProviderChoice:
    """Run the differential-selection path across two providers.

    Both providers are probed by Speedcheckers built from *identical*
    fresh seed trees, so the vantage-point population, probe times,
    and jitter draws line up sample-for-sample: the only difference
    between the A and B medians is the path through each provider's
    WAN.  A's medians relabel into the premium slot of a synthetic
    ``a-vs-b`` region, B's into the standard slot, and the stock
    :meth:`DifferentialSelector.select` does the rest, untouched.
    """
    if provider_a == provider_b:
        raise ValidationError(
            "provider choice needs two distinct providers")
    platform_a = fleet.platform(provider_a)
    platform_b = fleet.platform(provider_b)
    region_a = region_a or _study_region(platform_a)
    region_b = region_b or _study_region(platform_b)
    label = f"{provider_a}-vs-{provider_b}"

    with obs.span("crosscloud.provider_choice", layer="crosscloud",
                  sim_ts=start_ts, providers=label) as sp:
        medians: List[TupleMedian] = []
        for platform, region, slot in (
                (platform_a, region_a, NetworkTier.PREMIUM),
                (platform_b, region_b, NetworkTier.STANDARD)):
            # A fresh tree per provider, same seed: identical VP sets.
            checker = Speedchecker(platform, seeds=SeedTree(seed))
            tier = platform.provider.measurement_tier
            prefix = _free_study_prefix(platform, f"xc-{label}",
                                        region, tier)
            raw = checker.measure(
                [region], samples_per_tuple=samples_per_tuple,
                start_ts=start_ts, tiers=(tier,), name_prefix=prefix)
            medians.extend(TupleMedian(
                asn=m.asn, city_key=m.city_key, region=label,
                tier=slot, median_rtt_ms=m.median_rtt_ms,
                n_samples=m.n_samples) for m in raw)
        selector = DifferentialSelector(catalog, prefix2as)
        selection = selector.select(medians, label,
                                    target_count=target_count)
        sp.annotate(n_candidates=len(selection.candidates),
                    n_selected=len(selection.selected))
    return ProviderChoice(provider_a=provider_a, provider_b=provider_b,
                          region_a=region_a, region_b=region_b,
                          selection=selection)
