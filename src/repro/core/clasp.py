"""The CLASP facade: one object that runs the whole methodology.

Wires the substrate (cloud platform + server catalogs + tooling) to
the selection, orchestration, campaign, and analysis stages, so the
examples and benchmarks read like the paper's workflow:

    clasp = Clasp.build(internet, catalog, seeds)
    pilot = clasp.select_topology_servers("us-west1")
    plan = clasp.deploy_topology("us-west1", pilot, budget_servers=106)
    dataset = clasp.run_campaign([plan], days=14)
    report = clasp.detect_congestion(dataset)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cloud.api import CloudPlatform
from ..cloud.billing import CostTracker
from ..cloud.providers import get_provider
from ..cloud.tiers import NetworkTier
from ..faults import FaultInjector, FaultPlan
from ..netsim.generator import GeneratedInternet
from ..rng import SeedTree
from ..simclock import CAMPAIGN_START
from ..speedtest.catalog import ServerCatalog
from ..speedtest.protocol import SpeedTestConfig, SpeedTestEngine
from ..tools.bdrmap import AliasResolver, Bdrmap
from ..tools.ipinfo import IpInfoDatabase
from ..tools.prefix2as import Prefix2AS, build_prefix2as
from ..tools.speedchecker import Speedchecker, TupleMedian
from ..tools.traceroute import Scamper
from .campaign import CampaignConfig, CampaignDataset, CampaignRunner
from .congestion import CongestionReport, PAPER_THRESHOLD, detect
from .orchestrator import DeploymentPlan, Orchestrator
from .selection.differential import DifferentialSelection, DifferentialSelector
from .selection.topology_based import TopologySelection, TopologySelector

__all__ = ["Clasp"]


class Clasp:
    """End-to-end driver of the measurement methodology."""

    def __init__(self, platform: CloudPlatform, catalog: ServerCatalog,
                 prefix2as: Prefix2AS, scamper: Scamper, bdrmap: Bdrmap,
                 ipinfo: IpInfoDatabase, speedchecker: Speedchecker,
                 engine: SpeedTestEngine, seeds: SeedTree,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.platform = platform
        self.catalog = catalog
        self.prefix2as = prefix2as
        self.scamper = scamper
        self.bdrmap = bdrmap
        self.ipinfo = ipinfo
        self.speedchecker = speedchecker
        self.engine = engine
        self.seeds = seeds
        self.orchestrator = Orchestrator(platform)
        self.fault_plan = fault_plan
        self.runner = CampaignRunner(platform, catalog, engine,
                                     seeds=seeds.child("campaign"),
                                     fault_plan=fault_plan,
                                     orchestrator=self.orchestrator)
        self._topology_selections: Dict[str, TopologySelection] = {}
        self._differential_selections: Dict[str, DifferentialSelection] = {}
        self._speedchecker_medians: Optional[List[TupleMedian]] = None

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def build(cls, internet: GeneratedInternet, catalog: ServerCatalog,
              seeds: Optional[SeedTree] = None,
              budget_usd: Optional[float] = None,
              speedtest_config: Optional[SpeedTestConfig] = None,
              fault_plan: Optional[FaultPlan] = None,
              provider: Optional[str] = None,
              cloud_asn: Optional[int] = None) -> "Clasp":
        """Assemble a full CLASP stack over a generated Internet.

        With a *fault_plan*, the campaign runner builds a seed-derived
        :class:`~repro.faults.FaultInjector` and wires its streams into
        the speed-test engine, the storage service, and the link-state
        evaluator; the same seed then reproduces the same faults.

        *provider* picks the cloud the stack measures from (default
        GCP); *cloud_asn* is the ASN of that provider's WAN in the
        topology, when it is not the Internet's native cloud (see
        :meth:`~repro.netsim.generator.TopologyGenerator.add_cloud_wan`).
        """
        seeds = seeds or SeedTree(0)
        prov = get_provider(provider)
        costs = CostTracker(prices=prov.price_book, budget_usd=budget_usd)
        platform = CloudPlatform(internet, cost_tracker=costs,
                                 provider=prov, cloud_asn=cloud_asn)
        p2a = build_prefix2as(internet.topology)
        scamper = Scamper(internet.topology, platform.router,
                          platform.evaluator, seeds.child("scamper"))
        bdr = Bdrmap(internet.topology, scamper, p2a, platform.cloud_asn,
                     AliasResolver(internet.topology,
                                   seeds=seeds.child("alias")))
        ipinfo = IpInfoDatabase(internet.topology, p2a,
                                seeds=seeds.child("ipinfo"))
        checker = Speedchecker(platform, seeds=seeds.child("speedchecker"))
        engine = SpeedTestEngine(platform, speedtest_config,
                                 seeds=seeds.child("engine"))
        return cls(platform, catalog, p2a, scamper, bdr, ipinfo, checker,
                   engine, seeds, fault_plan=fault_plan)

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The campaign's injector (None when faults are disabled)."""
        return self.runner.injector

    # ------------------------------------------------------------------
    # selection

    def select_topology_servers(self, region: str,
                                ts: float = float(CAMPAIGN_START)
                                ) -> TopologySelection:
        """Run (and cache) the topology-based pilot scan for a region."""
        cached = self._topology_selections.get(region)
        if cached is not None:
            return cached
        selector = TopologySelector(self.bdrmap, self.scamper,
                                    self.prefix2as, self.catalog)
        src_pop = self.platform.region_pop(region)
        selection = selector.run(region, src_pop.pop_id, ts)
        self._topology_selections[region] = selection
        return selection

    def speedchecker_medians(self, regions: Sequence[str],
                             ts: float = float(CAMPAIGN_START)
                             ) -> List[TupleMedian]:
        """Run (and cache) the Speedchecker preliminary latency study."""
        if self._speedchecker_medians is None:
            self._speedchecker_medians = self.speedchecker.measure(
                list(regions), start_ts=ts)
        return self._speedchecker_medians

    def select_differential_servers(self, region: str,
                                    regions_for_study: Optional[
                                        Sequence[str]] = None,
                                    target_count: int = 16,
                                    ts: float = float(CAMPAIGN_START)
                                    ) -> DifferentialSelection:
        """Differential-based selection for one region."""
        cached = self._differential_selections.get(region)
        if cached is not None:
            return cached
        study_regions = list(regions_for_study or [region])
        medians = self.speedchecker_medians(study_regions, ts)
        selector = DifferentialSelector(self.catalog, self.prefix2as)
        selection = selector.select(medians, region,
                                    target_count=target_count)
        self._differential_selections[region] = selection
        return selection

    # ------------------------------------------------------------------
    # deployment + campaign

    def deploy_topology(self, region: str, selection: TopologySelection,
                        budget_servers: Optional[int] = None,
                        ts: float = float(CAMPAIGN_START)
                        ) -> DeploymentPlan:
        return self.orchestrator.deploy_topology(
            region, selection.selected_ids(), ts,
            budget_servers=budget_servers)

    def deploy_differential(self, region: str,
                            selection: DifferentialSelection,
                            ts: float = float(CAMPAIGN_START)
                            ) -> DeploymentPlan:
        return self.orchestrator.deploy_differential(
            region, selection.server_ids(), ts)

    def run_campaign(self, plans: Sequence[DeploymentPlan],
                     days: int = 14,
                     start_ts: float = float(CAMPAIGN_START),
                     charge_billing: bool = True,
                     observers: Sequence[object] = (),
                     shards: int = 1,
                     batch: bool = False,
                     shard_processes: bool = False) -> CampaignDataset:
        """Run the measurement campaign over the deployed plans.

        *observers* are subscribed to the campaign's event bus (after
        the built-in dataset/billing observers) - e.g. a
        :class:`~repro.engine.observers.MetricsObserver` or
        :class:`~repro.engine.observers.TraceObserver`.

        *shards*, *batch*, and *shard_processes* route the run through
        :mod:`repro.shard`: the dataset is byte-identical in every
        combination, but ``batch=True`` precomputes each hour's tests
        as vectorized numpy batches and ``shards > 1`` partitions the
        lanes across executors (``shard_processes=True`` forks one
        worker process per shard).  The imports are lazy so the core
        layer has no module-level dependency on the shard layer.
        """
        config = CampaignConfig(days=days, start_ts=start_ts,
                                charge_billing=charge_billing)
        if shards > 1 or shard_processes:
            from ..shard import run_sharded
            dataset, _report = run_sharded(
                self.runner, plans, config, observers=observers,
                shards=shards, batch=batch, processes=shard_processes)
            return dataset
        if batch:
            from ..shard import batch_executor_factory
            return self.runner.run(plans, config, observers=observers,
                                   executor_factory=batch_executor_factory)
        return self.runner.run(plans, config, observers=observers)

    # ------------------------------------------------------------------
    # analysis

    def streaming_detector(self, threshold: float = PAPER_THRESHOLD,
                           metric: str = "download",
                           window_days: Optional[int] = None,
                           lateness_hours: float = 0.0,
                           start_ts: float = float(CAMPAIGN_START)):
        """A live detector + bus observer pair for this stack.

        Offsets resolve through the same catalog/topology city table
        :meth:`CampaignRunner.register_metadata` uses, so the observer
        can be built before any dataset exists and subscribed to
        :meth:`run_campaign` via ``observers=[observer]``.
        """
        from .streaming import (StreamingCongestionDetector,
                                StreamingDetectorObserver, catalog_offsets)
        detector = StreamingCongestionDetector(
            start_ts,
            catalog_offsets(self.catalog, self.platform.topology),
            threshold=threshold, metric=metric,
            window_days=window_days, lateness_hours=lateness_hours)
        return detector, StreamingDetectorObserver(detector)

    def collector(self, rules: Sequence = (), collector=None,
                  threshold: float = PAPER_THRESHOLD,
                  metric: str = "download",
                  window_days: Optional[int] = None,
                  lateness_hours: float = 0.0,
                  snapshot_hours: float = 1.0,
                  start_ts: float = float(CAMPAIGN_START)):
        """A daemon collector + bus observer pair for this stack.

        Pass an existing *collector* to attach a successive campaign
        run to it - the daemon pattern: one detector, registry,
        history, and rule engine outlive any single Clasp.  Either
        way ``begin_run()`` binds this stack's catalog offsets and
        provider before the observer is handed back, so the returned
        observer can go straight into
        ``run_campaign(observers=[observer])``.
        """
        from ..alerts import Collector
        from .streaming import catalog_offsets
        if collector is None:
            collector = Collector(
                start_ts=start_ts, rules=rules, threshold=threshold,
                metric=metric, window_days=window_days,
                lateness_hours=lateness_hours,
                snapshot_hours=snapshot_hours)
        collector.begin_run(
            catalog_offsets(self.catalog, self.platform.topology),
            provider=self.platform.provider.name)
        return collector, collector.observer()

    def detect_congestion(self, dataset: CampaignDataset,
                          threshold: float = PAPER_THRESHOLD,
                          region: Optional[str] = None,
                          tier: Optional[NetworkTier] = None
                          ) -> CongestionReport:
        return detect(dataset, threshold=threshold, region=region,
                      tier=tier)

    def total_cost_usd(self) -> float:
        """Money spent so far (VMs + egress + storage)."""
        return self.platform.costs.total_usd
