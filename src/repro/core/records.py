"""Measurement records and server metadata.

:class:`MeasurementRecord` is the processed, analysis-ready form of one
speed test (what the analysis VM writes into the time-series store);
:class:`ServerMeta` carries the per-server context analyses need
(timezone for local-hour conversion, AS for grouping, business type
for Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cloud.tiers import NetworkTier
from ..speedtest.protocol import SpeedTestResult

__all__ = ["LostRecord", "MeasurementRecord", "ServerMeta"]


@dataclass(frozen=True)
class ServerMeta:
    """Analysis-facing metadata of one measured test server."""

    server_id: str
    asn: int
    sponsor: str
    city_key: str
    country: str
    utc_offset_hours: float
    lat: float
    lon: float
    business_type: str = "unknown"

    @property
    def label(self) -> str:
        """"<City>-<Network>" label used in the paper's Fig. 6."""
        city = self.city_key.rsplit(",", 1)[0]
        return f"{city}-{self.sponsor}"


@dataclass(frozen=True)
class LostRecord:
    """One scheduled measurement that produced no usable data.

    Campaigns keep running through faults; instead of a record, the
    hour slot is tagged with *why* it was lost (``preemption``,
    ``slow-start``, ``speedtest``, ``upload``) so analyses can account
    for coverage gaps instead of silently shrinking samples.
    """

    ts: float
    region: str
    vm_name: str
    server_id: str
    reason: str


@dataclass(frozen=True)
class MeasurementRecord:
    """One processed speed test measurement."""

    ts: float
    region: str
    vm_name: str
    server_id: str
    tier: NetworkTier
    download_mbps: float
    upload_mbps: float
    latency_ms: float
    download_loss_rate: float
    upload_loss_rate: float

    @classmethod
    def from_result(cls, result: SpeedTestResult, region: str,
                    tier: NetworkTier) -> "MeasurementRecord":
        """Flatten an engine result into the analysis record."""
        return cls(
            ts=result.ts,
            region=region,
            vm_name=result.vm_name,
            server_id=result.server_id,
            tier=tier,
            download_mbps=result.download_mbps,
            upload_mbps=result.upload_mbps,
            latency_ms=result.latency_ms,
            download_loss_rate=result.download_loss_rate,
            upload_loss_rate=result.upload_loss_rate,
        )
