"""Alternative congestion detectors (the paper's future-work section).

The paper's deployed detector thresholds the normalized intra-day
throughput difference (``V_H > H``; see :mod:`repro.core.congestion`)
and section 5 proposes improving it "using time series analysis
approaches, such as autocorrelation and hidden Markov models".  This
module implements both proposals behind a common interface, so they
can be compared against the deployed method and against ground truth
(see ``benchmarks/bench_ablation_detectors.py``):

* :class:`VariabilityDetector` - the paper's V_H-threshold method.
* :class:`AutocorrelationDetector` - detects recurring diurnal
  structure via the lag-24h autocorrelation (the approach of
  Dhamdhere et al., "Inferring Persistent Interdomain Congestion"),
  then labels the recurring trough hours.
* :class:`HmmDetector` - a two-state Gaussian hidden Markov model over
  log-throughput fitted with EM (Baum-Welch); the low-mean state is
  "congested" when the states separate enough.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import AnalysisError
from .campaign import CampaignDataset
from .congestion import PAPER_THRESHOLD, PairKey, hourly_variability

__all__ = [
    "DetectionSeries",
    "CongestionDetector",
    "VariabilityDetector",
    "AutocorrelationDetector",
    "HmmDetector",
    "agreement_rate",
]


@dataclass
class DetectionSeries:
    """Per-sample congestion labels for one pair."""

    pair: PairKey
    method: str
    ts: np.ndarray
    congested: np.ndarray          # bool mask, aligned with ts
    #: method-specific diagnostic score per sample (higher = more
    #: congested-looking).
    score: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.ts) == len(self.congested) == len(self.score)):
            raise AnalysisError("detection series arrays misaligned")

    @property
    def congested_fraction(self) -> float:
        if self.congested.size == 0:
            return 0.0
        return float(self.congested.mean())

    @property
    def n_events(self) -> int:
        return int(self.congested.sum())


class CongestionDetector:
    """Interface: label each measurement of a pair as congested or not."""

    name = "base"

    def detect(self, dataset: CampaignDataset,
               pair: PairKey) -> DetectionSeries:
        raise NotImplementedError

    def _series(self, dataset: CampaignDataset,
                pair: PairKey, metric: str = "download"
                ) -> Tuple[np.ndarray, np.ndarray]:
        series = dataset.table.series(pair)
        return series["ts"], series[metric]


class VariabilityDetector(CongestionDetector):
    """The deployed method: V_H(s, t) > H below the daily peak."""

    name = "variability"

    def __init__(self, threshold: float = PAPER_THRESHOLD) -> None:
        if not 0 < threshold < 1:
            raise AnalysisError(
                f"threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold

    def detect(self, dataset: CampaignDataset,
               pair: PairKey) -> DetectionSeries:
        ts, vh = hourly_variability(dataset, pair)
        return DetectionSeries(pair=pair, method=self.name, ts=ts,
                               congested=vh > self.threshold, score=vh)


class AutocorrelationDetector(CongestionDetector):
    """Diurnal-periodicity detector.

    A pair is a congestion *candidate* when its hourly throughput shows
    significant lag-24h autocorrelation (recurring daily structure -
    noise does not repeat, evening collapses do).  For candidates, the
    congested samples are those that fall into the recurring trough:
    below ``mean - depth_sigma * std`` of the series.
    """

    name = "autocorrelation"

    def __init__(self, min_lag_correlation: float = 0.25,
                 depth_sigma: float = 1.5) -> None:
        if not -1 <= min_lag_correlation <= 1:
            raise AnalysisError("min_lag_correlation out of range")
        self.min_lag_correlation = min_lag_correlation
        self.depth_sigma = depth_sigma

    @staticmethod
    def lag_autocorrelation(values: np.ndarray, lag: int) -> float:
        """Pearson autocorrelation at *lag* (0 for degenerate input)."""
        if values.size <= lag + 2:
            return 0.0
        a = values[:-lag]
        b = values[lag:]
        sa, sb = a.std(), b.std()
        if sa == 0 or sb == 0:
            return 0.0
        return float(((a - a.mean()) * (b - b.mean())).mean() / (sa * sb))

    def detect(self, dataset: CampaignDataset,
               pair: PairKey) -> DetectionSeries:
        ts, values = self._series(dataset, pair)
        if values.size == 0:
            return DetectionSeries(pair, self.name, ts,
                                   np.zeros(0, bool), np.zeros(0))
        # Hourly cadence: lag 24 samples ~ 24 hours.
        corr = self.lag_autocorrelation(values, lag=24)
        mean = values.mean()
        std = values.std()
        if std == 0:
            score = np.zeros_like(values)
        else:
            score = (mean - values) / std
        if corr < self.min_lag_correlation:
            congested = np.zeros(values.size, dtype=bool)
        else:
            congested = score > self.depth_sigma
        return DetectionSeries(pair=pair, method=self.name, ts=ts,
                               congested=congested, score=score)


class HmmDetector(CongestionDetector):
    """Two-state Gaussian HMM over log-throughput, fitted with EM.

    State 0 is "normal", state 1 "congested" (lower mean).  The
    congested labels are the Viterbi path's state-1 samples, accepted
    only when the two state means separate by at least
    ``min_separation`` standard deviations (otherwise the model just
    split noise in half and nothing is labeled).
    """

    name = "hmm"

    def __init__(self, n_iter: int = 30, min_separation: float = 1.2,
                 seed: int = 0) -> None:
        if n_iter < 1:
            raise AnalysisError(f"n_iter must be >= 1, got {n_iter}")
        self.n_iter = n_iter
        self.min_separation = min_separation
        self.seed = seed

    # -- tiny 2-state Gaussian HMM ------------------------------------

    @staticmethod
    def _gauss_logpdf(x: np.ndarray, mean: float,
                      var: float) -> np.ndarray:
        var = max(var, 1e-6)
        return -0.5 * (np.log(2 * np.pi * var) + (x - mean) ** 2 / var)

    def fit_predict(self, values: np.ndarray
                    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Return (state sequence, model params) for one series."""
        x = np.log(np.maximum(values, 1e-3))
        n = x.size
        if n < 12:
            return np.zeros(n, dtype=int), {"separation": 0.0}
        # Init: split at the 25th percentile.
        cut = np.percentile(x, 25)
        means = np.array([x[x > cut].mean() if (x > cut).any() else x.mean(),
                          x[x <= cut].mean() if (x <= cut).any() else x.min()])
        variances = np.array([max(x.var(), 1e-4)] * 2)
        trans = np.array([[0.95, 0.05], [0.20, 0.80]])
        start = np.array([0.9, 0.1])

        log_b = None
        for _ in range(self.n_iter):
            log_b = np.stack([self._gauss_logpdf(x, means[s], variances[s])
                              for s in (0, 1)], axis=1)
            log_trans = np.log(trans)
            log_start = np.log(start)
            # forward
            log_alpha = np.zeros((n, 2))
            log_alpha[0] = log_start + log_b[0]
            for t in range(1, n):
                for s in (0, 1):
                    log_alpha[t, s] = log_b[t, s] + np.logaddexp(
                        log_alpha[t - 1, 0] + log_trans[0, s],
                        log_alpha[t - 1, 1] + log_trans[1, s])
            # backward
            log_beta = np.zeros((n, 2))
            for t in range(n - 2, -1, -1):
                for s in (0, 1):
                    log_beta[t, s] = np.logaddexp(
                        log_trans[s, 0] + log_b[t + 1, 0] + log_beta[t + 1, 0],
                        log_trans[s, 1] + log_b[t + 1, 1] + log_beta[t + 1, 1])
            log_gamma = log_alpha + log_beta
            log_gamma -= log_gamma.max(axis=1, keepdims=True)
            gamma = np.exp(log_gamma)
            gamma /= gamma.sum(axis=1, keepdims=True)
            # transition expectations
            xi = np.zeros((2, 2))
            for t in range(n - 1):
                m = (log_alpha[t][:, None] + log_trans
                     + log_b[t + 1][None, :] + log_beta[t + 1][None, :])
                m = np.exp(m - m.max())
                xi += m / m.sum()
            # M step
            weights = gamma.sum(axis=0)
            means = (gamma * x[:, None]).sum(axis=0) / np.maximum(weights,
                                                                  1e-9)
            variances = ((gamma * (x[:, None] - means[None, :]) ** 2)
                         .sum(axis=0) / np.maximum(weights, 1e-9))
            variances = np.maximum(variances, 1e-5)
            trans = xi / np.maximum(xi.sum(axis=1, keepdims=True), 1e-12)
            trans = np.clip(trans, 1e-4, 1 - 1e-4)
            trans /= trans.sum(axis=1, keepdims=True)
            start = np.clip(gamma[0], 1e-4, 1.0)
            start /= start.sum()

        # Order states: index 1 = lower mean = congested.
        if means[0] < means[1]:
            means = means[::-1]
            variances = variances[::-1]
            trans = trans[::-1, ::-1]
            start = start[::-1]
            log_b = log_b[:, ::-1]

        # Viterbi
        log_trans = np.log(trans)
        delta = np.log(start) + log_b[0]
        back = np.zeros((n, 2), dtype=int)
        for t in range(1, n):
            for s in (0, 1):
                options = delta + log_trans[:, s]
                back[t, s] = int(np.argmax(options))
                # fill after the loop to avoid overwriting delta early
            new_delta = np.array([
                (delta + log_trans[:, 0]).max() + log_b[t, 0],
                (delta + log_trans[:, 1]).max() + log_b[t, 1]])
            delta = new_delta
        states = np.zeros(n, dtype=int)
        states[-1] = int(np.argmax(delta))
        for t in range(n - 2, -1, -1):
            states[t] = back[t + 1, states[t + 1]]

        pooled_sd = math.sqrt(float(variances.mean()))
        separation = float((means[0] - means[1]) / max(pooled_sd, 1e-6))
        params = {"mean_normal": float(means[0]),
                  "mean_congested": float(means[1]),
                  "separation": separation}
        return states, params

    def detect(self, dataset: CampaignDataset,
               pair: PairKey) -> DetectionSeries:
        ts, values = self._series(dataset, pair)
        states, params = self.fit_predict(values)
        if params["separation"] < self.min_separation:
            congested = np.zeros(values.size, dtype=bool)
        else:
            congested = states == 1
        score = states.astype(float) * params["separation"]
        return DetectionSeries(pair=pair, method=self.name, ts=ts,
                               congested=congested, score=score)


def agreement_rate(a: DetectionSeries, b: DetectionSeries) -> float:
    """Fraction of common timestamps where two detectors agree."""
    common, ia, ib = np.intersect1d(a.ts, b.ts, return_indices=True)
    if common.size == 0:
        return 0.0
    return float((a.congested[ia] == b.congested[ib]).mean())
