"""CLASP core: the paper's primary contribution.

Server selection (topology-based and differential-based), measurement
VM orchestration and hourly scheduling, the longitudinal campaign
runner, the data pipeline and time-series store, and the congestion
detection / analysis layer that produces every figure and table in the
paper.
"""

from .records import MeasurementRecord, ServerMeta
from .tsdb import Table, TimeSeriesDB
from .orchestrator import DeploymentPlan, Orchestrator
from .scheduler import HourlySchedule, TestSlot
from .campaign import CampaignConfig, CampaignDataset, CampaignRunner
from .pipeline import AnalysisPipeline
from .congestion import (
    CongestionEvent,
    CongestionReport,
    daily_variability,
    hourly_variability,
    choose_threshold_elbow,
    midnight_day_index,
    threshold_sweep,
)
from .streaming import (
    PairCongestionState,
    StreamingCongestionDetector,
    StreamingDetectorObserver,
    stream_dataset,
)
from .analysis import (
    TierComparison,
    congestion_probability,
    congested_server_summary,
    performance_scatter,
    tier_comparison,
)
from .selection.topology_based import TopologySelection, TopologySelector
from .selection.differential import (
    DifferentialSelection,
    DifferentialSelector,
    LatencyClass,
)
from .clasp import Clasp
from .detectors import (
    AutocorrelationDetector,
    HmmDetector,
    VariabilityDetector,
)
from .validation import AccuracyReport, bdrmap_accuracy, congestion_oracle
from .adaptive import AdaptiveSelector, ServerListUpdate
from .export import export_dataset, load_dataset

__all__ = [
    "MeasurementRecord", "ServerMeta",
    "Table", "TimeSeriesDB",
    "DeploymentPlan", "Orchestrator",
    "HourlySchedule", "TestSlot",
    "CampaignConfig", "CampaignDataset", "CampaignRunner",
    "AnalysisPipeline",
    "CongestionEvent", "CongestionReport",
    "daily_variability", "hourly_variability",
    "choose_threshold_elbow", "midnight_day_index", "threshold_sweep",
    "PairCongestionState", "StreamingCongestionDetector",
    "StreamingDetectorObserver", "stream_dataset",
    "TierComparison", "congestion_probability",
    "congested_server_summary", "performance_scatter", "tier_comparison",
    "TopologySelection", "TopologySelector",
    "DifferentialSelection", "DifferentialSelector", "LatencyClass",
    "Clasp",
    "AutocorrelationDetector", "HmmDetector", "VariabilityDetector",
    "AccuracyReport", "bdrmap_accuracy", "congestion_oracle",
    "AdaptiveSelector", "ServerListUpdate",
    "export_dataset", "load_dataset",
]
