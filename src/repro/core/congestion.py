"""Congestion detection from throughput variability (paper section 3.3).

Two normalized metrics drive everything:

* per day: ``V(s, d) = (Tmax(s,d) - Tmin(s,d)) / Tmax(s,d)`` - the
  normalized peak-to-trough difference of pair *s* on day *d*;
* per hour: ``V_H(s, t) = (Tmax(s,d) - T(s,t)) / Tmax(s,d)`` - how far
  the measurement at hour *t* sits below its day's peak.

A day (an *s-day*) is congested when ``V > H``; an hour (an *s-hour*)
when ``V_H > H``.  The threshold ``H`` is chosen with the elbow method
on the s-day curve, constrained to label a reasonable portion (<30 %)
of s-days; the paper lands on ``H = 0.5``.  Days are bucketed in the
*test server's* local time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..cloud.tiers import NetworkTier
from ..errors import AnalysisError
from ..units import DAY, HOUR
from .campaign import CampaignDataset

__all__ = [
    "PAPER_THRESHOLD",
    "PairKey",
    "DayRecord",
    "CongestionEvent",
    "CongestionReport",
    "pair_daily_records",
    "daily_variability",
    "hourly_variability",
    "threshold_sweep",
    "choose_threshold_elbow",
    "label_events",
    "detect",
]

#: The threshold the paper settles on.
PAPER_THRESHOLD = 0.5

#: Days with fewer hourly samples than this are skipped (partial days
#: at campaign edges would otherwise produce bogus variability).
MIN_SAMPLES_PER_DAY = 8

PairKey = Tuple[str, str, str]  # (region, server_id, tier)


@dataclass(frozen=True)
class DayRecord:
    """One pair-day: the samples and the derived variability."""

    pair: PairKey
    day_index: int
    n_samples: int
    t_max: float
    t_min: float

    @property
    def variability(self) -> float:
        """V(s, d); zero for a degenerate all-zero day."""
        if self.t_max <= 0:
            return 0.0
        return (self.t_max - self.t_min) / self.t_max


@dataclass(frozen=True)
class CongestionEvent:
    """A congested s-hour: one measurement >H below its day's peak."""

    pair: PairKey
    ts: float
    local_hour: int
    day_index: int
    v_h: float
    throughput_mbps: float
    day_peak_mbps: float


@dataclass
class CongestionReport:
    """Full detection output for one metric/threshold."""

    threshold: float
    metric: str
    day_records: List[DayRecord] = field(default_factory=list)
    events: List[CongestionEvent] = field(default_factory=list)
    #: pair -> number of measured hours
    pair_hours: Dict[PairKey, int] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def n_s_days(self) -> int:
        return len(self.day_records)

    @property
    def n_congested_days(self) -> int:
        return sum(1 for d in self.day_records
                   if d.variability > self.threshold)

    @property
    def congested_day_fraction(self) -> float:
        if not self.day_records:
            return 0.0
        return self.n_congested_days / self.n_s_days

    @property
    def n_s_hours(self) -> int:
        return sum(self.pair_hours.values())

    @property
    def congested_hour_fraction(self) -> float:
        total = self.n_s_hours
        if total == 0:
            return 0.0
        return len(self.events) / total

    def events_of(self, pair: PairKey) -> List[CongestionEvent]:
        return [e for e in self.events if e.pair == pair]

    def congested_day_count(self, pair: PairKey) -> int:
        """Days of *pair* having at least one congestion event."""
        return len({e.day_index for e in self.events if e.pair == pair})

    def measured_day_count(self, pair: PairKey) -> int:
        return sum(1 for d in self.day_records if d.pair == pair)

    def is_congested_server(self, pair: PairKey,
                            min_day_fraction: float = 0.10) -> bool:
        """The paper's "congested" label: >10 % of days have events."""
        days = self.measured_day_count(pair)
        if days == 0:
            return False
        return self.congested_day_count(pair) / days > min_day_fraction

    def congested_pairs(self, min_day_fraction: float = 0.10
                        ) -> List[PairKey]:
        pairs = sorted(self.pair_hours)
        return [p for p in pairs
                if self.is_congested_server(p, min_day_fraction)]


# ----------------------------------------------------------------------
# building blocks


def _pair_day_buckets(dataset: CampaignDataset, pair: PairKey,
                      metric: str) -> List[Tuple[int, np.ndarray,
                                                 np.ndarray]]:
    """(local day index, ts array, metric array) buckets for one pair."""
    region, server_id, tier = pair
    series = dataset.table.series(pair)
    values = series.get(metric)
    if values is None:
        raise AnalysisError(f"unknown metric {metric!r}")
    offset = dataset.server_meta(server_id).utc_offset_hours
    local_ts = series["ts"] + offset * HOUR
    day_idx = ((local_ts - dataset.start_ts) // DAY).astype(int)
    out = []
    for day in np.unique(day_idx):
        mask = day_idx == day
        out.append((int(day), series["ts"][mask], values[mask]))
    return out


def pair_daily_records(dataset: CampaignDataset, pair: PairKey,
                       metric: str = "download",
                       min_samples: int = MIN_SAMPLES_PER_DAY
                       ) -> List[DayRecord]:
    """Compute :class:`DayRecord` for every full day of one pair."""
    records = []
    for day, _ts, values in _pair_day_buckets(dataset, pair, metric):
        if len(values) < min_samples:
            continue
        records.append(DayRecord(
            pair=pair, day_index=day, n_samples=len(values),
            t_max=float(values.max()), t_min=float(values.min())))
    return records


def daily_variability(dataset: CampaignDataset,
                      region: Optional[str] = None,
                      tier: Optional[NetworkTier] = None,
                      metric: str = "download",
                      min_samples: int = MIN_SAMPLES_PER_DAY
                      ) -> Dict[PairKey, np.ndarray]:
    """V(s, d) arrays per pair (one value per full measured day).

    Days with fewer than *min_samples* hourly measurements (e.g. hours
    lost to faults) are excluded rather than producing unstable
    extremes from a handful of points.
    """
    out: Dict[PairKey, np.ndarray] = {}
    for pair in dataset.pairs(region=region, tier=tier):
        records = pair_daily_records(dataset, pair, metric, min_samples)
        if records:
            out[pair] = np.array([r.variability for r in records])
    return out


def hourly_variability(dataset: CampaignDataset, pair: PairKey,
                       metric: str = "download",
                       min_samples: int = MIN_SAMPLES_PER_DAY
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """(ts, V_H) arrays for one pair across all its full days."""
    ts_all: List[np.ndarray] = []
    vh_all: List[np.ndarray] = []
    for _day, ts, values in _pair_day_buckets(dataset, pair, metric):
        if len(values) < min_samples:
            continue
        peak = values.max()
        if peak <= 0:
            continue
        ts_all.append(ts)
        vh_all.append((peak - values) / peak)
    if not ts_all:
        return np.array([]), np.array([])
    ts_cat = np.concatenate(ts_all)
    vh_cat = np.concatenate(vh_all)
    order = np.argsort(ts_cat, kind="stable")
    return ts_cat[order], vh_cat[order]


# ----------------------------------------------------------------------
# threshold selection


def threshold_sweep(dataset: CampaignDataset,
                    thresholds: Sequence[float],
                    region: Optional[str] = None,
                    tier: Optional[NetworkTier] = None,
                    metric: str = "download"
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(H values, congested s-day fraction, congested s-hour fraction).

    The curves behind the paper's Fig. 2a / 2b.
    """
    hs = np.asarray(list(thresholds), dtype=float)
    if hs.size == 0:
        raise AnalysisError("threshold sweep needs at least one H")
    v_days: List[float] = []
    v_hours: List[float] = []
    for pair in dataset.pairs(region=region, tier=tier):
        for record in pair_daily_records(dataset, pair, metric):
            v_days.append(record.variability)
        _ts, vh = hourly_variability(dataset, pair, metric)
        v_hours.extend(vh.tolist())
    day_arr = np.asarray(v_days)
    hour_arr = np.asarray(v_hours)
    if day_arr.size == 0:
        raise AnalysisError("no full pair-days to sweep over")
    day_frac = np.array([(day_arr > h).mean() for h in hs])
    hour_frac = np.array([(hour_arr > h).mean() for h in hs])
    return hs, day_frac, hour_frac


def choose_threshold_elbow(thresholds: np.ndarray,
                           fractions: np.ndarray,
                           max_label_fraction: float = 0.30) -> float:
    """Elbow of the labeled-fraction curve, capped by a sanity bound.

    The elbow is the point of maximum distance from the chord joining
    the curve's endpoints; if the elbow still labels more than
    *max_label_fraction* of s-days, advance along the curve to the
    first threshold that does not.
    """
    h = np.asarray(thresholds, dtype=float)
    f = np.asarray(fractions, dtype=float)
    if h.size < 3:
        raise AnalysisError("elbow method needs at least 3 thresholds")
    if h.size != f.size:
        raise AnalysisError("thresholds/fractions length mismatch")
    order = np.argsort(h)
    h, f = h[order], f[order]
    # Normalize both axes so distance is scale-free.
    h_n = (h - h[0]) / max(h[-1] - h[0], 1e-12)
    f_n = (f - f[-1]) / max(f[0] - f[-1], 1e-12)
    # Chord from (0, f_n[0]) to (1, f_n[-1]) == (0,1)..(1,0).
    distances = np.abs(h_n + f_n - 1.0) / np.sqrt(2.0)
    elbow_idx = int(np.argmax(distances))
    idx = elbow_idx
    while idx < h.size - 1 and f[idx] > max_label_fraction:
        idx += 1
    return float(h[idx])


# ----------------------------------------------------------------------
# event labeling


def label_events(dataset: CampaignDataset, pair: PairKey,
                 threshold: float = PAPER_THRESHOLD,
                 metric: str = "download",
                 min_samples: int = MIN_SAMPLES_PER_DAY
                 ) -> List[CongestionEvent]:
    """All congested s-hours of one pair.

    Days with fewer than *min_samples* measurements are skipped, so a
    fault-riddled day degrades to "no events" instead of flagging
    spurious congestion off a sparse sample.
    """
    region, server_id, tier = pair
    offset = dataset.server_meta(server_id).utc_offset_hours
    events: List[CongestionEvent] = []
    for day, ts, values in _pair_day_buckets(dataset, pair, metric):
        if len(values) < min_samples:
            continue
        peak = float(values.max())
        if peak <= 0:
            continue
        vh = (peak - values) / peak
        for i in np.nonzero(vh > threshold)[0]:
            local_hour = int(((ts[i] + offset * HOUR) // HOUR) % 24)
            events.append(CongestionEvent(
                pair=pair, ts=float(ts[i]), local_hour=local_hour,
                day_index=day, v_h=float(vh[i]),
                throughput_mbps=float(values[i]), day_peak_mbps=peak))
    return events


def detect(dataset: CampaignDataset,
           threshold: float = PAPER_THRESHOLD,
           region: Optional[str] = None,
           tier: Optional[NetworkTier] = None,
           metric: str = "download",
           min_samples: int = MIN_SAMPLES_PER_DAY) -> CongestionReport:
    """Full detection pass over (a slice of) a dataset.

    *min_samples* is the per-day floor below which a pair-day is
    ignored everywhere (records, hours, events); campaigns run with
    fault injection lower effective coverage, and this guard keeps
    V(s, d) well-defined on what remains.
    """
    report = CongestionReport(threshold=threshold, metric=metric)
    with obs.span("analysis.congestion_detect", layer="analysis",
                  threshold=threshold, metric=metric) as sp:
        for pair in dataset.pairs(region=region, tier=tier):
            records = pair_daily_records(dataset, pair, metric,
                                         min_samples)
            report.day_records.extend(records)
            _ts, vh = hourly_variability(dataset, pair, metric,
                                         min_samples)
            report.pair_hours[pair] = int(vh.size)
            report.events.extend(label_events(dataset, pair, threshold,
                                              metric, min_samples))
        sp.annotate(n_events=len(report.events),
                    n_day_records=len(report.day_records))
    return report
