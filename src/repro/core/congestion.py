"""Congestion detection from throughput variability (paper section 3.3).

Two normalized metrics drive everything:

* per day: ``V(s, d) = (Tmax(s,d) - Tmin(s,d)) / Tmax(s,d)`` - the
  normalized peak-to-trough difference of pair *s* on day *d*;
* per hour: ``V_H(s, t) = (Tmax(s,d) - T(s,t)) / Tmax(s,d)`` - how far
  the measurement at hour *t* sits below its day's peak.

A day (an *s-day*) is congested when ``V > H``; an hour (an *s-hour*)
when ``V_H > H``.  The threshold ``H`` is chosen with the elbow method
on the s-day curve, constrained to label a reasonable portion (<30 %)
of s-days; the paper lands on ``H = 0.5``.  Days are bucketed in the
*test server's* local time, aligned to local midnight
(:func:`midnight_day_index`), so day boundaries are calendar days
regardless of when the campaign started.

The per-day arithmetic lives in :func:`summarize_day`, which is shared
verbatim by the batch :func:`detect` pass and the incremental
:class:`repro.core.streaming.StreamingCongestionDetector` - that is
what makes the streaming finalize/batch equivalence contract hold
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from .. import obs
from ..cloud.tiers import NetworkTier
from ..errors import AnalysisError
from ..units import DAY, HOUR
from .campaign import CampaignDataset

__all__ = [
    "PAPER_THRESHOLD",
    "PairKey",
    "DayRecord",
    "CongestionEvent",
    "CongestionReport",
    "DaySummary",
    "midnight_day_index",
    "summarize_day",
    "pair_daily_records",
    "daily_variability",
    "hourly_variability",
    "threshold_sweep",
    "choose_threshold_elbow",
    "label_events",
    "detect",
]

#: The threshold the paper settles on.
PAPER_THRESHOLD = 0.5

#: Days with fewer hourly samples than this are skipped (partial days
#: at campaign edges would otherwise produce bogus variability).
MIN_SAMPLES_PER_DAY = 8

PairKey = Tuple[str, str, str]  # (region, server_id, tier)


def midnight_day_index(ts: Union[float, np.ndarray],
                       utc_offset_hours: float,
                       start_ts: float) -> Union[int, np.ndarray]:
    """Local-midnight-aligned day index relative to the campaign start.

    Day 0 is the local calendar day containing *start_ts*; boundaries
    fall on the server's local midnight regardless of the campaign's
    start time.  Any ``ts >= start_ts`` therefore maps to a
    non-negative index, including for west-of-UTC servers (the old
    start-anchored bucketing produced ``day_index = -1`` for their
    first local hours and split days at arbitrary local times when a
    campaign did not start at local midnight).
    """
    local = ts + utc_offset_hours * HOUR
    origin_day = int((start_ts + utc_offset_hours * HOUR) // DAY)
    if isinstance(local, np.ndarray):
        return (local // DAY).astype(int) - origin_day
    return int(local // DAY) - origin_day


@dataclass(frozen=True)
class DayRecord:
    """One pair-day: the samples and the derived variability."""

    pair: PairKey
    day_index: int
    n_samples: int
    t_max: float
    t_min: float

    @property
    def variability(self) -> float:
        """V(s, d); zero for a degenerate all-zero day."""
        if self.t_max <= 0:
            return 0.0
        return (self.t_max - self.t_min) / self.t_max


@dataclass(frozen=True)
class CongestionEvent:
    """A congested s-hour: one measurement >H below its day's peak."""

    pair: PairKey
    ts: float
    local_hour: int
    day_index: int
    v_h: float
    throughput_mbps: float
    day_peak_mbps: float


@dataclass(frozen=True)
class DaySummary:
    """Everything :func:`detect` needs from one pair-day bucket."""

    #: ``None`` when the day has fewer than ``min_samples`` samples.
    record: Optional[DayRecord]
    #: Hours counted toward ``pair_hours`` (zero for skipped or
    #: degenerate all-zero days, matching :func:`hourly_variability`).
    measured_hours: int
    events: Tuple[CongestionEvent, ...]


def summarize_day(pair: PairKey, utc_offset_hours: float, day: int,
                  ts: np.ndarray, values: np.ndarray,
                  threshold: float = PAPER_THRESHOLD,
                  min_samples: int = MIN_SAMPLES_PER_DAY) -> DaySummary:
    """Record, measured-hour count, and events for one day bucket.

    *ts*/*values* must be the day's samples sorted by timestamp
    (ties in original arrival order).  This is the single shared
    per-day implementation: the batch pass feeds it buckets from the
    dataset table, the streaming detector feeds it sealed in-memory
    buckets, and both get identical floating-point results.
    """
    if len(values) < min_samples:
        return DaySummary(record=None, measured_hours=0, events=())
    record = DayRecord(
        pair=pair, day_index=day, n_samples=len(values),
        t_max=float(values.max()), t_min=float(values.min()))
    peak = float(values.max())
    if peak <= 0:
        return DaySummary(record=record, measured_hours=0, events=())
    vh = (peak - values) / peak
    events = []
    for i in np.nonzero(vh > threshold)[0]:
        local_hour = int(((ts[i] + utc_offset_hours * HOUR) // HOUR) % 24)
        events.append(CongestionEvent(
            pair=pair, ts=float(ts[i]), local_hour=local_hour,
            day_index=day, v_h=float(vh[i]),
            throughput_mbps=float(values[i]), day_peak_mbps=peak))
    return DaySummary(record=record, measured_hours=len(values),
                      events=tuple(events))


@dataclass
class CongestionReport:
    """Full detection output for one metric/threshold."""

    threshold: float
    metric: str
    day_records: List[DayRecord] = field(default_factory=list)
    events: List[CongestionEvent] = field(default_factory=list)
    #: pair -> number of measured hours
    pair_hours: Dict[PairKey, int] = field(default_factory=dict)

    # Lazily built per-pair indices; keyed on the list lengths so a
    # report that grows after a query (the streaming path appends to
    # these lists between snapshots) rebuilds instead of serving stale
    # answers.  Excluded from equality/repr: two reports with the same
    # findings compare equal whether or not either was ever queried.
    _events_by_pair: Optional[Dict[PairKey, List[CongestionEvent]]] = \
        field(default=None, init=False, repr=False, compare=False)
    _event_days_by_pair: Optional[Dict[PairKey, Set[int]]] = \
        field(default=None, init=False, repr=False, compare=False)
    _measured_days_by_pair: Optional[Dict[PairKey, int]] = \
        field(default=None, init=False, repr=False, compare=False)
    _index_key: Tuple[int, int] = \
        field(default=(-1, -1), init=False, repr=False, compare=False)

    # ------------------------------------------------------------------

    @property
    def n_s_days(self) -> int:
        return len(self.day_records)

    @property
    def n_congested_days(self) -> int:
        return sum(1 for d in self.day_records
                   if d.variability > self.threshold)

    @property
    def congested_day_fraction(self) -> float:
        if not self.day_records:
            return 0.0
        return self.n_congested_days / self.n_s_days

    @property
    def n_s_hours(self) -> int:
        return sum(self.pair_hours.values())

    @property
    def congested_hour_fraction(self) -> float:
        total = self.n_s_hours
        if total == 0:
            return 0.0
        return len(self.events) / total

    def _ensure_index(self) -> None:
        """(Re)build the per-pair indices when the lists have grown."""
        key = (len(self.events), len(self.day_records))
        if self._index_key == key:
            return
        events_by: Dict[PairKey, List[CongestionEvent]] = {}
        event_days: Dict[PairKey, Set[int]] = {}
        for event in self.events:
            events_by.setdefault(event.pair, []).append(event)
            event_days.setdefault(event.pair, set()).add(event.day_index)
        measured: Dict[PairKey, int] = {}
        for record in self.day_records:
            measured[record.pair] = measured.get(record.pair, 0) + 1
        self._events_by_pair = events_by
        self._event_days_by_pair = event_days
        self._measured_days_by_pair = measured
        self._index_key = key

    def events_of(self, pair: PairKey) -> List[CongestionEvent]:
        self._ensure_index()
        assert self._events_by_pair is not None
        return list(self._events_by_pair.get(pair, ()))

    def congested_day_count(self, pair: PairKey) -> int:
        """Days of *pair* having at least one congestion event."""
        self._ensure_index()
        assert self._event_days_by_pair is not None
        return len(self._event_days_by_pair.get(pair, ()))

    def measured_day_count(self, pair: PairKey) -> int:
        self._ensure_index()
        assert self._measured_days_by_pair is not None
        return self._measured_days_by_pair.get(pair, 0)

    def is_congested_server(self, pair: PairKey,
                            min_day_fraction: float = 0.10) -> bool:
        """The paper's "congested" label: >10 % of days have events."""
        days = self.measured_day_count(pair)
        if days == 0:
            return False
        return self.congested_day_count(pair) / days > min_day_fraction

    def congested_pairs(self, min_day_fraction: float = 0.10
                        ) -> List[PairKey]:
        pairs = sorted(self.pair_hours)
        return [p for p in pairs
                if self.is_congested_server(p, min_day_fraction)]


# ----------------------------------------------------------------------
# building blocks


def _pair_day_buckets(dataset: CampaignDataset, pair: PairKey,
                      metric: str) -> List[Tuple[int, np.ndarray,
                                                 np.ndarray]]:
    """(local day index, ts array, metric array) buckets for one pair."""
    region, server_id, tier = pair
    series = dataset.table.series(pair)
    values = series.get(metric)
    if values is None:
        raise AnalysisError(f"unknown metric {metric!r}")
    offset = dataset.server_meta(server_id).utc_offset_hours
    day_idx = midnight_day_index(series["ts"], offset, dataset.start_ts)
    out = []
    for day in np.unique(day_idx):
        mask = day_idx == day
        out.append((int(day), series["ts"][mask], values[mask]))
    return out


def _records_from_buckets(pair: PairKey,
                          buckets: Sequence[Tuple[int, np.ndarray,
                                                  np.ndarray]],
                          min_samples: int) -> List[DayRecord]:
    records = []
    for day, _ts, values in buckets:
        if len(values) < min_samples:
            continue
        records.append(DayRecord(
            pair=pair, day_index=day, n_samples=len(values),
            t_max=float(values.max()), t_min=float(values.min())))
    return records


def _vh_from_buckets(buckets: Sequence[Tuple[int, np.ndarray,
                                             np.ndarray]],
                     min_samples: int) -> Tuple[np.ndarray, np.ndarray]:
    ts_all: List[np.ndarray] = []
    vh_all: List[np.ndarray] = []
    for _day, ts, values in buckets:
        if len(values) < min_samples:
            continue
        peak = values.max()
        if peak <= 0:
            continue
        ts_all.append(ts)
        vh_all.append((peak - values) / peak)
    if not ts_all:
        return np.array([]), np.array([])
    ts_cat = np.concatenate(ts_all)
    vh_cat = np.concatenate(vh_all)
    order = np.argsort(ts_cat, kind="stable")
    return ts_cat[order], vh_cat[order]


def pair_daily_records(dataset: CampaignDataset, pair: PairKey,
                       metric: str = "download",
                       min_samples: int = MIN_SAMPLES_PER_DAY
                       ) -> List[DayRecord]:
    """Compute :class:`DayRecord` for every full day of one pair."""
    return _records_from_buckets(
        pair, _pair_day_buckets(dataset, pair, metric), min_samples)


def daily_variability(dataset: CampaignDataset,
                      region: Optional[str] = None,
                      tier: Optional[NetworkTier] = None,
                      metric: str = "download",
                      min_samples: int = MIN_SAMPLES_PER_DAY
                      ) -> Dict[PairKey, np.ndarray]:
    """V(s, d) arrays per pair (one value per full measured day).

    Days with fewer than *min_samples* hourly measurements (e.g. hours
    lost to faults) are excluded rather than producing unstable
    extremes from a handful of points.
    """
    out: Dict[PairKey, np.ndarray] = {}
    for pair in dataset.pairs(region=region, tier=tier):
        records = pair_daily_records(dataset, pair, metric, min_samples)
        if records:
            out[pair] = np.array([r.variability for r in records])
    return out


def hourly_variability(dataset: CampaignDataset, pair: PairKey,
                       metric: str = "download",
                       min_samples: int = MIN_SAMPLES_PER_DAY
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """(ts, V_H) arrays for one pair across all its full days."""
    return _vh_from_buckets(
        _pair_day_buckets(dataset, pair, metric), min_samples)


# ----------------------------------------------------------------------
# threshold selection


def threshold_sweep(dataset: CampaignDataset,
                    thresholds: Sequence[float],
                    region: Optional[str] = None,
                    tier: Optional[NetworkTier] = None,
                    metric: str = "download"
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(H values, congested s-day fraction, congested s-hour fraction).

    The curves behind the paper's Fig. 2a / 2b.  One bucket pass per
    pair feeds both curves.
    """
    hs = np.asarray(list(thresholds), dtype=float)
    if hs.size == 0:
        raise AnalysisError("threshold sweep needs at least one H")
    v_days: List[float] = []
    v_hours: List[float] = []
    for pair in dataset.pairs(region=region, tier=tier):
        buckets = _pair_day_buckets(dataset, pair, metric)
        for record in _records_from_buckets(pair, buckets,
                                            MIN_SAMPLES_PER_DAY):
            v_days.append(record.variability)
        _ts, vh = _vh_from_buckets(buckets, MIN_SAMPLES_PER_DAY)
        v_hours.extend(vh.tolist())
    day_arr = np.asarray(v_days)
    hour_arr = np.asarray(v_hours)
    if day_arr.size == 0:
        raise AnalysisError("no full pair-days to sweep over")
    day_frac = np.array([(day_arr > h).mean() for h in hs])
    hour_frac = np.array([(hour_arr > h).mean() for h in hs])
    return hs, day_frac, hour_frac


def choose_threshold_elbow(thresholds: np.ndarray,
                           fractions: np.ndarray,
                           max_label_fraction: float = 0.30) -> float:
    """Elbow of the labeled-fraction curve, capped by a sanity bound.

    The elbow is the point of maximum distance from the chord joining
    the curve's endpoints; if the elbow still labels more than
    *max_label_fraction* of s-days, advance along the curve to the
    first threshold that does not.
    """
    h = np.asarray(thresholds, dtype=float)
    f = np.asarray(fractions, dtype=float)
    if h.size < 3:
        raise AnalysisError("elbow method needs at least 3 thresholds")
    if h.size != f.size:
        raise AnalysisError("thresholds/fractions length mismatch")
    order = np.argsort(h)
    h, f = h[order], f[order]
    # Normalize both axes so distance is scale-free.
    h_n = (h - h[0]) / max(h[-1] - h[0], 1e-12)
    f_n = (f - f[-1]) / max(f[0] - f[-1], 1e-12)
    # Chord from (0, f_n[0]) to (1, f_n[-1]) == (0,1)..(1,0).
    distances = np.abs(h_n + f_n - 1.0) / np.sqrt(2.0)
    elbow_idx = int(np.argmax(distances))
    idx = elbow_idx
    while idx < h.size - 1 and f[idx] > max_label_fraction:
        idx += 1
    return float(h[idx])


# ----------------------------------------------------------------------
# event labeling


def label_events(dataset: CampaignDataset, pair: PairKey,
                 threshold: float = PAPER_THRESHOLD,
                 metric: str = "download",
                 min_samples: int = MIN_SAMPLES_PER_DAY
                 ) -> List[CongestionEvent]:
    """All congested s-hours of one pair.

    Days with fewer than *min_samples* measurements are skipped, so a
    fault-riddled day degrades to "no events" instead of flagging
    spurious congestion off a sparse sample.
    """
    region, server_id, tier = pair
    offset = dataset.server_meta(server_id).utc_offset_hours
    events: List[CongestionEvent] = []
    for day, ts, values in _pair_day_buckets(dataset, pair, metric):
        summary = summarize_day(pair, offset, day, ts, values,
                                threshold, min_samples)
        events.extend(summary.events)
    return events


def detect(dataset: CampaignDataset,
           threshold: float = PAPER_THRESHOLD,
           region: Optional[str] = None,
           tier: Optional[NetworkTier] = None,
           metric: str = "download",
           min_samples: int = MIN_SAMPLES_PER_DAY) -> CongestionReport:
    """Full detection pass over (a slice of) a dataset.

    *min_samples* is the per-day floor below which a pair-day is
    ignored everywhere (records, hours, events); campaigns run with
    fault injection lower effective coverage, and this guard keeps
    V(s, d) well-defined on what remains.

    Each pair's series is bucketed into local days exactly once;
    records, hour counts, and events all come out of that single pass.
    """
    report = CongestionReport(threshold=threshold, metric=metric)
    with obs.span("analysis.congestion_detect", layer="analysis",
                  threshold=threshold, metric=metric) as sp:
        for pair in dataset.pairs(region=region, tier=tier):
            offset = dataset.server_meta(pair[1]).utc_offset_hours
            hours = 0
            for day, ts, values in _pair_day_buckets(dataset, pair,
                                                     metric):
                summary = summarize_day(pair, offset, day, ts, values,
                                        threshold, min_samples)
                if summary.record is not None:
                    report.day_records.append(summary.record)
                hours += summary.measured_hours
                report.events.extend(summary.events)
            report.pair_hours[pair] = hours
        sp.annotate(n_events=len(report.events),
                    n_day_records=len(report.day_records))
    return report
