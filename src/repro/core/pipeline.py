"""The analysis-VM data pipeline.

In the paper, raw artefacts (pcaps, browser captures) land in the
regional bucket; an analysis VM *in the same region* (to avoid
cross-region transfer charges) identifies the HTTP transactions in the
encrypted traffic, estimates RTT and loss from the TCP flows, and
indexes processed results into InfluxDB.

:class:`AnalysisPipeline` reproduces that stage at full fidelity: it
reconstructs per-connection flow statistics for a test, runs the
RTT/loss estimators over them, and emits a processed
:class:`~repro.core.records.MeasurementRecord` whose loss/latency come
from the *estimators*, not from the simulator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..cloud.api import CloudPlatform, Direction
from ..cloud.vm import VirtualMachine
from ..rng import SeedTree
from ..speedtest.browser import BrowserArtifacts
from ..speedtest.catalog import ServerCatalog
from ..speedtest.protocol import SpeedTestConfig
from ..tools.flows import (
    FlowCapture,
    TcpFlow,
    estimate_loss_rate,
    estimate_rtt_ms,
)
from .records import MeasurementRecord

__all__ = ["ProcessedTest", "AnalysisPipeline"]


@dataclass(frozen=True)
class ProcessedTest:
    """Pipeline output: the record plus the evidence it derived from."""

    record: MeasurementRecord
    download_flows: Tuple[TcpFlow, ...]
    upload_flows: Tuple[TcpFlow, ...]
    estimated_rtt_ms: float
    estimated_download_loss: float
    estimated_upload_loss: float


class AnalysisPipeline:
    """Flow-level processing of raw test artefacts."""

    def __init__(self, platform: CloudPlatform, catalog: ServerCatalog,
                 config: Optional[SpeedTestConfig] = None,
                 seeds: Optional[SeedTree] = None) -> None:
        self.platform = platform
        self.catalog = catalog
        self.config = config or SpeedTestConfig()
        self._capture = FlowCapture(seeds=(seeds or SeedTree(0))
                                    .child("pipeline"))

    def process(self, vm: VirtualMachine, artefacts: BrowserArtifacts,
                region: str) -> ProcessedTest:
        """Process one test's artefacts into an indexed record."""
        result = artefacts.result
        server = self.catalog.get(result.server_id)

        down_route, down_ack = self.platform.route_pair(
            vm, server.host_pop_id, Direction.INGRESS)
        up_route, up_ack = self.platform.route_pair(
            vm, server.host_pop_id, Direction.EGRESS)
        down_metrics = self.platform.path_model.evaluate(
            down_route, result.ts, down_ack)
        up_metrics = self.platform.path_model.evaluate(
            up_route, result.ts, up_ack)

        down_flows = self._capture.capture(
            down_metrics, result.download_bytes,
            self.config.download_duration_s,
            self.config.n_flows, "download")
        up_flows = self._capture.capture(
            up_metrics, result.upload_bytes,
            self.config.upload_duration_s,
            self.config.n_flows, "upload")

        rtt = estimate_rtt_ms(down_flows + up_flows)
        down_loss = estimate_loss_rate(down_flows)
        up_loss = estimate_loss_rate(up_flows)

        record = MeasurementRecord(
            ts=result.ts,
            region=region,
            vm_name=vm.name,
            server_id=result.server_id,
            tier=vm.tier,
            download_mbps=result.download_mbps,
            upload_mbps=result.upload_mbps,
            latency_ms=result.latency_ms,
            download_loss_rate=down_loss,
            upload_loss_rate=up_loss,
        )
        return ProcessedTest(
            record=record,
            download_flows=tuple(down_flows),
            upload_flows=tuple(up_flows),
            estimated_rtt_ms=rtt,
            estimated_download_loss=down_loss,
            estimated_upload_loss=up_loss,
        )
