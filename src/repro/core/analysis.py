"""Campaign analyses behind the paper's figures.

* :func:`performance_scatter` - monthly 95th-percentile download
  throughput vs 5th-percentile latency per (VM-region, server) pair
  (Fig. 4a/4b/4c).
* :func:`tier_comparison` - relative premium-vs-standard differences
  of download/upload throughput and latency for same-hour paired
  measurements (Fig. 5a/5b/5c).
* :func:`congestion_probability` - per-server, per-local-hour event
  rates (Fig. 6).
* :func:`congested_server_summary` - congested / non-congested server
  counts by business type (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..cloud.tiers import NetworkTier
from ..errors import AnalysisError
from ..units import DAY, HOUR
from .campaign import CampaignDataset
from .congestion import CongestionReport, PairKey

__all__ = [
    "ScatterPoint",
    "performance_scatter",
    "TierComparison",
    "tier_comparison",
    "HourlyProbability",
    "congestion_probability",
    "top_congested_pairs",
    "congested_server_summary",
]


# ----------------------------------------------------------------------
# Fig. 4 - best-performance scatter


@dataclass(frozen=True)
class ScatterPoint:
    """One (pair, month) point of the Fig. 4 scatter."""

    region: str
    server_id: str
    tier: str
    month_index: int
    p95_download_mbps: float
    p5_latency_ms: float
    n_samples: int


def performance_scatter(dataset: CampaignDataset,
                        region: Optional[str] = None,
                        tier: Optional[NetworkTier] = None,
                        min_samples: int = 48) -> List[ScatterPoint]:
    """Monthly p95 download / p5 latency per pair.

    Months are 30-day windows from the campaign start (the paper plots
    one point per server per calendar month).
    """
    points: List[ScatterPoint] = []
    month_s = 30 * DAY
    with obs.span("analysis.performance_scatter", layer="analysis") as sp:
        for pair in dataset.pairs(region=region, tier=tier):
            series = dataset.table.series(pair)
            month_idx = ((series["ts"] - dataset.start_ts)
                         // month_s).astype(int)
            for month in np.unique(month_idx):
                mask = month_idx == month
                if mask.sum() < min_samples:
                    continue
                points.append(ScatterPoint(
                    region=pair[0], server_id=pair[1], tier=pair[2],
                    month_index=int(month),
                    p95_download_mbps=float(
                        np.percentile(series["download"][mask], 95)),
                    p5_latency_ms=float(
                        np.percentile(series["latency"][mask], 5)),
                    n_samples=int(mask.sum())))
        sp.annotate(n_points=len(points))
    return points


# ----------------------------------------------------------------------
# Fig. 5 - premium vs standard tier


@dataclass
class TierComparison:
    """Paired same-hour tier measurements for one region."""

    region: str
    #: server_id -> arrays of relative differences, one entry per
    #: matched hour: (T_prem - T_std) / T_std.
    delta_download: Dict[str, np.ndarray] = field(default_factory=dict)
    delta_upload: Dict[str, np.ndarray] = field(default_factory=dict)
    delta_latency: Dict[str, np.ndarray] = field(default_factory=dict)
    n_matched_hours: int = 0

    def all_deltas(self, metric: str) -> np.ndarray:
        data = {"download": self.delta_download,
                "upload": self.delta_upload,
                "latency": self.delta_latency}.get(metric)
        if data is None:
            raise AnalysisError(f"unknown metric {metric!r}")
        if not data:
            return np.array([])
        return np.concatenate(list(data.values()))

    def standard_faster_fraction(self, server_id: str,
                                 metric: str = "download") -> float:
        """Fraction of matched hours where the standard tier won."""
        data = {"download": self.delta_download,
                "upload": self.delta_upload}[metric]
        deltas = data.get(server_id)
        if deltas is None or deltas.size == 0:
            return 0.0
        return float((deltas < 0).mean())

    def servers(self) -> List[str]:
        return sorted(self.delta_download)


def tier_comparison(dataset: CampaignDataset, region: str,
                    min_matched_hours: int = 1) -> TierComparison:
    """Pair premium/standard measurements taken in the same hour.

    Relative difference (paper's definition):
    ``delta_m = (T_prem - T_std) / T_std`` for each metric m in
    download, upload, latency.  Negative download/upload delta means
    the standard tier was faster; negative latency delta means the
    premium tier had lower latency.

    Servers whose premium/standard series overlap in fewer than
    *min_matched_hours* hours (e.g. one side lost to faults) are
    dropped rather than contributing near-empty delta arrays.
    """
    if min_matched_hours < 1:
        raise AnalysisError(
            f"min_matched_hours must be >= 1, got {min_matched_hours}")
    comparison = TierComparison(region=region)
    with obs.span("analysis.tier_comparison", layer="analysis",
                  region=region) as sp:
        prem_pairs = {p[1]: p for p in dataset.pairs(
            region=region, tier=NetworkTier.PREMIUM)}
        std_pairs = {p[1]: p for p in dataset.pairs(
            region=region, tier=NetworkTier.STANDARD)}
        for server_id in sorted(set(prem_pairs) & set(std_pairs)):
            prem = dataset.table.series(prem_pairs[server_id])
            std = dataset.table.series(std_pairs[server_id])
            prem_hours = (prem["ts"] // HOUR).astype(int)
            std_hours = (std["ts"] // HOUR).astype(int)
            common, prem_idx, std_idx = np.intersect1d(
                prem_hours, std_hours, return_indices=True)
            if common.size < min_matched_hours:
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                d_down = (prem["download"][prem_idx]
                          - std["download"][std_idx]) \
                    / std["download"][std_idx]
                d_up = (prem["upload"][prem_idx] - std["upload"][std_idx]) \
                    / std["upload"][std_idx]
                d_lat = (prem["latency"][prem_idx]
                         - std["latency"][std_idx]) \
                    / std["latency"][std_idx]
            keep = (np.isfinite(d_down) & np.isfinite(d_up)
                    & np.isfinite(d_lat))
            comparison.delta_download[server_id] = d_down[keep]
            comparison.delta_upload[server_id] = d_up[keep]
            comparison.delta_latency[server_id] = d_lat[keep]
            comparison.n_matched_hours += int(keep.sum())
        sp.annotate(n_matched_hours=comparison.n_matched_hours)
    return comparison


# ----------------------------------------------------------------------
# Fig. 6 - hourly congestion probability


@dataclass(frozen=True)
class HourlyProbability:
    """Per-local-hour congestion probability for one pair."""

    pair: PairKey
    label: str
    #: probability[h] = events in local hour h / measurements in hour h
    probability: Tuple[float, ...]
    n_events: int

    @property
    def peak_hour(self) -> int:
        return int(np.argmax(self.probability))


def congestion_probability(dataset: CampaignDataset,
                           report: CongestionReport,
                           pair: PairKey) -> HourlyProbability:
    """Hour-of-day congestion probability (server-local time)."""
    region, server_id, tier = pair
    with obs.span("analysis.congestion_probability", layer="analysis",
                  server=server_id):
        meta = dataset.server_meta(server_id)
        series = dataset.table.series(pair)
        local_hours = (((series["ts"] + meta.utc_offset_hours * HOUR)
                        // HOUR) % 24).astype(int)
        measurements = np.bincount(local_hours, minlength=24)
        events = np.zeros(24, dtype=int)
        for event in report.events_of(pair):
            events[event.local_hour] += 1
        with np.errstate(divide="ignore", invalid="ignore"):
            prob = np.where(measurements > 0, events / measurements, 0.0)
    return HourlyProbability(
        pair=pair,
        label=meta.label,
        probability=tuple(float(p) for p in prob),
        n_events=int(events.sum()))


def top_congested_pairs(report: CongestionReport, region: str,
                        tier: Optional[NetworkTier] = None,
                        k: int = 10) -> List[PairKey]:
    """The *k* pairs with the most congestion events in a region."""
    counts: Dict[PairKey, int] = {}
    for event in report.events:
        if event.pair[0] != region:
            continue
        if tier is not None and event.pair[2] != tier.value:
            continue
        counts[event.pair] = counts.get(event.pair, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [pair for pair, _n in ranked[:k]]


# ----------------------------------------------------------------------
# Fig. 8 - congested servers by business type


def congested_server_summary(dataset: CampaignDataset,
                             report: CongestionReport,
                             region: str,
                             tier: Optional[NetworkTier] = None,
                             min_day_fraction: float = 0.10
                             ) -> Dict[str, Tuple[int, int]]:
    """business type -> (congested servers, total servers)."""
    out: Dict[str, Tuple[int, int]] = {}
    for pair in dataset.pairs(region=region, tier=tier):
        meta = dataset.server_meta(pair[1])
        btype = meta.business_type
        congested, total = out.get(btype, (0, 0))
        total += 1
        if report.is_congested_server(pair, min_day_fraction):
            congested += 1
        out[btype] = (congested, total)
    return out
