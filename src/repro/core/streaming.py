"""Incremental sliding-window congestion detection (ROADMAP item 3).

The batch :func:`repro.core.congestion.detect` re-scans the whole
dataset after the campaign ends.  :class:`StreamingCongestionDetector`
consumes the same measurements *as events happen* and keeps per-pair
day buckets, ``V(s, d)``, ``V_H`` events, and congested-server state
up to date in O(new observations) per hour:

* every completed test appends one ``(ts, value)`` sample to its
  pair's *open* local-day bucket;
* each hour boundary advances a watermark; any open day whose local
  midnight has passed (plus a configurable lateness grace) is
  *sealed* - the bucket is sorted once and handed to the same
  :func:`~repro.core.congestion.summarize_day` the batch pass uses,
  yielding the day's :class:`~repro.core.congestion.DayRecord`,
  congestion events, and measured-hour count;
* sealed day summaries are tiny aggregates, so live queries
  (:meth:`pair_state`, :meth:`congested_pairs`) never touch raw
  samples, and an optional ``window_days`` horizon makes the live
  congested-server label a sliding window over the most recent days.

**Equivalence contract**: :meth:`finalize` returns a
:class:`~repro.core.congestion.CongestionReport` *equal* (same events,
day records, and pair_hours - identical floats) to batch ``detect()``
on the dataset built from the same event stream, for any
``window_days``, as long as no observation arrived later than the
sealing grace allowed (``late_dropped`` counts the ones that did).
Both paths share one bucketing implementation -
:func:`~repro.core.congestion.midnight_day_index` plus
:func:`~repro.core.congestion.summarize_day` - which is what makes the
contract bit-for-bit rather than merely approximate.

:class:`StreamingDetectorObserver` adapts the detector to the engine's
:class:`~repro.engine.bus.EventBus`; it works identically on the
inline bus and on :func:`repro.shard.replay_events`'s merged stream
(the replay synthesizes the same single hour framing the inline bus
emits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, ClassVar, Dict, Iterable, List,
                    Optional, Tuple)

import numpy as np

from ..engine.observers import Observer
from ..errors import AnalysisError, ValidationError
from ..units import DAY, HOUR
from .campaign import CampaignDataset
from .congestion import (MIN_SAMPLES_PER_DAY, PAPER_THRESHOLD,
                         CongestionEvent, CongestionReport, DayRecord,
                         DaySummary, PairKey, midnight_day_index,
                         summarize_day)

__all__ = [
    "PairCongestionState",
    "StreamingCongestionDetector",
    "StreamingDetectorObserver",
    "catalog_offsets",
    "dataset_offsets",
    "iter_hourly",
    "stream_dataset",
]

#: metric name (table field) -> MeasurementRecord attribute.
_METRIC_ATTRS = {
    "download": "download_mbps",
    "upload": "upload_mbps",
    "latency": "latency_ms",
    "loss_down": "download_loss_rate",
    "loss_up": "upload_loss_rate",
}


def dataset_offsets(dataset: CampaignDataset) -> Callable[[str], float]:
    """Server UTC-offset resolver backed by a dataset's metadata."""
    return lambda server_id: dataset.server_meta(server_id).utc_offset_hours


def catalog_offsets(catalog: Any, topology: Any) -> Callable[[str], float]:
    """Server UTC-offset resolver backed by catalog + topology.

    This is what a live campaign uses: the observer is built *before*
    the runner creates the dataset, so offsets come from the same
    city table :meth:`CampaignRunner.register_metadata` reads.
    """
    def offset_of(server_id: str) -> float:
        server = catalog.get(server_id)
        return topology.cities[server.city_key].utc_offset_hours
    return offset_of


class _OpenDay:
    """One still-mutable pair-day: samples in arrival order."""

    __slots__ = ("due_ts", "ts", "values")

    def __init__(self, due_ts: float) -> None:
        self.due_ts = due_ts
        self.ts: List[float] = []
        self.values: List[float] = []


@dataclass(frozen=True)
class PairCongestionState:
    """Live congestion state of one pair over the current window."""

    pair: PairKey
    #: Sealed days with enough samples (the denominator).
    measured_days: int
    #: Measured days with at least one V_H event.
    congested_days: int
    n_events: int
    #: The paper's label: >``min_day_fraction`` of days have events.
    congested: bool

    @property
    def congested_day_fraction(self) -> float:
        if self.measured_days == 0:
            return 0.0
        return self.congested_days / self.measured_days


class StreamingCongestionDetector:
    """Sliding-window V_H detection updated in O(new samples)/hour.

    *offset_of* maps a server id to its UTC offset in hours (see
    :func:`dataset_offsets` / :func:`catalog_offsets`).  *window_days*
    bounds the live congested-server state to the most recent local
    days (``None`` = unbounded, matching the batch label); it does not
    affect :meth:`finalize`.  *lateness_hours* delays sealing so
    bounded out-of-order delivery still lands in the right bucket;
    observations for already-sealed days are dropped and counted in
    :attr:`late_dropped`.
    """

    def __init__(self, start_ts: float,
                 offset_of: Callable[[str], float],
                 threshold: float = PAPER_THRESHOLD,
                 metric: str = "download",
                 min_samples: int = MIN_SAMPLES_PER_DAY,
                 window_days: Optional[int] = None,
                 lateness_hours: float = 0.0) -> None:
        if metric not in _METRIC_ATTRS:
            raise AnalysisError(f"unknown metric {metric!r}")
        if window_days is not None and window_days < 1:
            raise ValidationError(
                f"window_days must be >= 1, got {window_days}")
        if lateness_hours < 0:
            raise ValidationError(
                f"lateness_hours must be >= 0, got {lateness_hours}")
        self.start_ts = float(start_ts)
        self.threshold = threshold
        self.metric = metric
        self.min_samples = min_samples
        self.window_days = window_days
        self.lateness_s = lateness_hours * HOUR
        self.watermark = float(start_ts)
        self._offset_of = offset_of
        self._offsets: Dict[str, float] = {}
        self._open: Dict[PairKey, Dict[int, _OpenDay]] = {}
        self._sealed: Dict[PairKey, Dict[int, DaySummary]] = {}
        #: Total observations accepted (late ones excluded).
        self.observed = 0
        #: Observations that arrived after their day was sealed.
        self.late_dropped = 0
        #: Sealed pair-days so far.
        self.sealed_days = 0
        #: Bumps whenever sealed state changes (snapshot cache key).
        self.version = 0

    # ------------------------------------------------------------------
    # ingestion

    def _offset(self, server_id: str) -> float:
        offset = self._offsets.get(server_id)
        if offset is None:
            offset = self._offsets[server_id] = float(
                self._offset_of(server_id))
        return offset

    def _due_ts(self, day: int, offset: float) -> float:
        """UTC instant at which local day *day* can be sealed."""
        origin_day = int((self.start_ts + offset * HOUR) // DAY)
        end_utc = (origin_day + day + 1) * DAY - offset * HOUR
        return end_utc + self.lateness_s

    def observe(self, pair: PairKey, ts: float, value: float) -> bool:
        """Ingest one measurement; False when it was too late to keep."""
        offset = self._offset(pair[1])
        day = midnight_day_index(ts, offset, self.start_ts)
        sealed = self._sealed.get(pair)
        if sealed is not None and day in sealed:
            self.late_dropped += 1
            return False
        days = self._open.setdefault(pair, {})
        bucket = days.get(day)
        if bucket is None:
            bucket = days[day] = _OpenDay(self._due_ts(day, offset))
        bucket.ts.append(float(ts))
        bucket.values.append(float(value))
        self.observed += 1
        return True

    def observe_record(self, record: Any) -> bool:
        """Ingest one :class:`~repro.core.records.MeasurementRecord`."""
        pair = (record.region, record.server_id, record.tier.value)
        value = getattr(record, _METRIC_ATTRS[self.metric])
        return self.observe(pair, record.ts, value)

    def advance(self, ts: float) -> int:
        """Move the watermark forward, sealing every due open day.

        Returns the number of pair-days sealed.  Moving backwards is a
        no-op (the merged shard replay can legitimately re-announce the
        current hour).
        """
        if ts > self.watermark:
            self.watermark = float(ts)
        return self._seal_due(self.watermark)

    def _seal_due(self, watermark: float) -> int:
        n = 0
        for pair, days in self._open.items():
            due = [day for day, bucket in days.items()
                   if bucket.due_ts <= watermark]
            for day in sorted(due):
                self._seal(pair, day, days.pop(day))
                n += 1
        if n:
            self.version += 1
        return n

    def _seal(self, pair: PairKey, day: int, bucket: _OpenDay) -> None:
        ts = np.asarray(bucket.ts, dtype=float)
        values = np.asarray(bucket.values, dtype=float)
        # Stable ts sort reproduces the dataset table's within-day
        # ordering (ties keep arrival order), so summarize_day sees
        # exactly the bucket the batch pass would build.
        order = np.argsort(ts, kind="stable")
        summary = summarize_day(pair, self._offset(pair[1]), day,
                                ts[order], values[order],
                                self.threshold, self.min_samples)
        self._sealed.setdefault(pair, {})[day] = summary
        self.sealed_days += 1

    def finalize(self) -> CongestionReport:
        """Seal everything and return the batch-equivalent report."""
        n = 0
        for pair in list(self._open):
            days = self._open.pop(pair)
            for day in sorted(days):
                self._seal(pair, day, days[day])
                n += 1
        if n:
            self.version += 1
        report = CongestionReport(threshold=self.threshold,
                                  metric=self.metric)
        for pair in sorted(self._sealed):
            hours = 0
            days = self._sealed[pair]
            for day in sorted(days):
                summary = days[day]
                if summary.record is not None:
                    report.day_records.append(summary.record)
                hours += summary.measured_hours
                report.events.extend(summary.events)
            report.pair_hours[pair] = hours
        return report

    # ------------------------------------------------------------------
    # live state

    def pairs(self) -> List[PairKey]:
        return sorted(set(self._sealed) | set(self._open))

    def _window_floor(self, pair: PairKey) -> Optional[int]:
        if self.window_days is None:
            return None
        offset = self._offset(pair[1])
        current = midnight_day_index(self.watermark, offset,
                                     self.start_ts)
        return current - self.window_days

    def pair_state(self, pair: PairKey,
                   min_day_fraction: float = 0.10) -> PairCongestionState:
        """Live (windowed) congestion state of one pair, O(sealed days)."""
        floor = self._window_floor(pair)
        measured = congested = n_events = 0
        for day, summary in self._sealed.get(pair, {}).items():
            if floor is not None and day < floor:
                continue
            if summary.record is not None:
                measured += 1
                if summary.events:
                    congested += 1
                    n_events += len(summary.events)
        return PairCongestionState(
            pair=pair, measured_days=measured, congested_days=congested,
            n_events=n_events,
            congested=(measured > 0
                       and congested / measured > min_day_fraction))

    def congested_pairs(self, min_day_fraction: float = 0.10
                        ) -> List[PairKey]:
        """Pairs currently labeled congested over the live window."""
        return [pair for pair in self.pairs()
                if self.pair_state(pair, min_day_fraction).congested]

    def sealed_items(self) -> Iterable[Tuple[PairKey, int, DaySummary]]:
        """Sealed day summaries in deterministic (pair, day) order.

        A sealed pair-day is immutable, so consumers (the alerts
        collector's event export) can track what they have already
        seen by ``(pair, day)`` key.
        """
        for pair in sorted(self._sealed):
            days = self._sealed[pair]
            for day in sorted(days):
                yield pair, day, days[day]

    # ------------------------------------------------------------------
    # persistence (daemon save/restore)

    def state_dict(self) -> Dict[str, Any]:
        """Full JSON-serializable state, exact to the float.

        Everything except the ``offset_of`` callable is captured -
        including cached offsets, open buckets in arrival order, and
        sealed summaries - so :meth:`load_state` resumes a detector
        whose every future output is bit-identical to one that never
        stopped.
        """
        return {
            "start_ts": self.start_ts,
            "threshold": self.threshold,
            "metric": self.metric,
            "min_samples": self.min_samples,
            "window_days": self.window_days,
            "lateness_s": self.lateness_s,
            "watermark": self.watermark,
            "observed": self.observed,
            "late_dropped": self.late_dropped,
            "sealed_days": self.sealed_days,
            "version": self.version,
            "offsets": {sid: self._offsets[sid]
                        for sid in sorted(self._offsets)},
            "open": [
                {"pair": list(pair), "day": day, "due_ts": bucket.due_ts,
                 "ts": list(bucket.ts), "values": list(bucket.values)}
                for pair in sorted(self._open)
                for day, bucket in sorted(self._open[pair].items())],
            "sealed": [
                {"pair": list(pair), "day": day,
                 "summary": _summary_to_dict(summary)}
                for pair, day, summary in self.sealed_items()],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output, replacing current state.

        The ``offset_of`` resolver passed at construction is kept (it
        is the one thing the snapshot cannot carry), but the cached
        offsets are restored, so a resumed detector keeps bucketing
        with exactly the offsets it had already resolved.
        """
        self.start_ts = float(state["start_ts"])
        self.threshold = state["threshold"]
        self.metric = state["metric"]
        if self.metric not in _METRIC_ATTRS:
            raise AnalysisError(f"unknown metric {self.metric!r}")
        self.min_samples = state["min_samples"]
        self.window_days = state["window_days"]
        self.lateness_s = float(state["lateness_s"])
        self.watermark = float(state["watermark"])
        self.observed = int(state["observed"])
        self.late_dropped = int(state["late_dropped"])
        self.sealed_days = int(state["sealed_days"])
        self.version = int(state["version"])
        self._offsets = {sid: float(offset)
                         for sid, offset in state["offsets"].items()}
        self._open = {}
        for entry in state["open"]:
            pair = tuple(entry["pair"])
            bucket = _OpenDay(float(entry["due_ts"]))
            bucket.ts = [float(ts) for ts in entry["ts"]]
            bucket.values = [float(v) for v in entry["values"]]
            self._open.setdefault(pair, {})[int(entry["day"])] = bucket
        self._sealed = {}
        for entry in state["sealed"]:
            pair = tuple(entry["pair"])
            self._sealed.setdefault(pair, {})[int(entry["day"])] = (
                _summary_from_dict(entry["summary"]))


def _summary_to_dict(summary: DaySummary) -> Dict[str, Any]:
    record = summary.record
    return {
        "record": None if record is None else {
            "pair": list(record.pair), "day_index": record.day_index,
            "n_samples": record.n_samples, "t_max": record.t_max,
            "t_min": record.t_min},
        "measured_hours": summary.measured_hours,
        "events": [
            {"ts": e.ts, "local_hour": e.local_hour,
             "day_index": e.day_index, "v_h": e.v_h,
             "throughput_mbps": e.throughput_mbps,
             "day_peak_mbps": e.day_peak_mbps}
            for e in summary.events],
    }


def _summary_from_dict(data: Dict[str, Any]) -> DaySummary:
    pair = None
    record = data["record"]
    if record is not None:
        pair = tuple(record["pair"])
        record = DayRecord(pair=pair, day_index=int(record["day_index"]),
                           n_samples=int(record["n_samples"]),
                           t_max=float(record["t_max"]),
                           t_min=float(record["t_min"]))
    events = []
    for e in data["events"]:
        if pair is None:
            raise ValidationError(
                "sealed-day snapshot has events but no day record")
        events.append(CongestionEvent(
            pair=pair, ts=float(e["ts"]), local_hour=int(e["local_hour"]),
            day_index=int(e["day_index"]), v_h=float(e["v_h"]),
            throughput_mbps=float(e["throughput_mbps"]),
            day_peak_mbps=float(e["day_peak_mbps"])))
    return DaySummary(record=record, measured_hours=int(
        data["measured_hours"]), events=tuple(events))


# ----------------------------------------------------------------------
# engine wiring


class StreamingDetectorObserver(Observer):
    """Feeds a :class:`StreamingCongestionDetector` from the event bus.

    Subscribes like any campaign observer; hour boundaries drive the
    detector's watermark, completed tests feed it, and campaign end
    advances the watermark to the final boundary (sealing every
    complete day) without finalizing - the caller decides when to
    :meth:`~StreamingCongestionDetector.finalize`.
    """

    #: Kinds with no bearing on congestion state.
    IGNORED_EVENTS: ClassVar[Tuple[str, ...]] = (
        "billing-charged", "test-lost", "test-retried",
        "upload-attempted", "vm-preempted", "vm-replaced")

    def __init__(self, detector: StreamingCongestionDetector) -> None:
        self.detector = detector

    def on_hour_started(self, event: Any) -> None:
        self.detector.advance(event.ts)

    def on_test_completed(self, event: Any) -> None:
        if event.record is None:
            raise ValidationError(
                "TestCompleted event carries no record payload; the "
                "streaming detector cannot bucket the measurement "
                "without it")
        self.detector.observe_record(event.record)

    def on_campaign_finished(self, event: Any) -> None:
        self.detector.advance(event.ts)


# ----------------------------------------------------------------------
# replay


def stream_dataset(dataset: CampaignDataset,
                   detector: Optional[StreamingCongestionDetector] = None,
                   **kwargs: Any) -> Tuple[StreamingCongestionDetector,
                                           CongestionReport]:
    """Replay a finished dataset hour by hour through a detector.

    Builds a detector over the dataset's own metadata when none is
    given (*kwargs* forward to its constructor), feeds every
    measurement in hour order - each pair's samples in series order,
    so tie-breaking matches the table - and finalizes.  Returns
    ``(detector, report)``; the report equals batch ``detect()`` on
    the same dataset.
    """
    if detector is None:
        detector = StreamingCongestionDetector(
            dataset.start_ts, dataset_offsets(dataset), **kwargs)
    elif kwargs:
        raise ValidationError(
            "pass detector kwargs only when stream_dataset builds "
            "the detector")
    rows: List[Tuple[float, PairKey, float]] = []
    for pair in dataset.pairs():
        series = dataset.table.series(pair)
        values = series.get(detector.metric)
        if values is None:
            raise AnalysisError(f"unknown metric {detector.metric!r}")
        for ts, value in zip(series["ts"], values):
            rows.append((float(ts), pair, float(value)))
    rows.sort(key=lambda row: row[0])  # stable: per-pair order survives
    feed = iter_hourly(rows, dataset.start_ts, dataset.end_ts)
    for hour_ts, hour_rows in feed:
        detector.advance(hour_ts)
        for ts, pair, value in hour_rows:
            detector.observe(pair, ts, value)
    return detector, detector.finalize()


def iter_hourly(rows: List[Tuple[float, PairKey, float]],
                start_ts: float, end_ts: float
                ) -> Iterable[Tuple[float, List[Tuple[float, PairKey,
                                                      float]]]]:
    """Group ts-sorted rows into hour batches, one per campaign hour.

    Yields ``(hour_start_ts, rows_in_hour)`` for every hour in
    ``[start_ts, end_ts)`` (plus a trailing batch when measurements
    run past the end), mirroring how the engine frames hours.
    """
    n_hours = max(int((end_ts - start_ts) // HOUR), 0)
    index = 0
    for hour in range(n_hours):
        hour_ts = start_ts + hour * HOUR
        upper = hour_ts + HOUR
        batch: List[Tuple[float, PairKey, float]] = []
        while index < len(rows) and rows[index][0] < upper:
            batch.append(rows[index])
            index += 1
        yield hour_ts, batch
    if index < len(rows):
        yield start_ts + n_hours * HOUR, rows[index:]
