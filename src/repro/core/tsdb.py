"""A small tag-indexed time-series store (the InfluxDB substitute).

Rows are appended as ``(ts, tags, fields)``; storage is columnar per
distinct tag tuple, so group-by-tags queries (the only kind the
analyses need) are O(1) lookups returning numpy arrays.  Tag values are
strings, field values floats, timestamps simulated epoch seconds.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TSDBError

__all__ = ["Table", "TimeSeriesDB"]

#: One row for :meth:`Table.extend`: ``(ts, tags, fields)``.
Row = Tuple[float, Sequence[str], Sequence[float]]


class _SeriesBuffer:
    """Append-only columnar buffer for one tag combination.

    The timestamp-sorted view :meth:`sorted_view` is computed once and
    cached; any append invalidates it.  Cached arrays are marked
    read-only so an accidental in-place mutation fails loudly instead
    of corrupting every later read.
    """

    __slots__ = ("ts", "fields", "_sorted")

    def __init__(self, n_fields: int) -> None:
        self.ts = array("d")
        self.fields = [array("d") for _ in range(n_fields)]
        self._sorted: Optional[List[np.ndarray]] = None

    def append(self, ts: float, values: Sequence[float]) -> None:
        self._sorted = None
        self.ts.append(ts)
        for column, value in zip(self.fields, values):
            column.append(value)

    def extend(self, ts_values: Sequence[float],
               field_columns: Sequence[Sequence[float]]) -> None:
        """Append many rows at once (columnar input)."""
        self._sorted = None
        self.ts.extend(ts_values)
        for column, values in zip(self.fields, field_columns):
            column.extend(values)

    def sorted_view(self) -> List[np.ndarray]:
        """``[ts, field0, field1, ...]`` sorted by timestamp (cached)."""
        if self._sorted is None:
            ts = np.asarray(self.ts, dtype=float)
            order = np.argsort(ts, kind="stable")
            arrays = [ts[order]]
            arrays.extend(np.asarray(column, dtype=float)[order]
                          for column in self.fields)
            for arr in arrays:
                arr.setflags(write=False)
            self._sorted = arrays
        return self._sorted

    def __len__(self) -> int:
        return len(self.ts)


class Table:
    """One measurement table with fixed tag and field schemas."""

    def __init__(self, name: str, tag_names: Sequence[str],
                 field_names: Sequence[str]) -> None:
        if not field_names:
            raise TSDBError(f"table {name!r} needs at least one field")
        if len(set(tag_names)) != len(tag_names):
            raise TSDBError(f"table {name!r} has duplicate tag names")
        if len(set(field_names)) != len(field_names):
            raise TSDBError(f"table {name!r} has duplicate field names")
        self.name = name
        self.tag_names = tuple(tag_names)
        self.field_names = tuple(field_names)
        self._field_index = {n: i for i, n in enumerate(field_names)}
        self._series: Dict[Tuple[str, ...], _SeriesBuffer] = {}

    # ------------------------------------------------------------------
    # writes

    def append(self, ts: float, tags: Sequence[str],
               fields: Sequence[float]) -> None:
        """Append one row."""
        if len(tags) != len(self.tag_names):
            raise TSDBError(
                f"expected {len(self.tag_names)} tags, got {len(tags)}")
        if len(fields) != len(self.field_names):
            raise TSDBError(
                f"expected {len(self.field_names)} fields, got {len(fields)}")
        key = tuple(tags)
        buf = self._series.get(key)
        if buf is None:
            buf = _SeriesBuffer(len(self.field_names))
            self._series[key] = buf
        buf.append(ts, fields)

    def extend(self, rows: Iterable[Row]) -> None:
        """Append many ``(ts, tags, fields)`` rows in one batch.

        Rows are grouped per tag tuple and written columnarly, so a
        per-hour flush touches each series buffer once instead of once
        per row.  Validation matches :meth:`append`.
        """
        grouped: Dict[Tuple[str, ...],
                      Tuple[List[float], List[List[float]]]] = {}
        for ts, tags, fields in rows:
            if len(tags) != len(self.tag_names):
                raise TSDBError(
                    f"expected {len(self.tag_names)} tags, got {len(tags)}")
            if len(fields) != len(self.field_names):
                raise TSDBError(
                    f"expected {len(self.field_names)} fields, "
                    f"got {len(fields)}")
            key = tuple(tags)
            group = grouped.get(key)
            if group is None:
                group = grouped[key] = (
                    [], [[] for _ in self.field_names])
            group[0].append(ts)
            for column, value in zip(group[1], fields):
                column.append(value)
        for key, (ts_values, field_columns) in grouped.items():
            buf = self._series.get(key)
            if buf is None:
                buf = _SeriesBuffer(len(self.field_names))
                self._series[key] = buf
            buf.extend(ts_values, field_columns)

    # ------------------------------------------------------------------
    # reads

    def tag_combinations(self) -> List[Tuple[str, ...]]:
        """All distinct tag tuples, sorted."""
        return sorted(self._series)

    def distinct(self, tag_name: str) -> List[str]:
        """Distinct values of one tag across all series."""
        idx = self._tag_index(tag_name)
        return sorted({key[idx] for key in self._series})

    def _tag_index(self, tag_name: str) -> int:
        try:
            return self.tag_names.index(tag_name)
        except ValueError:
            raise TSDBError(
                f"table {self.name!r} has no tag {tag_name!r}") from None

    def series(self, tags: Sequence[str]) -> Dict[str, np.ndarray]:
        """The full series for one exact tag tuple.

        Returns a dict with key ``"ts"`` plus one key per field, sorted
        by timestamp.  The arrays come from a per-series cache that is
        invalidated on append, and are read-only; copy before mutating.
        """
        key = tuple(tags)
        buf = self._series.get(key)
        if buf is None:
            raise TSDBError(
                f"no series for tags {key!r} in table {self.name!r}")
        arrays = buf.sorted_view()
        out: Dict[str, np.ndarray] = {"ts": arrays[0]}
        for name, column in zip(self.field_names, arrays[1:]):
            out[name] = column
        return out

    def select(self, **tag_filters: str
               ) -> Iterator[Tuple[Tuple[str, ...], Dict[str, np.ndarray]]]:
        """Iterate (tag tuple, series) for series matching the filters.

        Filters are exact tag-value matches, e.g.
        ``table.select(region="us-west1", tier="premium")``.
        """
        indices = {name: self._tag_index(name) for name in tag_filters}
        for key in self.tag_combinations():
            if all(key[indices[name]] == value
                   for name, value in tag_filters.items()):
                yield key, self.series(key)

    def count(self, **tag_filters: str) -> int:
        """Number of rows matching the filters."""
        total = 0
        indices = {name: self._tag_index(name) for name in tag_filters}
        for key, buf in self._series.items():
            if all(key[indices[name]] == value
                   for name, value in tag_filters.items()):
                total += len(buf)
        return total

    def __len__(self) -> int:
        return sum(len(buf) for buf in self._series.values())

    # ------------------------------------------------------------------
    # persistence

    def dump(self) -> Dict[str, object]:
        """JSON-serializable snapshot of schema and every series.

        Rows are emitted in arrival order per series (the order that
        determines stable-sort tie-breaking), so a dump/restore round
        trip reproduces :meth:`series` views bit for bit.
        """
        return {
            "name": self.name,
            "tag_names": list(self.tag_names),
            "field_names": list(self.field_names),
            "series": [
                {"tags": list(key),
                 "ts": list(buf.ts),
                 "fields": [list(column) for column in buf.fields]}
                for key, buf in sorted(self._series.items())],
        }

    @classmethod
    def from_dump(cls, dump: Dict[str, object]) -> "Table":
        """Rebuild a table from :meth:`dump` output."""
        try:
            table = cls(dump["name"], dump["tag_names"],
                        dump["field_names"])
            entries = dump["series"]
        except (KeyError, TypeError):
            raise TSDBError("malformed table dump") from None
        for entry in entries:
            key = tuple(entry["tags"])
            if len(key) != len(table.tag_names):
                raise TSDBError(
                    f"table {table.name!r}: dumped series {key!r} has "
                    f"{len(key)} tags, schema has {len(table.tag_names)}")
            columns = entry["fields"]
            if len(columns) != len(table.field_names):
                raise TSDBError(
                    f"table {table.name!r}: dumped series {key!r} has "
                    f"{len(columns)} field columns, schema has "
                    f"{len(table.field_names)}")
            ts_values = entry["ts"]
            if any(len(column) != len(ts_values) for column in columns):
                raise TSDBError(
                    f"table {table.name!r}: dumped series {key!r} has "
                    "ragged field columns")
            buf = _SeriesBuffer(len(table.field_names))
            buf.extend([float(ts) for ts in ts_values],
                       [[float(v) for v in column] for column in columns])
            table._series[key] = buf
        return table


class TimeSeriesDB:
    """A named collection of tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, tag_names: Sequence[str],
                     field_names: Sequence[str]) -> Table:
        if name in self._tables:
            raise TSDBError(f"table {name!r} already exists")
        table = Table(name, tag_names, field_names)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TSDBError(f"unknown table {name!r}") from None

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def dump(self) -> Dict[str, object]:
        """JSON-serializable snapshot of every table (see Table.dump)."""
        return {"tables": [self._tables[name].dump()
                           for name in self.tables()]}

    @classmethod
    def from_dump(cls, dump: Dict[str, object]) -> "TimeSeriesDB":
        """Rebuild a database from :meth:`dump` output."""
        try:
            entries = dump["tables"]
        except (KeyError, TypeError):
            raise TSDBError("malformed database dump") from None
        db = cls()
        for entry in entries:
            table = Table.from_dump(entry)
            if table.name in db._tables:
                raise TSDBError(
                    f"database dump repeats table {table.name!r}")
            db._tables[table.name] = table
        return db
