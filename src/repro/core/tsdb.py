"""A small tag-indexed time-series store (the InfluxDB substitute).

Rows are appended as ``(ts, tags, fields)``; storage is columnar per
distinct tag tuple, so group-by-tags queries (the only kind the
analyses need) are O(1) lookups returning numpy arrays.  Tag values are
strings, field values floats, timestamps simulated epoch seconds.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import TSDBError

__all__ = ["Table", "TimeSeriesDB"]


class _SeriesBuffer:
    """Append-only columnar buffer for one tag combination."""

    __slots__ = ("ts", "fields")

    def __init__(self, n_fields: int) -> None:
        self.ts = array("d")
        self.fields = [array("d") for _ in range(n_fields)]

    def append(self, ts: float, values: Sequence[float]) -> None:
        self.ts.append(ts)
        for column, value in zip(self.fields, values):
            column.append(value)

    def __len__(self) -> int:
        return len(self.ts)


class Table:
    """One measurement table with fixed tag and field schemas."""

    def __init__(self, name: str, tag_names: Sequence[str],
                 field_names: Sequence[str]) -> None:
        if not field_names:
            raise TSDBError(f"table {name!r} needs at least one field")
        if len(set(tag_names)) != len(tag_names):
            raise TSDBError(f"table {name!r} has duplicate tag names")
        if len(set(field_names)) != len(field_names):
            raise TSDBError(f"table {name!r} has duplicate field names")
        self.name = name
        self.tag_names = tuple(tag_names)
        self.field_names = tuple(field_names)
        self._field_index = {n: i for i, n in enumerate(field_names)}
        self._series: Dict[Tuple[str, ...], _SeriesBuffer] = {}

    # ------------------------------------------------------------------
    # writes

    def append(self, ts: float, tags: Sequence[str],
               fields: Sequence[float]) -> None:
        """Append one row."""
        if len(tags) != len(self.tag_names):
            raise TSDBError(
                f"expected {len(self.tag_names)} tags, got {len(tags)}")
        if len(fields) != len(self.field_names):
            raise TSDBError(
                f"expected {len(self.field_names)} fields, got {len(fields)}")
        key = tuple(tags)
        buf = self._series.get(key)
        if buf is None:
            buf = _SeriesBuffer(len(self.field_names))
            self._series[key] = buf
        buf.append(ts, fields)

    # ------------------------------------------------------------------
    # reads

    def tag_combinations(self) -> List[Tuple[str, ...]]:
        """All distinct tag tuples, sorted."""
        return sorted(self._series)

    def distinct(self, tag_name: str) -> List[str]:
        """Distinct values of one tag across all series."""
        idx = self._tag_index(tag_name)
        return sorted({key[idx] for key in self._series})

    def _tag_index(self, tag_name: str) -> int:
        try:
            return self.tag_names.index(tag_name)
        except ValueError:
            raise TSDBError(
                f"table {self.name!r} has no tag {tag_name!r}") from None

    def series(self, tags: Sequence[str]) -> Dict[str, np.ndarray]:
        """The full series for one exact tag tuple.

        Returns a dict with key ``"ts"`` plus one key per field; arrays
        are copies, sorted by timestamp.
        """
        key = tuple(tags)
        buf = self._series.get(key)
        if buf is None:
            raise TSDBError(
                f"no series for tags {key!r} in table {self.name!r}")
        ts = np.asarray(buf.ts, dtype=float)
        order = np.argsort(ts, kind="stable")
        out: Dict[str, np.ndarray] = {"ts": ts[order]}
        for name, column in zip(self.field_names, buf.fields):
            out[name] = np.asarray(column, dtype=float)[order]
        return out

    def select(self, **tag_filters: str
               ) -> Iterator[Tuple[Tuple[str, ...], Dict[str, np.ndarray]]]:
        """Iterate (tag tuple, series) for series matching the filters.

        Filters are exact tag-value matches, e.g.
        ``table.select(region="us-west1", tier="premium")``.
        """
        for name in tag_filters:
            self._tag_index(name)  # validate names eagerly
        indices = {name: self._tag_index(name) for name in tag_filters}
        for key in self.tag_combinations():
            if all(key[idx] == value
                   for name, value in tag_filters.items()
                   for idx in [indices[name]]):
                yield key, self.series(key)

    def count(self, **tag_filters: str) -> int:
        """Number of rows matching the filters."""
        total = 0
        indices = {name: self._tag_index(name) for name in tag_filters}
        for key, buf in self._series.items():
            if all(key[indices[name]] == value
                   for name, value in tag_filters.items()):
                total += len(buf)
        return total

    def __len__(self) -> int:
        return sum(len(buf) for buf in self._series.values())


class TimeSeriesDB:
    """A named collection of tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, tag_names: Sequence[str],
                     field_names: Sequence[str]) -> Table:
        if name in self._tables:
            raise TSDBError(f"table {name!r} already exists")
        table = Table(name, tag_names, field_names)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TSDBError(f"unknown table {name!r}") from None

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables
