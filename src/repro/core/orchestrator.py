"""Measurement VM orchestration.

Given selected server lists, the orchestrator sizes the deployment
(each VM performs at most 17 tests per hour: up to 120 s per test,
plus a 20-minute traceroute budget and 5 minutes for result upload),
creates VMs spread across availability zones, applies the 1 Gbps /
100 Mbps ``tc`` shaping, provisions the regional storage bucket, and
assigns each VM its server list.  Differential regions get a *pair* of
VMs per server list - one per tier of the provider's differential
pair (premium + standard on GCP).

Provider-specific defaults (machine type, measurement tier, the
differential tier pair, bucket naming) come from the platform's
:class:`~repro.cloud.providers.base.CloudProvider`.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..cloud.api import CloudPlatform
from ..cloud.storage import StorageBucket
from ..cloud.vm import VirtualMachine
from ..errors import SchedulingError

__all__ = ["DeploymentPlan", "Orchestrator", "TESTS_PER_VM_HOUR"]

#: 17 tests x 120 s = 34 min, + 20 min of traceroutes + 5 min upload
#: fits in one hour; the 18th test would not.
TESTS_PER_VM_HOUR = 17

#: CLASP's tc shaping (asymmetric: only egress is billed).
DOWNLINK_CAP_MBPS = 1000.0
UPLINK_CAP_MBPS = 100.0

#: The VM type the paper used (GCP's default; other providers name
#: their own default in their catalog).
DEFAULT_MACHINE_TYPE = "n1-standard-2"


@dataclass
class DeploymentPlan:
    """What got deployed in one region."""

    region: str
    bucket: StorageBucket
    #: (vm, the server ids it measures hourly)
    assignments: List[Tuple[VirtualMachine, List[str]]] = \
        field(default_factory=list)
    #: Which provider the VMs belong to (shard partitioning keys
    #: lanes by (provider, region) so mixed fleets never share a lane
    #: group across clouds).
    provider: str = "gcp"

    @property
    def vms(self) -> List[VirtualMachine]:
        return [vm for vm, _ids in self.assignments]

    @property
    def server_ids(self) -> List[str]:
        out: List[str] = []
        for _vm, ids in self.assignments:
            out.extend(ids)
        return out

    def servers_of(self, vm_name: str) -> List[str]:
        for vm, ids in self.assignments:
            if vm.name == vm_name:
                return list(ids)
        raise SchedulingError(f"VM {vm_name!r} not in plan for {self.region}")


class Orchestrator:
    """Creates and wires up the measurement deployment."""

    def __init__(self, platform: CloudPlatform,
                 machine_type: Optional[str] = None) -> None:
        self.platform = platform
        self.machine_type = (machine_type if machine_type is not None
                             else platform.provider.default_machine_type)
        self._deployment_counter = itertools.count(1)

    # ------------------------------------------------------------------

    @staticmethod
    def vms_needed(n_servers: int) -> int:
        """Measurement VMs needed for hourly coverage of *n_servers*."""
        if n_servers < 1:
            raise SchedulingError(
                f"cannot plan a deployment for {n_servers} servers")
        return math.ceil(n_servers / TESTS_PER_VM_HOUR)

    def _new_vm(self, region: str, tier: enum.Enum, ts: float,
                suffix: str) -> VirtualMachine:
        vm = self.platform.create_vm(
            region, self.machine_type, tier, ts,
            name=f"clasp-{region}-{tier.value}-{suffix}")
        vm.nic.apply_tc(ingress_mbps=DOWNLINK_CAP_MBPS,
                        egress_mbps=UPLINK_CAP_MBPS)
        return vm

    def _bucket(self, region: str) -> StorageBucket:
        name = self.platform.provider.bucket_name(region)
        try:
            return self.platform.storage.bucket(name)
        except Exception:
            return self.platform.storage.create_bucket(name, region)

    # ------------------------------------------------------------------

    def deploy_topology(self, region: str, server_ids: Sequence[str],
                        ts: float,
                        budget_servers: Optional[int] = None
                        ) -> DeploymentPlan:
        """Deploy premium-tier VMs for a topology-based server list.

        *budget_servers* truncates the list (the paper measured only a
        subset in us-west2/us-east4/us-central1 for cost reasons).
        """
        ids = list(server_ids)
        if budget_servers is not None:
            ids = ids[:budget_servers]
        if not ids:
            raise SchedulingError(f"empty server list for {region}")
        provider = self.platform.provider
        plan = DeploymentPlan(region=region, bucket=self._bucket(region),
                              provider=provider.name)
        deployment = next(self._deployment_counter)
        n_vms = self.vms_needed(len(ids))
        for i in range(n_vms):
            chunk = ids[i * TESTS_PER_VM_HOUR:(i + 1) * TESTS_PER_VM_HOUR]
            vm = self._new_vm(region, provider.measurement_tier, ts,
                              f"d{deployment:02d}-{i + 1:02d}")
            plan.assignments.append((vm, chunk))
        return plan

    def deploy_differential(self, region: str, server_ids: Sequence[str],
                            ts: float) -> DeploymentPlan:
        """Deploy one VM per differential tier measuring the same list.

        On GCP that is the premium + standard pair.  Providers without
        two comparable tiers (single-tier private clouds) cannot host
        a differential deployment and raise :class:`SchedulingError`.
        """
        ids = list(server_ids)
        if not ids:
            raise SchedulingError(f"empty server list for {region}")
        if len(ids) > TESTS_PER_VM_HOUR:
            raise SchedulingError(
                f"differential list for {region} exceeds one VM-hour "
                f"({len(ids)} > {TESTS_PER_VM_HOUR})")
        provider = self.platform.provider
        if provider.differential_tiers is None:
            raise SchedulingError(
                f"provider {provider.name!r} has a single network tier; "
                f"differential deployments need two")
        plan = DeploymentPlan(region=region, bucket=self._bucket(region),
                              provider=provider.name)
        deployment = next(self._deployment_counter)
        for tier in provider.differential_tiers:
            vm = self._new_vm(region, tier, ts, f"d{deployment:02d}-pair")
            plan.assignments.append((vm, list(ids)))
        return plan

    def replace_vm(self, plan: DeploymentPlan, old_vm: VirtualMachine,
                   ts: float, name: Optional[str] = None) -> VirtualMachine:
        """Re-provision a preempted/terminated VM, preserving its servers.

        The replacement keeps the old VM's region, machine type, tier,
        and ``tc`` shaping, inherits the old VM's physical attachment
        (zone, host node, IP, and LAN link - so routing state stays
        deterministic however recoveries interleave), and inherits the
        *exact* server list the old VM measured, so longitudinal
        per-server coverage survives a preemption.  Returns the new VM.
        """
        if old_vm.is_running:
            raise SchedulingError(
                f"VM {old_vm.name!r} is still running; preempt or "
                f"terminate it before replacing")
        vm = self.platform.create_vm(
            old_vm.region_name, old_vm.machine_type.name, old_vm.tier, ts,
            name=name or f"{old_vm.name}-r",
            inherit_attachment_from=old_vm)
        vm.nic.apply_tc(ingress_mbps=DOWNLINK_CAP_MBPS,
                        egress_mbps=UPLINK_CAP_MBPS)
        for index, (candidate, ids) in enumerate(plan.assignments):
            if candidate.name == old_vm.name:
                plan.assignments[index] = (vm, ids)
                return vm
        raise SchedulingError(
            f"VM {old_vm.name!r} not in plan for {plan.region}")

    def teardown(self, plan: DeploymentPlan, ts: float) -> None:
        """Terminate every VM in a plan (end of campaign)."""
        for vm in plan.vms:
            if vm.is_running:
                self.platform.terminate_vm(vm.name, ts)
