"""Longitudinal measurement campaigns.

:class:`CampaignRunner` drives the hourly cron across all deployed
measurement VMs over simulated weeks/months: every hour, every VM runs
its randomized test sequence, artefacts are compressed and shipped to
the regional bucket, billing accrues (VM hours, standard/premium
egress, storage), and processed records land in the time-series store.

:class:`CampaignDataset` is the analysis-facing product: a tagged
record table plus per-server metadata (timezone, AS, business type).

With a :class:`~repro.faults.FaultPlan`, the runner also survives
injected faults: preempted VMs are re-provisioned (inheriting their
server list), slow-starting replacements and failed tests are tagged
as :class:`~repro.core.records.LostRecord` rows instead of crashing
the campaign, and bucket uploads retry with deterministic backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cloud.api import CloudPlatform
from ..cloud.tiers import NetworkTier
from ..cloud.vm import VirtualMachine
from ..errors import (MissingEntryError, SpeedTestError,
                      TransientUploadError, ValidationError)
from ..faults import FaultInjector, FaultPlan
from ..rng import SeedTree
from ..simclock import CAMPAIGN_START, SimClock
from ..speedtest.browser import HeadlessBrowser
from ..speedtest.catalog import ServerCatalog
from ..speedtest.protocol import SpeedTestEngine
from ..units import DAY, HOUR
from .orchestrator import DeploymentPlan, Orchestrator
from .records import LostRecord, MeasurementRecord, ServerMeta
from .scheduler import HourlySchedule, TestSlot
from .tsdb import Table, TimeSeriesDB

__all__ = ["CampaignConfig", "CampaignDataset", "CampaignRunner"]

_FIELDS = ("download", "upload", "latency", "loss_down", "loss_up")
_TAGS = ("region", "server_id", "tier")


@dataclass
class CampaignConfig:
    """Campaign length and bookkeeping knobs."""

    days: int = 14
    start_ts: float = float(CAMPAIGN_START)
    #: Bill VM hours / egress / storage while running.
    charge_billing: bool = True
    #: Charge bucket storage monthly (per 30 days).
    storage_charge_every_days: int = 30

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValidationError(f"days must be >= 1, got {self.days}")
        if self.start_ts % HOUR != 0:
            raise ValidationError("start_ts must be hour-aligned")

    @property
    def end_ts(self) -> float:
        return self.start_ts + self.days * DAY

    @property
    def n_hours(self) -> int:
        return self.days * 24


class CampaignDataset:
    """Collected measurements plus the metadata analyses need."""

    def __init__(self, start_ts: float, end_ts: float) -> None:
        self.start_ts = start_ts
        self.end_ts = end_ts
        self.db = TimeSeriesDB()
        self.table: Table = self.db.create_table("speedtest", _TAGS, _FIELDS)
        self.servers: Dict[str, ServerMeta] = {}
        self.failed_tests = 0
        self.completed_tests = 0
        self.retried_tests = 0
        self.lost: List[LostRecord] = []

    # ------------------------------------------------------------------

    def add_server_meta(self, meta: ServerMeta) -> None:
        self.servers[meta.server_id] = meta

    def server_meta(self, server_id: str) -> ServerMeta:
        try:
            return self.servers[server_id]
        except KeyError:
            raise MissingEntryError(
                f"no metadata recorded for server {server_id!r}") from None

    def record(self, rec: MeasurementRecord) -> None:
        self.table.append(rec.ts,
                          (rec.region, rec.server_id, rec.tier.value),
                          (rec.download_mbps, rec.upload_mbps,
                           rec.latency_ms, rec.download_loss_rate,
                           rec.upload_loss_rate))
        self.completed_tests += 1

    def mark_lost(self, ts: float, region: str, vm_name: str,
                  server_id: str, reason: str) -> None:
        """Tag one scheduled slot as lost rather than dropping it."""
        self.lost.append(LostRecord(ts=ts, region=region, vm_name=vm_name,
                                    server_id=server_id, reason=reason))

    @property
    def lost_tests(self) -> int:
        return len(self.lost)

    def lost_by_reason(self) -> Dict[str, int]:
        """``reason -> count`` over all lost slots."""
        out: Dict[str, int] = {}
        for rec in self.lost:
            out[rec.reason] = out.get(rec.reason, 0) + 1
        return out

    # ------------------------------------------------------------------
    # convenience accessors used throughout the analyses

    def pairs(self, region: Optional[str] = None,
              tier: Optional[NetworkTier] = None
              ) -> List[Tuple[str, str, str]]:
        """(region, server_id, tier) tag tuples with data."""
        out = []
        for key in self.table.tag_combinations():
            if region is not None and key[0] != region:
                continue
            if tier is not None and key[2] != tier.value:
                continue
            out.append(key)
        return out

    def series(self, region: str, server_id: str,
               tier: NetworkTier = NetworkTier.PREMIUM
               ) -> Dict[str, np.ndarray]:
        return self.table.series((region, server_id, tier.value))

    def regions(self) -> List[str]:
        return self.table.distinct("region")

    @property
    def n_days(self) -> int:
        return int(round((self.end_ts - self.start_ts) / DAY))

    def __len__(self) -> int:
        return len(self.table)


class CampaignRunner:
    """Executes deployment plans hour by hour.

    When given a :class:`~repro.faults.FaultPlan` (or a ready-made
    :class:`~repro.faults.FaultInjector`), the runner wires the fault
    streams into the speed-test engine, the storage service, and the
    link-state evaluator, and recovers from every injected fault kind:
    the campaign always completes, with unusable hour slots tagged in
    ``dataset.lost``.
    """

    def __init__(self, platform: CloudPlatform, catalog: ServerCatalog,
                 engine: SpeedTestEngine,
                 seeds: Optional[SeedTree] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 injector: Optional[FaultInjector] = None,
                 orchestrator: Optional[Orchestrator] = None) -> None:
        self.platform = platform
        self.catalog = catalog
        self.engine = engine
        self._seeds = seeds or SeedTree(0)
        if injector is None and fault_plan is not None and fault_plan.enabled:
            injector = FaultInjector(fault_plan,
                                     self._seeds.child("faults"))
        self.injector = injector
        self.orchestrator = orchestrator
        if self.injector is not None:
            plan = self.injector.plan
            self.browser = HeadlessBrowser(engine,
                                           max_retries=plan.max_retries,
                                           backoff=self.injector.backoff_s)
            self._wire_injector()
        else:
            self.browser = HeadlessBrowser(engine)

    def _wire_injector(self) -> None:
        """Attach the injector's fault streams to every injection site."""
        assert self.injector is not None
        if self.engine.injector is None:
            self.engine.injector = self.injector
        self.platform.storage.set_fault_hook(self.injector.upload_fails)
        self.platform.evaluator.set_flap_hook(
            self.injector.link_flap_utilization)
        if self.orchestrator is None:
            self.orchestrator = Orchestrator(self.platform)

    # ------------------------------------------------------------------

    def _build_schedules(self, plans: Sequence[DeploymentPlan]
                         ) -> List[Tuple[DeploymentPlan, HourlySchedule]]:
        schedules = []
        for plan in plans:
            for vm, server_ids in plan.assignments:
                schedules.append((plan, HourlySchedule(
                    vm.name, server_ids,
                    seeds=self._seeds.child(f"sched-{vm.name}"))))
        return schedules

    def _register_metadata(self, dataset: CampaignDataset,
                           plans: Sequence[DeploymentPlan]) -> None:
        topo = self.platform.topology
        for plan in plans:
            for server_id in plan.server_ids:
                if server_id in dataset.servers:
                    continue
                server = self.catalog.get(server_id)
                city = topo.cities[server.city_key]
                dataset.add_server_meta(ServerMeta(
                    server_id=server.server_id,
                    asn=server.asn,
                    sponsor=server.sponsor,
                    city_key=server.city_key,
                    country=server.country,
                    utc_offset_hours=city.utc_offset_hours,
                    lat=server.lat,
                    lon=server.lon,
                    business_type=topo.as_of(server.asn)
                    .as_type.ipinfo_label,
                ))

    # ------------------------------------------------------------------

    def _mark_hour_lost(self, dataset: CampaignDataset, region: str,
                        vm_name: str, slots: Sequence[TestSlot],
                        reason: str) -> None:
        for slot in slots:
            dataset.mark_lost(slot.ts, region, vm_name,
                              slot.server_id, reason)

    def _handle_preemption(self, plan: DeploymentPlan, sched_name: str,
                           vm: VirtualMachine, hour_start: float,
                           current_vm: Dict[str, VirtualMachine],
                           ready_ts: Dict[str, float],
                           replace_counts: Dict[str, int]) -> None:
        """Re-provision a preempted VM and record when it can serve.

        The replacement inherits the old VM's server assignment via
        :meth:`Orchestrator.replace_vm`.  It becomes usable only after
        a deterministic slow-start delay; hours before that are tagged
        ``slow-start`` by the caller.
        """
        assert self.injector is not None and self.orchestrator is not None
        self.platform.preempt_vm(vm.name, hour_start)
        replace_counts[sched_name] += 1
        replacement = self.orchestrator.replace_vm(
            plan, vm, hour_start,
            name=f"{sched_name}-r{replace_counts[sched_name]}")
        current_vm[sched_name] = replacement
        extra_hours = self.injector.slow_start_hours(replacement.name,
                                                     hour_start)
        ready_ts[sched_name] = hour_start + (1 + extra_hours) * HOUR

    def _run_hour(self, dataset: CampaignDataset, region: str,
                  vm: VirtualMachine, slots: Sequence[TestSlot],
                  cfg: CampaignConfig) -> int:
        """Run one VM-hour of tests; returns artefact bytes produced."""
        artefact_bytes = 0
        for slot in slots:
            try:
                artefacts = self.browser.run_test(
                    vm, self.catalog.get(slot.server_id), slot.ts)
            except SpeedTestError:
                dataset.failed_tests += 1
                dataset.mark_lost(slot.ts, region, vm.name,
                                  slot.server_id, "speedtest")
                continue
            if artefacts.retried:
                dataset.retried_tests += 1
            result = artefacts.result
            dataset.record(MeasurementRecord.from_result(
                result, region, vm.tier))
            artefact_bytes += artefacts.upload_size_bytes
            if cfg.charge_billing:
                # Only egress (the upload phase) is billed.
                self.platform.costs.charge_egress(
                    result.upload_bytes, vm.tier)
        return artefact_bytes

    def _upload_hour(self, dataset: CampaignDataset, plan: DeploymentPlan,
                     vm: VirtualMachine, schedule: HourlySchedule,
                     hour_start: float, artefact_bytes: int,
                     cfg: CampaignConfig) -> None:
        """Ship the hour's compressed artefacts, retrying with backoff."""
        upload_ts = schedule.upload_ts(hour_start)
        attempts = 1
        if self.injector is not None:
            attempts = self.injector.plan.max_retries + 1
        ts = upload_ts
        for attempt in range(attempts):
            try:
                plan.bucket.upload(
                    key=f"{vm.name}/{int(hour_start)}.tar.gz",
                    size_bytes=artefact_bytes, ts=ts)
            except TransientUploadError:
                if self.injector is not None:
                    ts = ts + self.injector.backoff_s(attempt)
                continue
            if cfg.charge_billing:
                self.platform.costs.charge_intra_region(artefact_bytes)
            return
        dataset.mark_lost(upload_ts, plan.region, vm.name, "*", "upload")

    def run(self, plans: Sequence[DeploymentPlan],
            config: Optional[CampaignConfig] = None) -> CampaignDataset:
        """Run the whole campaign and return the dataset.

        With an injector attached, faults never abort the run: lost
        hour slots are tagged in ``dataset.lost`` and preempted VMs
        are replaced in place (same server list, fresh name).
        """
        cfg = config or CampaignConfig()
        dataset = CampaignDataset(cfg.start_ts, cfg.end_ts)
        self._register_metadata(dataset, plans)
        schedules = self._build_schedules(plans)
        #: schedule name -> the VM currently serving that assignment
        current_vm = {vm.name: vm for plan in plans for vm in plan.vms}
        ready_ts = {name: cfg.start_ts for name in current_vm}
        replace_counts = {name: 0 for name in current_vm}
        clock = SimClock(cfg.start_ts)
        last_storage_charge = cfg.start_ts

        for hour_index in range(cfg.n_hours):
            hour_start = cfg.start_ts + hour_index * HOUR
            clock.advance_to(hour_start)
            for plan, schedule in schedules:
                sched_name = schedule.vm_name
                vm = current_vm[sched_name]
                region = plan.region
                # The slot draw happens every hour regardless of VM
                # health so the schedule stream stays aligned between
                # fault-free and faulty runs of the same seed.
                slots = schedule.hour_slots(hour_start)
                if self.injector is not None:
                    if hour_start < ready_ts[sched_name]:
                        self._mark_hour_lost(dataset, region, vm.name,
                                             slots, "slow-start")
                        continue
                    if self.injector.vm_preempted(vm.name, hour_start):
                        self._handle_preemption(plan, sched_name, vm,
                                                hour_start, current_vm,
                                                ready_ts, replace_counts)
                        self._mark_hour_lost(dataset, region, vm.name,
                                             slots, "preemption")
                        continue
                artefact_bytes = self._run_hour(dataset, region, vm,
                                                slots, cfg)
                if artefact_bytes:
                    self._upload_hour(dataset, plan, vm, schedule,
                                      hour_start, artefact_bytes, cfg)
            if cfg.charge_billing:
                self.platform.charge_vm_uptime(1.0)
                if (hour_start - last_storage_charge
                        >= cfg.storage_charge_every_days * DAY):
                    self.platform.storage.charge_monthly_storage(
                        months=cfg.storage_charge_every_days / 30.0)
                    last_storage_charge = hour_start
        return dataset
