"""Longitudinal measurement campaigns.

:class:`CampaignRunner` drives the hourly cron across all deployed
measurement VMs over simulated weeks/months: every hour, every VM runs
its randomized test sequence, artefacts are compressed and shipped to
the regional bucket, billing accrues (VM hours, standard/premium
egress, storage), and processed records land in the time-series store.

:class:`CampaignDataset` is the analysis-facing product: a tagged
record table plus per-server metadata (timezone, AS, business type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cloud.api import CloudPlatform
from ..cloud.tiers import NetworkTier
from ..errors import MissingEntryError, SpeedTestError, ValidationError
from ..rng import SeedTree
from ..simclock import CAMPAIGN_START, SimClock
from ..speedtest.browser import HeadlessBrowser
from ..speedtest.catalog import ServerCatalog
from ..speedtest.protocol import SpeedTestEngine
from ..units import DAY, HOUR
from .orchestrator import DeploymentPlan
from .records import MeasurementRecord, ServerMeta
from .scheduler import HourlySchedule
from .tsdb import Table, TimeSeriesDB

__all__ = ["CampaignConfig", "CampaignDataset", "CampaignRunner"]

_FIELDS = ("download", "upload", "latency", "loss_down", "loss_up")
_TAGS = ("region", "server_id", "tier")


@dataclass
class CampaignConfig:
    """Campaign length and bookkeeping knobs."""

    days: int = 14
    start_ts: float = float(CAMPAIGN_START)
    #: Bill VM hours / egress / storage while running.
    charge_billing: bool = True
    #: Charge bucket storage monthly (per 30 days).
    storage_charge_every_days: int = 30

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValidationError(f"days must be >= 1, got {self.days}")
        if self.start_ts % HOUR != 0:
            raise ValidationError("start_ts must be hour-aligned")

    @property
    def end_ts(self) -> float:
        return self.start_ts + self.days * DAY

    @property
    def n_hours(self) -> int:
        return self.days * 24


class CampaignDataset:
    """Collected measurements plus the metadata analyses need."""

    def __init__(self, start_ts: float, end_ts: float) -> None:
        self.start_ts = start_ts
        self.end_ts = end_ts
        self.db = TimeSeriesDB()
        self.table: Table = self.db.create_table("speedtest", _TAGS, _FIELDS)
        self.servers: Dict[str, ServerMeta] = {}
        self.failed_tests = 0
        self.completed_tests = 0

    # ------------------------------------------------------------------

    def add_server_meta(self, meta: ServerMeta) -> None:
        self.servers[meta.server_id] = meta

    def server_meta(self, server_id: str) -> ServerMeta:
        try:
            return self.servers[server_id]
        except KeyError:
            raise MissingEntryError(
                f"no metadata recorded for server {server_id!r}") from None

    def record(self, rec: MeasurementRecord) -> None:
        self.table.append(rec.ts,
                          (rec.region, rec.server_id, rec.tier.value),
                          (rec.download_mbps, rec.upload_mbps,
                           rec.latency_ms, rec.download_loss_rate,
                           rec.upload_loss_rate))
        self.completed_tests += 1

    # ------------------------------------------------------------------
    # convenience accessors used throughout the analyses

    def pairs(self, region: Optional[str] = None,
              tier: Optional[NetworkTier] = None
              ) -> List[Tuple[str, str, str]]:
        """(region, server_id, tier) tag tuples with data."""
        out = []
        for key in self.table.tag_combinations():
            if region is not None and key[0] != region:
                continue
            if tier is not None and key[2] != tier.value:
                continue
            out.append(key)
        return out

    def series(self, region: str, server_id: str,
               tier: NetworkTier = NetworkTier.PREMIUM
               ) -> Dict[str, np.ndarray]:
        return self.table.series((region, server_id, tier.value))

    def regions(self) -> List[str]:
        return self.table.distinct("region")

    @property
    def n_days(self) -> int:
        return int(round((self.end_ts - self.start_ts) / DAY))

    def __len__(self) -> int:
        return len(self.table)


class CampaignRunner:
    """Executes deployment plans hour by hour."""

    def __init__(self, platform: CloudPlatform, catalog: ServerCatalog,
                 engine: SpeedTestEngine,
                 seeds: Optional[SeedTree] = None) -> None:
        self.platform = platform
        self.catalog = catalog
        self.engine = engine
        self.browser = HeadlessBrowser(engine)
        self._seeds = seeds or SeedTree(0)

    # ------------------------------------------------------------------

    def _build_schedules(self, plans: Sequence[DeploymentPlan]
                         ) -> List[Tuple[DeploymentPlan, HourlySchedule]]:
        schedules = []
        for plan in plans:
            for vm, server_ids in plan.assignments:
                schedules.append((plan, HourlySchedule(
                    vm.name, server_ids,
                    seeds=self._seeds.child(f"sched-{vm.name}"))))
        return schedules

    def _register_metadata(self, dataset: CampaignDataset,
                           plans: Sequence[DeploymentPlan]) -> None:
        topo = self.platform.topology
        for plan in plans:
            for server_id in plan.server_ids:
                if server_id in dataset.servers:
                    continue
                server = self.catalog.get(server_id)
                city = topo.cities[server.city_key]
                dataset.add_server_meta(ServerMeta(
                    server_id=server.server_id,
                    asn=server.asn,
                    sponsor=server.sponsor,
                    city_key=server.city_key,
                    country=server.country,
                    utc_offset_hours=city.utc_offset_hours,
                    lat=server.lat,
                    lon=server.lon,
                    business_type=topo.as_of(server.asn)
                    .as_type.ipinfo_label,
                ))

    # ------------------------------------------------------------------

    def run(self, plans: Sequence[DeploymentPlan],
            config: Optional[CampaignConfig] = None) -> CampaignDataset:
        """Run the whole campaign and return the dataset."""
        cfg = config or CampaignConfig()
        dataset = CampaignDataset(cfg.start_ts, cfg.end_ts)
        self._register_metadata(dataset, plans)
        schedules = self._build_schedules(plans)
        vm_by_name = {vm.name: vm
                      for plan in plans for vm in plan.vms}
        clock = SimClock(cfg.start_ts)
        last_storage_charge = cfg.start_ts

        for hour_index in range(cfg.n_hours):
            hour_start = cfg.start_ts + hour_index * HOUR
            clock.advance_to(hour_start)
            for plan, schedule in schedules:
                vm = vm_by_name[schedule.vm_name]
                region = plan.region
                artefact_bytes = 0
                for slot in schedule.hour_slots(hour_start):
                    try:
                        artefacts = self.browser.run_test(
                            vm, self.catalog.get(slot.server_id), slot.ts)
                    except SpeedTestError:
                        dataset.failed_tests += 1
                        continue
                    result = artefacts.result
                    dataset.record(MeasurementRecord.from_result(
                        result, region, vm.tier))
                    artefact_bytes += artefacts.upload_size_bytes
                    if cfg.charge_billing:
                        # Only egress (the upload phase) is billed.
                        self.platform.costs.charge_egress(
                            result.upload_bytes, vm.tier)
                # Ship the hour's compressed artefacts to the bucket.
                if artefact_bytes:
                    plan.bucket.upload(
                        key=f"{vm.name}/{int(hour_start)}.tar.gz",
                        size_bytes=artefact_bytes,
                        ts=schedule.upload_ts(hour_start))
                    if cfg.charge_billing:
                        self.platform.costs.charge_intra_region(
                            artefact_bytes)
            if cfg.charge_billing:
                self.platform.charge_vm_uptime(1.0)
                if (hour_start - last_storage_charge
                        >= cfg.storage_charge_every_days * DAY):
                    self.platform.storage.charge_monthly_storage(
                        months=cfg.storage_charge_every_days / 30.0)
                    last_storage_charge = hour_start
        return dataset
