"""Longitudinal measurement campaigns.

:class:`CampaignRunner` drives the hourly cron across all deployed
measurement VMs over simulated weeks/months.  The hour loop itself
lives in :class:`repro.engine.lanes.CampaignEngine`: the runner builds
one execution :class:`~repro.engine.lanes.Lane` per (plan, VM)
assignment, wires a :class:`~repro.engine.bus.EventBus` with the
dataset/billing observers (plus any caller-supplied ones), and plugs
in the :class:`LaneExecutor` that knows how to run one lane-hour -
tests, retries, artefact uploads, and preemption recovery all surface
as typed :mod:`repro.engine.events` rather than inline mutation.

:class:`CampaignDataset` is the analysis-facing product: a tagged
record table plus per-server metadata (timezone, AS, business type).
It is rebuilt purely from the event stream by
:class:`~repro.engine.observers.DatasetObserver`.

With a :class:`~repro.faults.FaultPlan`, the runner also survives
injected faults: preempted VMs are re-provisioned (inheriting their
server list), slow-starting replacements and failed tests are tagged
as :class:`~repro.core.records.LostRecord` rows instead of crashing
the campaign, and bucket uploads retry with deterministic backoff.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..cloud.api import CloudPlatform
from ..cloud.tiers import NetworkTier
from ..errors import (MissingEntryError, SpeedTestError,
                      TransientUploadError, ValidationError)
from ..engine import (BillingCharged, CampaignEngine, DatasetObserver,
                      EventBus, Lane, MetricsObserver, TestCompleted,
                      TestLost, TestRetried, UploadAttempted, VMPreempted,
                      VMReplaced)
from ..faults import FaultInjector, FaultPlan
from ..rng import SeedTree
from ..simclock import CAMPAIGN_START
from ..speedtest.browser import HeadlessBrowser
from ..speedtest.catalog import ServerCatalog
from ..speedtest.protocol import SpeedTestEngine
from ..units import DAY, HOUR
from .orchestrator import DeploymentPlan, Orchestrator
from .records import LostRecord, MeasurementRecord, ServerMeta
from .scheduler import HourlySchedule, TestSlot
from .tsdb import Table, TimeSeriesDB

__all__ = ["BillingObserver", "CampaignConfig", "CampaignDataset",
           "CampaignRunner", "LaneExecutor"]

_FIELDS = ("download", "upload", "latency", "loss_down", "loss_up")
_TAGS = ("region", "server_id", "tier")


@dataclass
class CampaignConfig:
    """Campaign length and bookkeeping knobs."""

    days: int = 14
    start_ts: float = float(CAMPAIGN_START)
    #: Bill VM hours / egress / storage while running.
    charge_billing: bool = True
    #: Charge bucket storage monthly (per 30 days).
    storage_charge_every_days: int = 30

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValidationError(f"days must be >= 1, got {self.days}")
        if self.start_ts % HOUR != 0:
            raise ValidationError("start_ts must be hour-aligned")

    @property
    def end_ts(self) -> float:
        return self.start_ts + self.days * DAY

    @property
    def n_hours(self) -> int:
        return self.days * 24


class CampaignDataset:
    """Collected measurements plus the metadata analyses need."""

    def __init__(self, start_ts: float, end_ts: float,
                 provider: str = "gcp") -> None:
        self.start_ts = start_ts
        self.end_ts = end_ts
        #: Name of the provider the campaign ran on (export metadata;
        #: not part of the dataset digest).
        self.provider = provider
        self.db = TimeSeriesDB()
        self.table: Table = self.db.create_table("speedtest", _TAGS, _FIELDS)
        self.servers: Dict[str, ServerMeta] = {}
        self.failed_tests = 0
        self.completed_tests = 0
        self.retried_tests = 0
        self.lost: List[LostRecord] = []

    # ------------------------------------------------------------------

    def add_server_meta(self, meta: ServerMeta) -> None:
        self.servers[meta.server_id] = meta

    def server_meta(self, server_id: str) -> ServerMeta:
        try:
            return self.servers[server_id]
        except KeyError:
            raise MissingEntryError(
                f"no metadata recorded for server {server_id!r}") from None

    def record(self, rec: MeasurementRecord) -> None:
        self.extend([rec])

    def extend(self, records: Sequence[MeasurementRecord]) -> None:
        """Batch-append processed measurements (the hourly event flush)."""
        self.table.extend(
            [(rec.ts, (rec.region, rec.server_id, rec.tier.value),
              (rec.download_mbps, rec.upload_mbps, rec.latency_ms,
               rec.download_loss_rate, rec.upload_loss_rate))
             for rec in records])
        self.completed_tests += len(records)

    def mark_lost(self, ts: float, region: str, vm_name: str,
                  server_id: str, reason: str) -> None:
        """Tag one scheduled slot as lost rather than dropping it."""
        self.lost.append(LostRecord(ts=ts, region=region, vm_name=vm_name,
                                    server_id=server_id, reason=reason))

    @property
    def lost_tests(self) -> int:
        return len(self.lost)

    def lost_by_reason(self) -> Dict[str, int]:
        """``reason -> count`` over all lost slots."""
        return dict(Counter(rec.reason for rec in self.lost))

    # ------------------------------------------------------------------
    # convenience accessors used throughout the analyses

    def pairs(self, region: Optional[str] = None,
              tier: Optional[NetworkTier] = None
              ) -> List[Tuple[str, str, str]]:
        """(region, server_id, tier) tag tuples with data."""
        out = []
        for key in self.table.tag_combinations():
            if region is not None and key[0] != region:
                continue
            if tier is not None and key[2] != tier.value:
                continue
            out.append(key)
        return out

    def series(self, region: str, server_id: str,
               tier: NetworkTier = NetworkTier.PREMIUM
               ) -> Dict[str, np.ndarray]:
        return self.table.series((region, server_id, tier.value))

    def regions(self) -> List[str]:
        return self.table.distinct("region")

    @property
    def n_days(self) -> int:
        return int(round((self.end_ts - self.start_ts) / DAY))

    def __len__(self) -> int:
        return len(self.table)


class BillingObserver:
    """Accrues campaign charges from events, publishing what each cost.

    Per-hour charges (VM uptime, the monthly storage sweep) settle at
    the *end* of each hour - i.e. when the next ``hour-started`` event
    arrives, or at ``campaign-finished`` for the final hour - because
    the set of running VMs can change mid-hour (preemption
    replacements) and historical billing charged after replacements.
    Per-test egress and per-upload intra-region transfer charge at
    their events.  Every charge is republished as
    :class:`~repro.engine.events.BillingCharged`.
    """

    def __init__(self, platform: CloudPlatform, config: CampaignConfig,
                 bus: EventBus) -> None:
        self.platform = platform
        self.config = config
        self.bus = bus
        self._provider_name = platform.provider.name
        self._pending_hour_ts: Optional[float] = None
        self._last_storage_charge = config.start_ts

    def on_event(self, event: Any) -> None:
        kind = event.kind
        if kind == "hour-started":
            self._settle_pending()
            self._pending_hour_ts = event.ts
        elif kind == "campaign-finished":
            self._settle_pending()
        elif kind == "test-completed":
            # event.tier is the serialized tier value; the rate card is
            # keyed on exactly those values, whatever the provider.
            usd = self.platform.costs.charge_egress(
                event.upload_bytes, event.tier)
            self.bus.emit(BillingCharged(ts=event.ts, category="egress",
                                         amount_usd=usd,
                                         provider=self._provider_name))
        elif kind == "upload-attempted" and event.ok:
            usd = self.platform.costs.charge_intra_region(event.size_bytes)
            self.bus.emit(BillingCharged(ts=event.ts,
                                         category="intra_region",
                                         amount_usd=usd,
                                         provider=self._provider_name))

    def _settle_pending(self) -> None:
        hour_start = self._pending_hour_ts
        if hour_start is None:
            return
        self._pending_hour_ts = None
        usd = self.platform.charge_vm_uptime(1.0)
        self.bus.emit(BillingCharged(ts=hour_start + HOUR,
                                     category="vm_hours", amount_usd=usd,
                                     provider=self._provider_name))
        every_days = self.config.storage_charge_every_days
        if hour_start - self._last_storage_charge >= every_days * DAY:
            usd = self.platform.storage.charge_monthly_storage(
                months=every_days / 30.0)
            self.bus.emit(BillingCharged(ts=hour_start + HOUR,
                                         category="storage",
                                         amount_usd=usd,
                                         provider=self._provider_name))
            self._last_storage_charge = hour_start


class LaneExecutor:
    """Runs one lane-hour and publishes everything that happened.

    This is the :class:`~repro.engine.lanes.LaneStepper` the runner
    plugs into the engine.  It owns no state of its own - lane state
    lives on the :class:`~repro.engine.lanes.Lane`, campaign plumbing
    on the runner - which is what keeps lanes independently steppable.

    The three protected seams - :meth:`_hour_slots`,
    :meth:`_run_slot_test`, and :meth:`_bucket_for` - are where
    :mod:`repro.shard` plugs in vectorized pre-computation and
    shard-local storage without changing the event protocol.
    """

    def __init__(self, runner: "CampaignRunner", bus: EventBus) -> None:
        self.runner = runner
        self.bus = bus

    # ------------------------------------------------------------------
    # seams

    def _hour_slots(self, lane: Lane, hour_start: float) -> Sequence[TestSlot]:
        """Draw (or fetch the pre-drawn) slots for one lane-hour."""
        return lane.schedule.hour_slots(hour_start)

    def _run_slot_test(self, lane: Lane, slot: TestSlot):
        """Run one scheduled test; raises SpeedTestError on loss."""
        runner = self.runner
        return runner.browser.run_test(
            lane.vm, runner.catalog.get(slot.server_id), slot.ts)

    def _bucket_for(self, lane: Lane):
        """The bucket this lane's artefacts upload to."""
        return lane.plan.bucket

    # ------------------------------------------------------------------

    def step(self, lane: Lane, hour_start: float) -> None:
        # The slot draw happens every hour regardless of VM health so
        # the schedule stream stays aligned between fault-free and
        # faulty runs of the same seed.
        slots = self._hour_slots(lane, hour_start)
        injector = self.runner.injector
        if injector is not None:
            if hour_start < lane.ready_ts:
                self._lose_slots(lane.region, lane.vm.name, slots,
                                 "slow-start")
                return
            if injector.vm_preempted(lane.vm.name, hour_start):
                preempted_name = lane.vm.name
                self._replace_vm(lane, hour_start)
                self._lose_slots(lane.region, preempted_name, slots,
                                 "preemption")
                return
        artefact_bytes = self._run_hour(lane, slots)
        if artefact_bytes:
            self._upload_hour(lane, hour_start, artefact_bytes)

    # ------------------------------------------------------------------

    def _lose_slots(self, region: str, vm_name: str,
                    slots: Sequence[TestSlot], reason: str) -> None:
        for slot in slots:
            self.bus.emit(TestLost(ts=slot.ts, region=region,
                                   vm_name=vm_name,
                                   server_id=slot.server_id,
                                   reason=reason))

    def _replace_vm(self, lane: Lane, hour_start: float) -> None:
        """Re-provision a preempted lane VM and record its ready time.

        The replacement inherits the old VM's server assignment via
        :meth:`Orchestrator.replace_vm`.  It becomes usable only after
        a deterministic slow-start delay; hours before that are tagged
        ``slow-start`` by :meth:`step`.
        """
        runner = self.runner
        assert runner.injector is not None
        assert runner.orchestrator is not None
        old_vm = lane.vm
        provider_name = runner.platform.provider.name
        runner.platform.preempt_vm(old_vm.name, hour_start)
        self.bus.emit(VMPreempted(ts=hour_start, region=lane.region,
                                  vm_name=old_vm.name,
                                  provider=provider_name))
        replacement = runner.orchestrator.replace_vm(
            lane.plan, old_vm, hour_start,
            name=lane.next_replacement_name())
        lane.vm = replacement
        extra_hours = runner.injector.slow_start_hours(replacement.name,
                                                       hour_start)
        lane.ready_ts = hour_start + (1 + extra_hours) * HOUR
        self.bus.emit(VMReplaced(ts=hour_start, region=lane.region,
                                 old_name=old_vm.name,
                                 new_name=replacement.name,
                                 ready_ts=lane.ready_ts,
                                 provider=provider_name))

    def _run_hour(self, lane: Lane,
                  slots: Sequence[TestSlot]) -> int:
        """Run one VM-hour of tests; returns artefact bytes produced."""
        artefact_bytes = 0
        for slot in slots:
            try:
                artefacts = self._run_slot_test(lane, slot)
            except SpeedTestError:
                self.bus.emit(TestLost(ts=slot.ts, region=lane.region,
                                       vm_name=lane.vm.name,
                                       server_id=slot.server_id,
                                       reason="speedtest"))
                continue
            result = artefacts.result
            if artefacts.attempts > 1:
                self.bus.emit(TestRetried(ts=slot.ts, region=lane.region,
                                          vm_name=lane.vm.name,
                                          server_id=slot.server_id,
                                          attempts=artefacts.attempts))
            record = MeasurementRecord.from_result(result, lane.region,
                                                   lane.vm.tier)
            self.bus.emit(TestCompleted(
                ts=result.ts, region=lane.region, vm_name=lane.vm.name,
                server_id=slot.server_id, tier=lane.vm.tier.value,
                latency_ms=result.latency_ms,
                download_mbps=result.download_mbps,
                upload_mbps=result.upload_mbps,
                upload_bytes=result.upload_bytes,
                artefact_bytes=artefacts.upload_size_bytes,
                record=record))
            artefact_bytes += artefacts.upload_size_bytes
        return artefact_bytes

    def _upload_hour(self, lane: Lane, hour_start: float,
                     artefact_bytes: int) -> None:
        """Ship the hour's compressed artefacts, retrying with backoff.

        Every try - success or transient failure - is published as an
        :class:`~repro.engine.events.UploadAttempted` event, so billing
        and tests can account for exhausted-retry hours (which produce
        exactly one ``upload`` loss and no intra-region charge).
        """
        runner = self.runner
        upload_ts = lane.schedule.upload_ts(hour_start)
        attempts = 1
        if runner.injector is not None:
            attempts = runner.injector.plan.max_retries + 1
        key = f"{lane.vm.name}/{int(hour_start)}.tar.gz"
        bucket = self._bucket_for(lane)
        ts = upload_ts
        for attempt in range(attempts):
            try:
                bucket.upload(key=key, size_bytes=artefact_bytes, ts=ts)
            except TransientUploadError:
                self.bus.emit(UploadAttempted(
                    ts=ts, region=lane.region, vm_name=lane.vm.name,
                    key=key, attempt=attempt, ok=False,
                    size_bytes=artefact_bytes))
                if runner.injector is not None:
                    ts = ts + runner.injector.backoff_s(attempt)
                continue
            self.bus.emit(UploadAttempted(
                ts=ts, region=lane.region, vm_name=lane.vm.name,
                key=key, attempt=attempt, ok=True,
                size_bytes=artefact_bytes))
            return
        self.bus.emit(TestLost(ts=upload_ts, region=lane.region,
                               vm_name=lane.vm.name, server_id="*",
                               reason="upload"))


class CampaignRunner:
    """Executes deployment plans hour by hour.

    When given a :class:`~repro.faults.FaultPlan` (or a ready-made
    :class:`~repro.faults.FaultInjector`), the runner wires the fault
    streams into the speed-test engine, the storage service, and the
    link-state evaluator, and recovers from every injected fault kind:
    the campaign always completes, with unusable hour slots tagged in
    ``dataset.lost``.
    """

    def __init__(self, platform: CloudPlatform, catalog: ServerCatalog,
                 engine: SpeedTestEngine,
                 seeds: Optional[SeedTree] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 injector: Optional[FaultInjector] = None,
                 orchestrator: Optional[Orchestrator] = None) -> None:
        self.platform = platform
        self.catalog = catalog
        self.engine = engine
        self._seeds = seeds or SeedTree(0)
        if injector is None and fault_plan is not None and fault_plan.enabled:
            injector = FaultInjector(fault_plan,
                                     self._seeds.child("faults"))
        self.injector = injector
        self.orchestrator = orchestrator
        if self.injector is not None:
            plan = self.injector.plan
            self.browser = HeadlessBrowser(engine,
                                           max_retries=plan.max_retries,
                                           backoff=self.injector.backoff_s)
            self._wire_injector()
        else:
            self.browser = HeadlessBrowser(engine)

    def _wire_injector(self) -> None:
        """Attach the injector's fault streams to every injection site."""
        assert self.injector is not None
        if self.engine.injector is None:
            self.engine.injector = self.injector
        self.platform.storage.set_fault_hook(self.injector.upload_fails)
        self.platform.evaluator.set_flap_hook(
            self.injector.link_flap_utilization)
        if self.orchestrator is None:
            self.orchestrator = Orchestrator(self.platform)

    # ------------------------------------------------------------------

    def build_lanes(self, plans: Sequence[DeploymentPlan],
                    start_ts: float) -> List[Lane]:
        """One independent execution lane per (plan, VM) assignment.

        Public: the sharded executor partitions exactly these lanes, in
        exactly this order, so lane indices agree between the inline
        and sharded runs.
        """
        lanes = []
        for plan in plans:
            for vm, server_ids in plan.assignments:
                lanes.append(Lane(
                    name=vm.name,
                    region=plan.region,
                    schedule=HourlySchedule(
                        vm.name, server_ids,
                        seeds=self._seeds.child(f"sched-{vm.name}")),
                    vm=vm,
                    ready_ts=start_ts,
                    plan=plan))
        return lanes

    def register_metadata(self, dataset: CampaignDataset,
                          plans: Sequence[DeploymentPlan]) -> None:
        topo = self.platform.topology
        for plan in plans:
            for server_id in plan.server_ids:
                if server_id in dataset.servers:
                    continue
                server = self.catalog.get(server_id)
                city = topo.cities[server.city_key]
                dataset.add_server_meta(ServerMeta(
                    server_id=server.server_id,
                    asn=server.asn,
                    sponsor=server.sponsor,
                    city_key=server.city_key,
                    country=server.country,
                    utc_offset_hours=city.utc_offset_hours,
                    lat=server.lat,
                    lon=server.lon,
                    business_type=topo.as_of(server.asn)
                    .as_type.ipinfo_label,
                ))

    # ------------------------------------------------------------------

    def compose_bus(self, cfg: CampaignConfig, dataset: CampaignDataset,
                    observers: Sequence[Any] = (),
                    post_dataset: Sequence[Any] = ()) -> EventBus:
        """The standard campaign bus: dataset observer, anything in
        *post_dataset* (the shard replay inserts its upload-sync
        observer here, ahead of billing), billing, the obs metrics
        mirror, then caller *observers* - registration order is
        dispatch order.
        """
        bus = EventBus()
        bus.subscribe(DatasetObserver(dataset))
        for observer in post_dataset:
            bus.subscribe(observer)
        if cfg.charge_billing:
            bus.subscribe(BillingObserver(self.platform, cfg, bus))
        if obs.enabled():
            # Campaign events land in the same process-wide snapshot
            # as the layer instrumentation (engine.* metric names).
            bus.subscribe(MetricsObserver(registry=obs.registry()))
        for observer in observers:
            bus.subscribe(observer)
        return bus

    def run(self, plans: Sequence[DeploymentPlan],
            config: Optional[CampaignConfig] = None,
            observers: Sequence[Any] = (),
            executor_factory: Optional[
                Callable[["CampaignRunner", EventBus], Any]] = None
            ) -> CampaignDataset:
        """Run the whole campaign and return the dataset.

        The body is pure composition: build the lanes, wire the bus
        (dataset observer, billing observer, then any caller-supplied
        *observers*, in that order), and hand the hour loop to the
        engine.  With an injector attached, faults never abort the
        run: lost hour slots are tagged in ``dataset.lost`` and
        preempted VMs are replaced in place (same server list, fresh
        name).

        *executor_factory* swaps in an alternative
        :class:`LaneExecutor` (the vectorized batch stepper); if the
        produced stepper has an ``attach_engine`` method it is called
        with the engine before the run, which is how the batch planner
        installs its per-hour pre-computation hook.
        """
        cfg = config or CampaignConfig()
        dataset = CampaignDataset(cfg.start_ts, cfg.end_ts,
                                  provider=self.platform.provider.name)
        self.register_metadata(dataset, plans)

        bus = self.compose_bus(cfg, dataset, observers)
        stepper = (executor_factory(self, bus) if executor_factory is not None
                   else LaneExecutor(self, bus))
        engine = CampaignEngine(
            lanes=self.build_lanes(plans, cfg.start_ts),
            stepper=stepper,
            bus=bus,
            start_ts=cfg.start_ts,
            n_hours=cfg.n_hours)
        attach = getattr(stepper, "attach_engine", None)
        if attach is not None:
            attach(engine)
        with obs.span("campaign.run", layer="campaign",
                      sim_ts=cfg.start_ts, n_hours=cfg.n_hours,
                      n_lanes=len(engine.lanes)) as sp:
            engine.run()
            sp.annotate(completed_tests=dataset.completed_tests,
                        lost_tests=dataset.lost_tests)
        return dataset
