"""Hourly measurement scheduling.

Measurement VMs run the experiment as an hourly cron job.  Within each
hour a VM runs its assigned tests one at a time (to avoid tests
interfering with each other), in an order re-randomised every hour to
decorrelate any periodic system events from specific servers.  Each
test occupies a 120-second slot; traceroutes and the result upload
take the tail of the hour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence


from ..errors import SchedulingError
from ..rng import SeedTree
from ..units import HOUR, MINUTE
from .orchestrator import TESTS_PER_VM_HOUR

__all__ = ["TestSlot", "HourlySchedule"]

#: Seconds reserved per test (the paper's per-test budget).
TEST_SLOT_S = 120
#: Tail-of-hour budgets.
TRACEROUTE_BUDGET_S = 20 * MINUTE
UPLOAD_BUDGET_S = 5 * MINUTE


@dataclass(frozen=True)
class TestSlot:
    """One scheduled test: which server, exactly when."""

    ts: float
    vm_name: str
    server_id: str
    slot_index: int


class HourlySchedule:
    """Generates randomized per-hour test orders for one VM."""

    def __init__(self, vm_name: str, server_ids: Sequence[str],
                 seeds: Optional[SeedTree] = None) -> None:
        if not server_ids:
            raise SchedulingError(f"VM {vm_name} has no servers to test")
        if len(server_ids) > TESTS_PER_VM_HOUR:
            raise SchedulingError(
                f"VM {vm_name} assigned {len(server_ids)} servers; at most "
                f"{TESTS_PER_VM_HOUR} tests fit in an hour")
        if len(set(server_ids)) != len(server_ids):
            raise SchedulingError(
                f"VM {vm_name} has duplicate servers in its list")
        self.vm_name = vm_name
        self.server_ids = list(server_ids)
        self._rng = (seeds or SeedTree(0)).generator(
            f"schedule-{vm_name}")

    def hour_slots(self, hour_start_ts: float) -> List[TestSlot]:
        """The randomized slots for the hour starting at *hour_start_ts*.

        Raises when not aligned to an hour boundary: cron fires on the
        hour, and misaligned schedules corrupt day/hour bucketing.
        """
        if hour_start_ts % HOUR != 0:
            raise SchedulingError(
                f"hour_start_ts {hour_start_ts} is not hour-aligned")
        order = self._rng.permutation(len(self.server_ids))
        slots = []
        for slot_index, server_idx in enumerate(order):
            # A few seconds of cron/browser startup jitter per slot.
            jitter = float(self._rng.uniform(1.0, 8.0))
            slots.append(TestSlot(
                ts=hour_start_ts + slot_index * TEST_SLOT_S + jitter,
                vm_name=self.vm_name,
                server_id=self.server_ids[int(server_idx)],
                slot_index=slot_index,
            ))
        return slots

    def traceroute_window(self, hour_start_ts: float) -> float:
        """When the post-test traceroute phase begins."""
        return hour_start_ts + len(self.server_ids) * TEST_SLOT_S

    def upload_ts(self, hour_start_ts: float) -> float:
        """When results are shipped to the bucket."""
        return (self.traceroute_window(hour_start_ts)
                + TRACEROUTE_BUDGET_S)

    def iter_hours(self, start_ts: float, n_hours: int
                   ) -> Iterator[List[TestSlot]]:
        """Yield slot lists for *n_hours* consecutive hours."""
        if start_ts % HOUR != 0:
            raise SchedulingError(
                f"start_ts {start_ts} is not hour-aligned")
        if n_hours < 1:
            raise SchedulingError(f"n_hours must be >= 1, got {n_hours}")
        for h in range(n_hours):
            yield self.hour_slots(start_ts + h * HOUR)
