"""Vectorized per-hour pre-computation of an hour's speed tests.

The scalar hot path runs one Python call chain per test: schedule draw,
browser retry loop, two path evaluations (~20 link observations each),
the TCP model, and the noise draws.  :class:`BatchPlanner` replays the
*exact same* decision sequence for a whole hour up front - consuming
each lane's RNG streams in the order the scalar path would - then
evaluates every needed link observation as ONE flat numpy batch across
all links (per-element link parameters, :func:`_observe_flat`) and all
of the hour's TCP transfers as one batch laid out by shared bottleneck
link (:mod:`repro.shard.vectcp` twins).

Two structural savings over the scalar path, both value-neutral:

* **Observation dedup.** The ingress evaluation's reverse path is the
  egress evaluation's forward path (both directions share the same two
  cached routes), so each ``(link, direction, ts)`` point is computed
  once and read twice instead of observed twice.
* **Flat vectorization.** Every link observation the hour needs - all
  links, both directions - runs through the vectcp twins as a single
  parameter-matrix batch instead of one Python call (or even one small
  numpy call) per link.

:class:`BatchLaneExecutor` plugs the planner into the campaign through
the three :class:`~repro.core.campaign.LaneExecutor` seams and the
engine's ``hour_hook``; the event protocol, retry accounting, and
dataset bytes are identical to the scalar path (asserted against the
golden digests by ``tests/test_shard.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..cloud.api import Direction
from ..core.campaign import LaneExecutor
from ..core.scheduler import TestSlot
from ..engine.lanes import Lane
from ..errors import SpeedTestError, ValidationError
from ..netsim.linkstate import _FLOOR_LOSS, _QUEUE_BASE_MS, _QUEUE_CAP_MS
from ..netsim.pathmodel import PathMetrics
from ..netsim.traffic import UtilizationModel
from ..speedtest.browser import (BrowserArtifacts, _CAPTURE_OVERHEAD_BYTES,
                                 _PCAP_FRACTION)
from ..speedtest.protocol import SpeedTestResult
from ..units import HOUR, transferred_bytes
from .vectcp import (batch_loss_rate, batch_mean_utilization_grid,
                     batch_multiflow_throughput_mbps, batch_queue_delay_ms,
                     batch_residual_mbps)

__all__ = ["BatchLaneExecutor", "BatchPlanner", "batch_executor_factory"]

#: Outcome sentinel: every attempt of the slot failed (protocol failure,
#: injected failure, or truncation) - the stepper re-raises.
_FAILED = object()


class _Job:
    """One test that will complete, with its pre-drawn noise."""

    __slots__ = ("lane", "slot", "ts", "attempts", "server", "jitter",
                 "down_short", "down_wiggle", "up_short", "up_wiggle",
                 "route_in", "route_eg", "rtt_eg", "down_tcp", "up_tcp",
                 "down_loss", "up_loss", "rtt_in")


class _Transfer:
    """One bulk phase (down or up) awaiting its batched TCP evaluation."""

    __slots__ = ("job", "phase", "rtt_ms", "eff_loss", "flows", "avail",
                 "bottleneck")

    def __init__(self, job: _Job, phase: str, rtt_ms: float, eff_loss: float,
                 flows: int, avail: float, bottleneck: int) -> None:
        self.job = job
        self.phase = phase
        self.rtt_ms = rtt_ms
        self.eff_loss = eff_loss
        self.flows = flows
        self.avail = avail
        self.bottleneck = bottleneck


class BatchPlanner:
    """Precomputes one hour of test outcomes for a set of lanes.

    The planner must replicate, call for call, every RNG consumption
    the scalar path makes on a lane's streams: the schedule draw, then
    per slot the browser retry loop (failure draw before the injector
    checks, no further draws on a failed attempt) and, on success, the
    latency jitter and the four bulk-noise draws.  The stream state
    after a planned hour is therefore byte-identical to the scalar
    hour, which is what makes batch-on/batch-off runs interchangeable
    mid-campaign.
    """

    def __init__(self, runner: Any) -> None:
        self.runner = runner
        self._slots: Dict[Tuple[str, float], List[TestSlot]] = {}
        self._outcomes: Dict[Tuple[str, int], Any] = {}
        self._planned_hour: Optional[float] = None
        self._prop_ms: Dict[int, float] = {}
        self._burst_survive: Dict[int, float] = {}
        self._link_rows: Dict[Tuple[int, int], tuple] = {}

    # ------------------------------------------------------------------
    # stepper-facing accessors

    @property
    def active(self) -> bool:
        return self._planned_hour is not None

    def slots_for(self, lane: Lane,
                  hour_start: float) -> Optional[List[TestSlot]]:
        """The hour's pre-drawn slots, or None when the hour is unplanned."""
        return self._slots.get((lane.name, hour_start))

    def take_outcome(self, lane: Lane, slot: TestSlot) -> Any:
        """Pop the precomputed outcome of one slot (planned hours only).

        Raising on a miss (rather than silently falling back to the
        scalar path) matters: a scalar re-run would consume the lane's
        RNG stream a second time and desynchronise every later draw.
        """
        try:
            return self._outcomes.pop((lane.name, slot.slot_index))
        except KeyError:
            raise ValidationError(
                f"batch planner has no outcome for lane {lane.name!r} "
                f"slot {slot.slot_index} at ts {slot.ts}") from None

    # ------------------------------------------------------------------

    def plan_hour(self, lanes: Sequence[Lane], hour_start: float) -> None:
        """Precompute outcomes for every runnable lane-slot this hour."""
        self._slots.clear()
        self._outcomes.clear()
        self._planned_hour = hour_start
        with obs.span("shard.plan_hour", layer="shard", sim_ts=hour_start,
                      n_lanes=len(lanes)) as sp:
            jobs = self._rng_prepass(lanes, hour_start)
            if jobs:
                self._evaluate(jobs)
            sp.annotate(n_jobs=len(jobs))
        obs.inc("shard.hours_planned")

    # ------------------------------------------------------------------
    # phase 1: replicate the scalar RNG consumption

    def _rng_prepass(self, lanes: Sequence[Lane],
                     hour_start: float) -> List[_Job]:
        runner = self.runner
        engine = runner.engine
        cfg = engine.config
        browser = runner.browser
        injector = runner.injector
        jobs: List[_Job] = []
        for lane in lanes:
            slots = lane.schedule.hour_slots(hour_start)
            self._slots[(lane.name, hour_start)] = slots
            if injector is not None:
                if hour_start < lane.ready_ts:
                    continue
                if injector.vm_preempted(lane.vm.name, hour_start):
                    continue
            vm = lane.vm
            rng = engine.stream_for(vm.name)
            for slot in slots:
                server = runner.catalog.get(slot.server_id)
                job: Optional[_Job] = None
                for attempt in range(browser.max_retries + 1):
                    attempt_ts = slot.ts
                    if attempt and browser.backoff is not None:
                        attempt_ts = slot.ts + browser.backoff(attempt - 1)
                    # The protocol's outright-failure draw happens before
                    # the injector checks, and a failed attempt consumes
                    # no further randomness.
                    if rng.random() < cfg.failure_rate:
                        continue
                    if engine.injector is not None:
                        if engine.injector.speedtest_fails(
                                vm.name, server.server_id, attempt_ts):
                            continue
                        if engine.injector.truncation_fraction(
                                vm.name, server.server_id,
                                attempt_ts) is not None:
                            continue
                    job = _Job()
                    job.lane = lane
                    job.slot = slot
                    job.ts = attempt_ts
                    job.attempts = attempt + 1
                    job.server = server
                    job.jitter = rng.exponential(cfg.ping_jitter_ms,
                                                 size=cfg.ping_count)
                    job.down_short = rng.normal(0.0, cfg.noise_sigma)
                    job.down_wiggle = rng.normal(0.0, cfg.noise_sigma * 0.25)
                    job.up_short = rng.normal(0.0, cfg.noise_sigma)
                    job.up_wiggle = rng.normal(0.0, cfg.noise_sigma * 0.25)
                    break
                if job is None:
                    self._outcomes[(lane.name, slot.slot_index)] = _FAILED
                else:
                    jobs.append(job)
        return jobs

    # ------------------------------------------------------------------
    # phase 2: batched path + TCP evaluation, scalar result assembly

    def _evaluate(self, jobs: List[_Job]) -> None:
        runner = self.runner
        platform = runner.engine.platform
        topo = platform.topology
        evaluator = platform.evaluator
        cfg = runner.engine.config

        # Unique (link_id, direction, ts) observation points across the
        # hour, grouped per link direction for vectorized evaluation.
        index: Dict[Tuple[int, int, float], int] = {}
        groups: Dict[Tuple[int, int], List[Tuple[int, float]]] = {}
        for job in jobs:
            job.route_in, job.route_eg = platform.route_pair(
                job.lane.vm, job.server.host_pop_id, Direction.INGRESS)
            for route in (job.route_in, job.route_eg):
                for link_id, direction in route.links:
                    key = (link_id, direction, job.ts)
                    if key not in index:
                        index[key] = len(index)
                        groups.setdefault((link_id, direction), []).append(
                            (index[key], job.ts))
        n_points = len(index)
        loss = np.empty(n_points)
        queue = np.empty(n_points)
        residual = np.empty(n_points)
        if n_points:
            self._observe_flat(groups, topo, evaluator, loss, queue,
                               residual)
        obs.inc("shard.link_observations", float(n_points))

        # Scalar per-job assembly in the exact float-op order of
        # PathPerformanceModel.evaluate, collecting bulk transfers for
        # the bottleneck-grouped TCP batch.
        transfers: List[_Transfer] = []
        for job in jobs:
            in_qsum, in_survive, in_avail, in_bneck = self._route_stats(
                job.route_in, job.ts, index, loss, queue, residual)
            eg_qsum, eg_survive, eg_avail, eg_bneck = self._route_stats(
                job.route_eg, job.ts, index, loss, queue, residual)
            prop_in = self._prop(job.route_in, topo)
            prop_eg = self._prop(job.route_eg, topo)
            burst_in = self._burst_loss(job.route_in, topo)
            burst_eg = self._burst_loss(job.route_eg, topo)

            # rtt = fwd_prop + rev_prop + sum(fwd queues) + sum(rev queues)
            job.rtt_in = prop_in + prop_eg + in_qsum + eg_qsum
            job.rtt_eg = prop_eg + prop_in + eg_qsum + in_qsum
            loss_in = min(0.95, max(0.0, 1.0 - in_survive))
            loss_eg = min(0.95, max(0.0, 1.0 - eg_survive))
            eff_in = min(0.95, loss_in
                         + PathMetrics.BURST_TCP_WEIGHT * burst_in)
            eff_eg = min(0.95, loss_eg
                         + PathMetrics.BURST_TCP_WEIGHT * burst_eg)
            job.down_loss = min(0.95, 1.0 - (1.0 - loss_in)
                                * (1.0 - burst_in))
            job.up_loss = min(0.95, 1.0 - (1.0 - loss_eg)
                              * (1.0 - burst_eg))
            transfers.append(_Transfer(job, "down", job.rtt_in, eff_in,
                                       cfg.flows_for_rtt(job.rtt_in),
                                       in_avail, in_bneck))
            transfers.append(_Transfer(job, "up", job.rtt_eg, eff_eg,
                                       cfg.flows_for_rtt(job.rtt_eg),
                                       eg_avail, eg_bneck))

        self._run_tcp_batches(transfers)
        for job in jobs:
            self._finish_job(job, cfg)

    def _run_tcp_batches(self, transfers: List[_Transfer]) -> None:
        """Evaluate all bulk transfers as one flat TCP batch.

        Transfers are laid out grouped by bottleneck link (the sort is
        stable, so transfers sharing a contended link sit contiguously)
        and the whole hour goes through the closed-form model in a
        single elementwise call - per-element results are independent
        of batch composition, so the layout is a locality choice, not a
        correctness one.
        """
        if not transfers:
            return
        transfers = sorted(transfers, key=lambda t: t.bottleneck)
        n = len(transfers)
        rtt = np.fromiter((t.rtt_ms for t in transfers), dtype=np.float64,
                          count=n)
        eff = np.fromiter((t.eff_loss for t in transfers),
                          dtype=np.float64, count=n)
        flows = np.fromiter((t.flows for t in transfers), dtype=np.int64,
                            count=n)
        avail = np.fromiter((t.avail for t in transfers),
                            dtype=np.float64, count=n)
        aggregate = batch_multiflow_throughput_mbps(rtt, eff, flows, avail)
        mirror = obs.enabled()
        for i, transfer in enumerate(transfers):
            value = float(aggregate[i])
            job = transfer.job
            if transfer.phase == "down":
                job.down_tcp = value
            else:
                job.up_tcp = value
            if mirror:
                obs.inc("netsim.tcp.transfers")
                obs.observe("netsim.tcp.throughput_mbps", value)

    def _finish_job(self, job: _Job, cfg: Any) -> None:
        """Assemble the final result with the scalar protocol arithmetic."""
        vm = job.lane.vm
        server_cap = job.server.effective_cap_mbps
        latency_ms = float(np.min(job.rtt_eg + job.jitter))
        down_mbps = self._bulk_phase(job.down_tcp, vm.nic.ingress_cap_mbps(),
                                     server_cap, vm, job.down_short,
                                     job.down_wiggle)
        up_mbps = self._bulk_phase(job.up_tcp, vm.nic.egress_cap_mbps(),
                                   server_cap, vm, job.up_short,
                                   job.up_wiggle)
        down_bytes = transferred_bytes(down_mbps, cfg.download_duration_s)
        up_bytes = transferred_bytes(up_mbps, cfg.upload_duration_s)
        duration = (cfg.download_duration_s + cfg.upload_duration_s
                    + 0.2 * cfg.ping_count + 3.0)
        cpu = vm.machine_type.cpu_utilization_during_test(
            max(down_mbps, up_mbps))
        result = SpeedTestResult(
            server_id=job.server.server_id,
            vm_name=vm.name,
            ts=job.ts,
            latency_ms=round(latency_ms, 2),
            download_mbps=round(down_mbps, 2),
            upload_mbps=round(up_mbps, 2),
            download_loss_rate=job.down_loss,
            upload_loss_rate=job.up_loss,
            download_bytes=down_bytes,
            upload_bytes=up_bytes,
            duration_s=duration,
            cpu_utilization=cpu,
        )
        artefacts = BrowserArtifacts(
            result=result,
            pcap_bytes=int(result.total_bytes * _PCAP_FRACTION),
            capture_bytes=_CAPTURE_OVERHEAD_BYTES,
            attempts=job.attempts,
        )
        self._outcomes[(job.lane.name, job.slot.slot_index)] = artefacts

    @staticmethod
    def _bulk_phase(tcp_mbps: float, endpoint_cap: float, server_cap: float,
                    vm: Any, shortfall_draw: float, wiggle: float) -> float:
        rate = min(tcp_mbps, endpoint_cap, server_cap)
        rate = min(rate, vm.machine_type.cpu_throughput_cap_mbps)
        shortfall = abs(shortfall_draw)
        factor = max(0.05, min(1.0, 1.0 - shortfall + wiggle))
        return max(0.05, rate * factor)

    # ------------------------------------------------------------------
    # flat link-state evaluation

    def _link_row(self, link: Any, direction: int,
                  model: UtilizationModel) -> tuple:
        """Per-(link, direction) parameter row for the flat batch.

        ``(capacity, loss_floor, queue_base, queue_cap, base,
        weekend_factor, utc_offset_hours, noise_sigma, bumps, noise)``
        - the first eight are the float columns of the parameter
        matrix, *bumps* is the profile's ``(center, width, amplitude)``
        triples, *noise* the model's hourly realisation (or None).
        Profiles and capacities are fixed after generation, so the row
        is cached for the planner's lifetime.
        """
        key = (link.link_id, direction)
        row = self._link_rows.get(key)
        if row is None:
            profile = model.profile(link.link_id, direction)
            noise = (model.noise_array(link.link_id, direction)
                     if profile.noise_sigma > 0 else None)
            bumps = tuple((b.center_hour, b.width_hours, b.amplitude)
                          for b in profile.bumps)
            row = (link.capacity_mbps, _FLOOR_LOSS[link.kind],
                   _QUEUE_BASE_MS[link.kind], _QUEUE_CAP_MS[link.kind],
                   profile.base, profile.weekend_factor,
                   profile.utc_offset_hours, profile.noise_sigma,
                   bumps, noise)
            self._link_rows[key] = row
        return row

    def _observe_flat(self, groups: Dict[Tuple[int, int],
                                         List[Tuple[int, float]]],
                      topo: Any, evaluator: Any, loss: np.ndarray,
                      queue: np.ndarray, residual: np.ndarray) -> None:
        """Evaluate every observation point of the hour as ONE batch.

        The whole hour - every link, both directions - is laid out
        group-contiguously, per-link parameters are expanded into
        aligned columns (``np.repeat`` over the group parameter
        matrix), and the vectcp twins run once over the full batch.
        Only the two inherently per-link pieces stay in a Python loop:
        the hourly-noise gather (one contiguous slice per group) and
        the flap hook (hour-granular RNG decisions).  Results scatter
        back into *loss*/*queue*/*residual* through the original flat
        index, so :meth:`_route_stats` is layout-agnostic.
        """
        model = evaluator.utilization_model
        hook = evaluator.flap_hook
        rows: List[tuple] = []
        counts: List[int] = []
        slices: List[Tuple[tuple, int, int, int, int]] = []
        pos = 0
        for (link_id, direction), points in groups.items():
            row = self._link_row(topo.link(link_id), direction, model)
            n = len(points)
            rows.append(row)
            counts.append(n)
            slices.append((row, pos, pos + n, link_id, direction))
            pos += n
        perm = np.fromiter((p[0] for points in groups.values()
                            for p in points), dtype=np.int64, count=pos)
        ts = np.fromiter((p[1] for points in groups.values()
                          for p in points), dtype=np.float64, count=pos)
        n_bumps = max(len(row[8]) for row in rows)
        pad = (0.0, 1.0, 0.0)  # amplitude-0 bump: contributes exact +0.0
        mat = np.array([row[:8]
                        + sum(row[8], ())
                        + pad * (n_bumps - len(row[8]))
                        for row in rows])
        expanded = np.repeat(mat, np.asarray(counts), axis=0)

        mean = batch_mean_utilization_grid(
            ts, expanded[:, 4], expanded[:, 5], expanded[:, 6],
            expanded[:, 8::3], expanded[:, 9::3], expanded[:, 10::3])
        noise = np.zeros(ts.shape)
        hour_idx = (np.floor_divide(ts - model.origin_ts, HOUR)
                    .astype(np.int64) % UtilizationModel.NOISE_HOURS)
        for row, start, stop, _link_id, _direction in slices:
            arr = row[9]
            if arr is None:
                continue
            noise[start:stop] = arr[hour_idx[start:stop]]
        u = np.where(expanded[:, 7] > 0,
                     np.maximum(0.0, mean + noise), mean)

        if hook is not None:
            for row, start, stop, link_id, direction in slices:
                seg_ts = ts[start:stop]
                seg_u = u[start:stop]
                hours = np.floor_divide(seg_ts, HOUR)
                for hour in np.unique(hours):
                    in_hour = hours == hour
                    floor = hook(link_id, direction,
                                 float(seg_ts[in_hour][0]))
                    if floor is not None:
                        seg_u[in_hour] = np.maximum(seg_u[in_hour], floor)

        residual[perm] = batch_residual_mbps(expanded[:, 0], u)
        loss[perm] = batch_loss_rate(u, floor=expanded[:, 1])
        queue[perm] = batch_queue_delay_ms(u, base=expanded[:, 2],
                                           cap=expanded[:, 3])

    # ------------------------------------------------------------------
    # per-route helpers

    def _route_stats(self, route: Any, ts: float,
                     index: Dict[Tuple[int, int, float], int],
                     loss: np.ndarray, queue: np.ndarray,
                     residual: np.ndarray
                     ) -> Tuple[float, float, float, int]:
        """(queue sum, survival product, min residual, bottleneck link).

        Iterates links in route order with the scalar path's exact
        accumulation order; the bottleneck keeps the *first* strict
        minimum, matching ``min()`` over the observation list.
        """
        q_sum = 0.0
        survive = 1.0
        avail = float("inf")
        bottleneck = -1
        for link_id, direction in route.links:
            flat = index[(link_id, direction, ts)]
            q_sum += float(queue[flat])
            survive *= (1.0 - float(loss[flat]))
            r = float(residual[flat])
            if r < avail:
                avail = r
                bottleneck = link_id
        return q_sum, survive, avail, bottleneck

    def _prop(self, route: Any, topo: Any) -> float:
        value = self._prop_ms.get(id(route))
        if value is None:
            # Routes live in the platform's route cache for the process
            # lifetime, so id() is a stable key.
            value = route.propagation_delay_ms(topo)
            self._prop_ms[id(route)] = value
        return value

    def _burst_loss(self, route: Any, topo: Any) -> float:
        """The route's (static) clamped burst loss, cached per route."""
        value = self._burst_survive.get(id(route))
        if value is None:
            burst_survive = 1.0
            for link_id, _direction in route.links:
                burst_survive *= (1.0 - topo.link(link_id).burst_loss)
            value = min(0.95, max(0.0, 1.0 - burst_survive))
            self._burst_survive[id(route)] = value
        return value


class BatchLaneExecutor(LaneExecutor):
    """A :class:`LaneExecutor` that serves pre-batched hour outcomes.

    ``attach_engine`` (called by :meth:`CampaignRunner.run` or the
    shard executor) installs the planner on the engine's ``hour_hook``;
    from then on every hour is precomputed in one vectorized pass and
    the three executor seams serve cached slots and outcomes.  Without
    an engine attached the executor degrades to the scalar path.
    """

    def __init__(self, runner: Any, bus: Any) -> None:
        super().__init__(runner, bus)
        self.planner = BatchPlanner(runner)
        self._engine: Any = None

    def attach_engine(self, engine: Any) -> None:
        self._engine = engine
        engine.hour_hook = self._plan_hour

    def _plan_hour(self, hour_start: float, hour_index: int) -> None:
        self.planner.plan_hour(self._engine.lanes, hour_start)

    # ------------------------------------------------------------------
    # seams

    def _hour_slots(self, lane: Lane, hour_start: float):
        slots = self.planner.slots_for(lane, hour_start)
        if slots is None:
            return super()._hour_slots(lane, hour_start)
        return slots

    def _run_slot_test(self, lane: Lane, slot: TestSlot):
        if not self.planner.active:
            return super()._run_slot_test(lane, slot)
        outcome = self.planner.take_outcome(lane, slot)
        if outcome is _FAILED:
            obs.inc("speedtest.failures")
            raise SpeedTestError(
                f"test from {lane.vm.name} to {slot.server_id} failed "
                f"(all attempts, batched)")
        obs.inc("speedtest.tests")
        obs.observe("speedtest.download_mbps", outcome.result.download_mbps)
        return outcome


def batch_executor_factory(runner: Any, bus: Any) -> BatchLaneExecutor:
    """``executor_factory`` for :meth:`repro.core.campaign.CampaignRunner.run`."""
    return BatchLaneExecutor(runner, bus)
