"""Region-sharded campaign execution with deterministic replay.

:func:`run_sharded` splits the campaign's lanes across shards, runs
each shard through its own :class:`~repro.engine.lanes.CampaignEngine`
(scalar or vectorized stepper), merges the recorded per-shard event
streams into the inline total order, and replays the merged stream
through the standard observer stack.  The dataset, billing ledger, and
digests that come out are byte-identical to the inline run - for any
shard count, with or without the batch path - because:

* every RNG stream is keyed by lane/VM/decision identity, never by
  global call order, so a lane draws the same numbers in any shard;
* fault decisions are cached by ``(kind, key, ts)`` and re-query
  identically from any process;
* all cross-lane float accumulation (dataset counters, billing sums,
  metrics) happens in the single replay pass, in merged order.

Shards write artefacts to shard-local *shadow buckets* (same name, so
upload fault decisions key identically); the replay applies each
successful upload to the real bucket via :class:`UploadSyncObserver`
*before* the billing observer settles the hour, keeping the monthly
storage sweep exact.

Worker processes (``processes=True``) use the ``fork`` start method:
each child inherits the pristine runner, runs its shard, and ships the
stamped events (plus its obs metrics registry, merged into the parent
via :meth:`MetricsRegistry.merge`) back over a pipe.  On a single
core this buys isolation rather than speed; the vectorized batch path
is where the throughput comes from.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..cloud.storage import StorageBucket
from ..core.campaign import (CampaignConfig, CampaignDataset, CampaignRunner,
                             LaneExecutor)
from ..engine.bus import EventBus
from ..engine.lanes import CampaignEngine, Lane
from ..engine.observers import Observer
from ..errors import ValidationError
from .batch import BatchLaneExecutor
from .merge import (RecordingStepper, ShardRecorder, StampedEvent,
                    merge_streams, replay_events)

__all__ = ["ShardBatchLaneExecutor", "ShardLaneExecutor", "ShardReport",
           "UploadSyncObserver", "partition_lanes", "run_sharded"]


def partition_lanes(lanes: Sequence[Lane],
                    shards: int) -> List[List[Lane]]:
    """Split lanes across at most *shards* workers, regions intact.

    Lanes are grouped by ``(provider, region)`` - in a single-provider
    campaign this degenerates to plain region grouping, so the
    partition (and therefore every digest) is unchanged from before
    fleets existed.  Groups are numbered in first-appearance order and
    dealt round-robin, so when there are at least as many groups as
    shards every group's lanes stay together (its replay-side billing
    and storage interleavings then match the inline run trivially),
    and mixed fleets never share a lane group across clouds.  With
    fewer groups than shards the split falls back to lane round-robin.
    Empty shards are dropped; global lane order is preserved within
    each shard.
    """
    if shards < 1:
        raise ValidationError(f"shards must be >= 1, got {shards}")
    groups: List[Tuple[str, str]] = []
    for lane in lanes:
        key = (getattr(lane.plan, "provider", "gcp"), lane.region)
        if key not in groups:
            groups.append(key)
    by_group = len(groups) >= shards
    buckets: List[List[Lane]] = [[] for _ in range(shards)]
    for gidx, lane in enumerate(lanes):
        if by_group:
            key = (getattr(lane.plan, "provider", "gcp"), lane.region)
            idx = groups.index(key) % shards
        else:
            idx = gidx % shards
        buckets[idx].append(lane)
    return [bucket for bucket in buckets if bucket]


class _ShadowStore:
    """Per-shard stand-ins for the campaign's real storage buckets.

    Shadows share the real bucket's name so the upload fault hook sees
    the exact keys it would inline (decisions are keyed
    ``bucket/key#attempt``); their contents stay shard-local and are
    projected onto the real buckets during replay.
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, StorageBucket] = {}

    def shadow_of(self, real: StorageBucket) -> StorageBucket:
        shadow = self._buckets.get(real.name)
        if shadow is None:
            shadow = StorageBucket(real.name, real.region_name,
                                   fault_hook=real.fault_hook)
            self._buckets[real.name] = shadow
        return shadow


class ShardLaneExecutor(LaneExecutor):
    """The scalar lane stepper, uploading to shard-local buckets."""

    def __init__(self, runner: CampaignRunner, bus: EventBus,
                 shadows: _ShadowStore) -> None:
        super().__init__(runner, bus)
        self._shadows = shadows

    def _bucket_for(self, lane: Lane) -> StorageBucket:
        return self._shadows.shadow_of(super()._bucket_for(lane))


class ShardBatchLaneExecutor(BatchLaneExecutor):
    """The vectorized lane stepper, uploading to shard-local buckets."""

    def __init__(self, runner: CampaignRunner, bus: EventBus,
                 shadows: _ShadowStore) -> None:
        super().__init__(runner, bus)
        self._shadows = shadows

    def _bucket_for(self, lane: Lane) -> StorageBucket:
        return self._shadows.shadow_of(super()._bucket_for(lane))


class UploadSyncObserver(Observer):
    """Applies shard-decided uploads to the real buckets during replay.

    Subscribed *before* the billing observer, so every object a shard
    successfully uploaded is present in the real bucket by the time the
    next ``hour-started`` event triggers the monthly storage sweep -
    the same state the inline run would have had.  The write is
    :meth:`StorageBucket.put` (no fault hook): the pass/fail decision
    and its per-key attempt accounting already happened in the shard.

    The vm-name -> bucket map seeds from the original lane VMs and
    follows ``vm-replaced`` events, mirroring how the lane itself
    re-targets uploads after a preemption replacement.
    """

    IGNORED_EVENTS: ClassVar[Tuple[str, ...]] = (
        "billing-charged", "campaign-finished", "hour-started",
        "test-completed", "test-lost", "test-retried", "vm-preempted")

    def __init__(self, bucket_by_vm: Dict[str, StorageBucket]) -> None:
        self._bucket_by_vm = dict(bucket_by_vm)

    def on_vm_replaced(self, event: Any) -> None:
        try:
            self._bucket_by_vm[event.new_name] = (
                self._bucket_by_vm[event.old_name])
        except KeyError:
            raise ValidationError(
                f"vm-replaced for unknown VM {event.old_name!r}") from None

    def on_upload_attempted(self, event: Any) -> None:
        if not event.ok:
            return
        try:
            bucket = self._bucket_by_vm[event.vm_name]
        except KeyError:
            raise ValidationError(
                f"upload-attempted for unknown VM {event.vm_name!r}"
            ) from None
        bucket.put(event.key, event.size_bytes, event.ts)


@dataclass(frozen=True)
class ShardReport:
    """What a sharded run did (for benchmarks and tests)."""

    shards: int
    batch: bool
    processes: bool
    lanes_per_shard: Tuple[int, ...]
    events_per_shard: Tuple[int, ...]

    @property
    def n_events(self) -> int:
        return sum(self.events_per_shard)


# ----------------------------------------------------------------------
# shard execution


def _run_shard(runner: CampaignRunner, shard_lanes: Sequence[Lane],
               cfg: CampaignConfig, lane_index: Dict[str, int],
               batch: bool) -> List[StampedEvent]:
    """Run one shard's lanes through a private engine; returns events."""
    shadows = _ShadowStore()
    bus = EventBus()
    recorder = ShardRecorder()
    bus.subscribe(recorder)
    if batch:
        stepper: LaneExecutor = ShardBatchLaneExecutor(runner, bus, shadows)
    else:
        stepper = ShardLaneExecutor(runner, bus, shadows)
    wrapped = RecordingStepper(stepper, recorder, cfg.start_ts, lane_index)
    engine = CampaignEngine(lanes=shard_lanes, stepper=wrapped, bus=bus,
                            start_ts=cfg.start_ts, n_hours=cfg.n_hours)
    wrapped.attach_engine(engine)
    engine.run()
    return recorder.events


def _forked_shard_main(conn: Any, runner: CampaignRunner,
                       shard_lanes: Sequence[Lane], cfg: CampaignConfig,
                       lane_index: Dict[str, int], batch: bool) -> None:
    """Worker-process entry point: run the shard, ship the results."""
    try:
        mirror_obs = obs.enabled()
        if mirror_obs:
            # Fresh registry: the fork inherited the parent's counters,
            # which the parent still owns; this shard reports only what
            # it did, and the parent merges the registries.
            obs.enable()
        events = _run_shard(runner, shard_lanes, cfg, lane_index, batch)
        registry = obs.registry() if mirror_obs else None
        conn.send({"events": events, "registry": registry, "error": None})
    except BaseException as err:  # pragma: no cover - worker crash path
        conn.send({"events": [], "registry": None, "error": repr(err)})
        raise
    finally:
        conn.close()


def _run_forked(runner: CampaignRunner, parts: Sequence[Sequence[Lane]],
                cfg: CampaignConfig, lane_index: Dict[str, int],
                batch: bool
                ) -> Tuple[List[List[StampedEvent]], List[Any]]:
    """Run every shard in a forked worker; returns (streams, registries).

    ``fork`` is required (not ``spawn``): children must inherit the
    fully wired runner - platform, catalog, injector caches, lane
    objects - by memory image, because none of it is re-importable
    state.  Results come back over one pipe per worker; stamped events
    and metrics registries are plain picklable objects.
    """
    ctx = multiprocessing.get_context("fork")
    procs = []
    pipes = []
    for shard_lanes in parts:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_forked_shard_main,
                           args=(child_conn, runner, shard_lanes, cfg,
                                 lane_index, batch))
        proc.start()
        child_conn.close()
        procs.append(proc)
        pipes.append(parent_conn)
    streams: List[List[StampedEvent]] = []
    registries: List[Any] = []
    for i, (proc, conn) in enumerate(zip(procs, pipes)):
        try:
            payload = conn.recv()
        except EOFError:  # pragma: no cover - worker crash path
            proc.join()
            raise ValidationError(
                f"shard {i} worker died without reporting "
                f"(exit code {proc.exitcode})") from None
        finally:
            conn.close()
        proc.join()
        if payload["error"] is not None:
            raise ValidationError(
                f"shard {i} worker failed: {payload['error']}")
        streams.append(payload["events"])
        registries.append(payload["registry"])
    return streams, registries


def run_sharded(runner: CampaignRunner, plans: Sequence[Any],
                config: Optional[CampaignConfig] = None,
                observers: Sequence[Any] = (), *,
                shards: int = 1, batch: bool = False,
                processes: bool = False
                ) -> Tuple[CampaignDataset, ShardReport]:
    """Run the campaign sharded; returns ``(dataset, report)``.

    The dataset (and everything the replayed observers accumulate -
    billing, metrics, caller observers) is byte-identical to
    ``runner.run(plans, config, observers)`` for every combination of
    *shards*, *batch*, and *processes*.
    """
    cfg = config or CampaignConfig()
    lanes = runner.build_lanes(plans, cfg.start_ts)
    if not lanes:
        raise ValidationError("cannot shard a campaign with no lanes")
    lane_index = {lane.name: i for i, lane in enumerate(lanes)}
    # Captured before any shard runs: lane.vm mutates on replacement.
    bucket_by_vm = {lane.name: lane.plan.bucket for lane in lanes}
    parts = partition_lanes(lanes, shards)
    with obs.span("shard.run_campaign", layer="shard", sim_ts=cfg.start_ts,
                  shards=len(parts), batch=batch, processes=processes):
        if processes and len(parts) > 1:
            streams, registries = _run_forked(runner, parts, cfg,
                                              lane_index, batch)
            if obs.enabled():
                for registry in registries:
                    if registry is not None:
                        obs.registry().merge(registry)
        else:
            streams = [_run_shard(runner, shard_lanes, cfg, lane_index,
                                  batch)
                       for shard_lanes in parts]
        merged = merge_streams(streams)
        obs.inc("shard.merged_events", float(len(merged)))

        dataset = CampaignDataset(cfg.start_ts, cfg.end_ts,
                                  provider=runner.platform.provider.name)
        runner.register_metadata(dataset, plans)
        bus = runner.compose_bus(
            cfg, dataset, observers,
            post_dataset=(UploadSyncObserver(bucket_by_vm),))
        replay_events(bus, merged, cfg.start_ts, cfg.n_hours)
    report = ShardReport(
        shards=len(parts),
        batch=batch,
        processes=processes and len(parts) > 1,
        lanes_per_shard=tuple(len(part) for part in parts),
        events_per_shard=tuple(len(stream) for stream in streams))
    return dataset, report
