"""Deterministic merge of per-shard event streams.

The campaign's observable behaviour is its event stream.  A sharded
run produces one stream per worker; to feed the unchanged observer
stack (dataset, billing, metrics, caller observers) it must present
them as *the* stream - the exact sequence the inline single-process
run would have emitted.

That sequence is fully determined by a total order every event
already carries implicitly:

``(hour_index, lane_global_index, seq)``

because the inline engine runs hour by hour, steps lanes in build
order within the hour, and a lane-hour's events are emitted in step
order.  :class:`RecordingStepper` stamps each event with that triple
as it leaves the shard's stepper; :func:`merge_streams` k-way merges
the (already sorted) shard streams on it; :func:`replay_events`
re-emits the merged sequence with the engine's own ``hour-started`` /
``campaign-finished`` framing synthesized around it.

Ties are impossible by construction - each lane-hour lives in exactly
one shard and ``seq`` increments per emitted event - so the merge
treats a duplicate stamp as corruption and refuses it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..engine.bus import EventBus
from ..engine.events import CampaignFinished, HourStarted
from ..engine.lanes import Lane
from ..errors import ValidationError
from ..units import HOUR

__all__ = ["RecordingStepper", "ShardRecorder", "StampedEvent",
           "merge_streams", "replay_events"]

#: Framing kinds the engine emits itself; the replay synthesizes them,
#: so shard recorders drop them instead of stamping them.
_FRAMING_KINDS = ("hour-started", "campaign-finished")


@dataclass(frozen=True)
class StampedEvent:
    """One shard event plus its position in the inline total order."""

    hour: int
    lane: int
    seq: int
    event: Any

    @property
    def sort_key(self) -> Tuple[int, int, int]:
        return (self.hour, self.lane, self.seq)


class ShardRecorder:
    """Bus subscriber that stamps and collects a shard's events.

    ``begin_lane`` (called by :class:`RecordingStepper` before each
    lane step) fixes the (hour, lane) coordinates; every event the
    step emits gets the next ``seq`` under them.  Framing events are
    dropped - and so is anything emitted outside a lane step, which
    by construction is only framing.
    """

    def __init__(self) -> None:
        self.events: List[StampedEvent] = []
        self._hour = 0
        self._lane = 0
        self._seq = 0
        self._recording = False

    def begin_lane(self, hour: int, lane: int) -> None:
        self._hour = hour
        self._lane = lane
        self._seq = 0
        self._recording = True

    def on_event(self, event: Any) -> None:
        if not self._recording or event.kind in _FRAMING_KINDS:
            return
        self.events.append(StampedEvent(hour=self._hour, lane=self._lane,
                                        seq=self._seq, event=event))
        self._seq += 1


class RecordingStepper:
    """Wraps a shard's stepper to coordinate the recorder.

    Translates each ``step(lane, hour_start)`` into the lane's global
    stamp coordinates before delegating, and forwards ``attach_engine``
    so a batch stepper still gets its per-hour planning hook.
    """

    def __init__(self, inner: Any, recorder: ShardRecorder,
                 start_ts: float, lane_index: Dict[str, int]) -> None:
        self.inner = inner
        self.recorder = recorder
        self.start_ts = float(start_ts)
        self.lane_index = dict(lane_index)

    def attach_engine(self, engine: Any) -> None:
        attach = getattr(self.inner, "attach_engine", None)
        if attach is not None:
            attach(engine)

    def step(self, lane: Lane, hour_start: float) -> None:
        hour = int((hour_start - self.start_ts) // HOUR)
        self.recorder.begin_lane(hour, self.lane_index[lane.name])
        self.inner.step(lane, hour_start)


def merge_streams(streams: Sequence[Sequence[StampedEvent]]
                  ) -> List[StampedEvent]:
    """K-way merge of per-shard streams into the inline total order.

    Each input stream must already be sorted (shard engines emit in
    (hour, lane, seq) order naturally); the merged result must be
    strictly increasing - equal stamps mean two shards ran the same
    lane-hour, and an unsorted input means a recorder bug - and both
    are rejected rather than silently reordered.
    """
    for i, stream in enumerate(streams):
        for prev, cur in zip(stream, stream[1:]):
            if not prev.sort_key < cur.sort_key:
                raise ValidationError(
                    f"shard stream {i} is not strictly ordered at "
                    f"{prev.sort_key} -> {cur.sort_key}")
    merged = list(heapq.merge(*streams, key=lambda s: s.sort_key))
    for prev, cur in zip(merged, merged[1:]):
        if prev.sort_key == cur.sort_key:
            raise ValidationError(
                f"duplicate event stamp {cur.sort_key} across shards; "
                f"lane partitions overlap")
    return merged


def replay_events(bus: EventBus, events: Sequence[StampedEvent],
                  start_ts: float, n_hours: int) -> None:
    """Re-emit the merged stream with engine framing on *bus*.

    Emits ``HourStarted`` for every campaign hour (observers settle
    per-hour state on those boundaries even for empty hours), then the
    hour's merged events in stamp order, and one ``CampaignFinished``
    at the end - byte-for-byte the inline engine's framing.
    """
    if n_hours < 1:
        raise ValidationError(f"n_hours must be >= 1, got {n_hours}")
    i = 0
    n = len(events)
    for hour_index in range(n_hours):
        hour_start = start_ts + hour_index * HOUR
        bus.emit(HourStarted(ts=hour_start, hour_index=hour_index))
        while i < n and events[i].hour == hour_index:
            bus.emit(events[i].event)
            i += 1
    if i < n:
        raise ValidationError(
            f"merged stream has events stamped for hour {events[i].hour}, "
            f"beyond the campaign's {n_hours} hours")
    bus.emit(CampaignFinished(ts=start_ts + n_hours * HOUR,
                              n_hours=n_hours))
