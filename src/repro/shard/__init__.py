"""repro.shard - sharded, vectorized campaign execution.

Two orthogonal accelerations for the campaign hot loop, both exactly
equivalence-preserving (golden digests are byte-identical for any
``shards``/``batch`` combination - enforced by ``tests/test_shard.py``):

* **Vectorized batch path** (:mod:`repro.shard.batch`): an engine
  ``hour_hook`` precomputes the whole hour's tests in one pass -
  replicating the scalar RNG consumption draw for draw, then
  evaluating all link states as one flat numpy batch (per-element
  link parameters) and the hour's TCP transfers as one batch laid
  out by shared bottleneck link, through the bit-exact vector twins
  in :mod:`repro.shard.vectcp`.
* **Region-sharded executor** (:mod:`repro.shard.executor`): lanes are
  partitioned across shards (regions kept together), each shard runs
  its own engine, and the per-shard event streams are merged on the
  ``(hour, lane, seq)`` total order (:mod:`repro.shard.merge`) and
  replayed through the unchanged observer stack.

Entry points: :func:`run_sharded`, or ``Clasp.run_campaign(shards=...,
batch=...)``, or ``repro campaign --shards N --batch`` on the CLI.
"""

from .batch import BatchLaneExecutor, BatchPlanner, batch_executor_factory
from .executor import (ShardBatchLaneExecutor, ShardLaneExecutor,
                       ShardReport, UploadSyncObserver, partition_lanes,
                       run_sharded)
from .merge import (RecordingStepper, ShardRecorder, StampedEvent,
                    merge_streams, replay_events)
from .vectcp import (batch_flows_for_rtt, batch_loss_rate,
                     batch_mean_utilization, batch_mean_utilization_grid,
                     batch_multiflow_throughput_mbps, batch_observe,
                     batch_pftk_throughput_mbps, batch_queue_delay_ms,
                     batch_residual_mbps, batch_utilization,
                     batch_weekend_mask)

__all__ = [
    "BatchLaneExecutor",
    "BatchPlanner",
    "RecordingStepper",
    "ShardBatchLaneExecutor",
    "ShardLaneExecutor",
    "ShardRecorder",
    "ShardReport",
    "StampedEvent",
    "UploadSyncObserver",
    "batch_executor_factory",
    "batch_flows_for_rtt",
    "batch_loss_rate",
    "batch_mean_utilization",
    "batch_mean_utilization_grid",
    "batch_multiflow_throughput_mbps",
    "batch_observe",
    "batch_pftk_throughput_mbps",
    "batch_queue_delay_ms",
    "batch_residual_mbps",
    "batch_utilization",
    "batch_weekend_mask",
    "merge_streams",
    "partition_lanes",
    "replay_events",
    "run_sharded",
]
