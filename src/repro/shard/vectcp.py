"""Vectorized twins of the scalar hot-path math.

Every function here reproduces its scalar counterpart *bit for bit*:
the numpy expressions use the same operations in the same association
order, and only IEEE-754 correctly-rounded primitives (``+ - * /``,
``sqrt``, ``min``/``max``, ``rint``, ``abs``, ``fmod``) plus libm
``cos`` - which numpy and :mod:`math` both delegate to the platform
libm, elementwise-identical (the oracle tests in
``tests/test_shard.py`` assert 0-ULP drift over dense grids).

Twinned scalar sources:

* :func:`repro.netsim.tcp.pftk_throughput_mbps` /
  :func:`~repro.netsim.tcp.multiflow_throughput_mbps`
* :meth:`repro.netsim.linkstate.LinkStateEvaluator.residual_mbps` /
  ``loss_rate`` / ``queue_delay_ms`` / ``observe``
* :meth:`repro.netsim.traffic.DiurnalProfile.mean_utilization` and
  :meth:`repro.netsim.traffic.UtilizationModel.utilization`
* :meth:`repro.speedtest.protocol.SpeedTestConfig.flows_for_rtt`

Known exact-equivalence subtleties, all handled here:

* Python ``%`` on positive floats equals ``np.fmod`` (not ``np.mod``).
* ``int(x // HOUR)`` on non-negative floats equals
  ``np.floor_divide(...).astype(int64)``.
* ``is_weekend`` goes through ``datetime`` microsecond rounding, so it
  is vectorized only when a batch's timestamps provably share one
  local day (with a one-second safety margin); otherwise it falls back
  to per-element scalar calls.
* Powers appear in multiplication form (``u*u``), matching the scalar
  code, because ``**`` routes through libm ``pow``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import ValidationError
from ..netsim.linkstate import (LinkStateEvaluator, _CONTESTED_SHARE,
                                _FLOOR_LOSS, _LOSS_AT_CAPACITY, _LOSS_ONSET,
                                _QUEUE_BASE_MS, _QUEUE_CAP_MS, _SUBONSET_COEF)
from ..netsim.tcp import DEFAULT_RWND_BYTES, _MIN_LOSS, _RTO_MIN_S
from ..netsim.topology import Link, LinkKind
from ..netsim.traffic import DiurnalProfile, UtilizationModel
from ..simclock import is_weekend
from ..speedtest.protocol import SpeedTestConfig
from ..units import DAY, HOUR, MSS_BYTES, bytes_per_sec_to_mbps, ms_to_s

__all__ = [
    "batch_flows_for_rtt",
    "batch_loss_rate",
    "batch_mean_utilization",
    "batch_mean_utilization_grid",
    "batch_multiflow_throughput_mbps",
    "batch_observe",
    "batch_pftk_throughput_mbps",
    "batch_queue_delay_ms",
    "batch_residual_mbps",
    "batch_utilization",
    "batch_weekend_mask",
]

#: Seconds of slack kept from a local-day boundary before trusting the
#: day-uniformity shortcut for the weekend factor; datetime rounds to
#: microseconds, so one full second is an enormous safety margin.
_DAY_EDGE_MARGIN_S = 1.0


# ----------------------------------------------------------------------
# TCP model


def batch_pftk_throughput_mbps(rtt_ms: np.ndarray, loss_rate: np.ndarray,
                               mss_bytes: int = MSS_BYTES,
                               rwnd_bytes: int = DEFAULT_RWND_BYTES
                               ) -> np.ndarray:
    """Vector twin of :func:`repro.netsim.tcp.pftk_throughput_mbps`."""
    rtt_ms = np.asarray(rtt_ms, dtype=np.float64)
    p = np.asarray(loss_rate, dtype=np.float64)
    if np.any(rtt_ms <= 0):
        raise ValidationError("rtt must be positive in every element")
    if np.any((p < 0) | (p >= 1)):
        raise ValidationError("loss_rate must be in [0, 1) in every element")
    rtt_s = ms_to_s(rtt_ms)
    window_limit_bytes_per_s = rwnd_bytes / rtt_s
    b = 2.0
    t0 = np.maximum(_RTO_MIN_S, 4.0 * rtt_s)
    with np.errstate(divide="ignore"):
        denom = (rtt_s * np.sqrt(2.0 * b * p / 3.0)
                 + t0 * np.minimum(1.0, 3.0 * np.sqrt(3.0 * b * p / 8.0))
                 * p * (1.0 + 32.0 * p * p))
        segments_per_s = 1.0 / denom
    rate_bytes = np.minimum(window_limit_bytes_per_s,
                            segments_per_s * mss_bytes)
    return np.where(p < _MIN_LOSS,
                    bytes_per_sec_to_mbps(window_limit_bytes_per_s),
                    bytes_per_sec_to_mbps(rate_bytes))


def batch_multiflow_throughput_mbps(rtt_ms: np.ndarray,
                                    loss_rate: np.ndarray,
                                    n_flows: np.ndarray,
                                    path_avail_mbps: np.ndarray,
                                    mss_bytes: int = MSS_BYTES,
                                    rwnd_bytes: int = DEFAULT_RWND_BYTES
                                    ) -> np.ndarray:
    """Vector twin of :func:`repro.netsim.tcp.multiflow_throughput_mbps`."""
    n_flows = np.asarray(n_flows, dtype=np.int64)
    path_avail_mbps = np.asarray(path_avail_mbps, dtype=np.float64)
    if np.any(n_flows < 1):
        raise ValidationError("n_flows must be >= 1 in every element")
    if np.any(path_avail_mbps < 0):
        raise ValidationError("path_avail_mbps must be >= 0 in every element")
    per_flow = batch_pftk_throughput_mbps(rtt_ms, loss_rate,
                                          mss_bytes, rwnd_bytes)
    return np.minimum(per_flow * n_flows, path_avail_mbps)


def batch_flows_for_rtt(config: SpeedTestConfig,
                        rtt_ms: np.ndarray) -> np.ndarray:
    """Vector twin of :meth:`SpeedTestConfig.flows_for_rtt` (int64)."""
    rtt_ms = np.asarray(rtt_ms, dtype=np.float64)
    if np.any(rtt_ms <= 0):
        raise ValidationError("rtt must be positive in every element")
    scale = np.maximum(1.0, rtt_ms / config.flow_scale_rtt_ms)
    flows = np.rint(config.n_flows * scale).astype(np.int64)
    return np.minimum(config.max_flows, flows)


# ----------------------------------------------------------------------
# link state


def batch_residual_mbps(capacity_mbps,
                        utilization: np.ndarray) -> np.ndarray:
    """Vector twin of :meth:`LinkStateEvaluator.residual_mbps`.

    *capacity_mbps* may be a scalar (one link) or an array aligned with
    *utilization* (a mixed-link flat batch); broadcasting is elementwise
    so both shapes produce bit-identical per-element results.
    """
    if np.any(np.asarray(capacity_mbps) <= 0):
        raise ValidationError(f"capacity must be positive: {capacity_mbps}")
    if np.any(utilization < 0):
        raise ValidationError("utilization must be >= 0 in every element")
    free = capacity_mbps * (1.0 - utilization)
    over = np.maximum(1.0, utilization)
    contested = capacity_mbps * _CONTESTED_SHARE / (over * over)
    return np.maximum(free, contested)


def batch_loss_rate(utilization: np.ndarray,
                    kind: Optional[LinkKind] = None, *,
                    floor=None) -> np.ndarray:
    """Vector twin of :meth:`LinkStateEvaluator.loss_rate`.

    Pass *kind* for a single-link batch, or ``floor=`` (scalar or
    per-element array of ``_FLOOR_LOSS[kind]`` values) for a flat batch
    spanning links of different kinds.
    """
    if np.any(utilization < 0):
        raise ValidationError("utilization must be >= 0 in every element")
    if kind is not None:
        floor = _FLOOR_LOSS[kind]
    if floor is None:
        raise ValidationError("batch_loss_rate needs a kind or a floor")
    u = utilization
    u_sq = u * u
    burst = _SUBONSET_COEF * (u_sq * u_sq)
    out = floor + burst
    mid = (u > _LOSS_ONSET) & (u <= 1.0)
    if np.any(mid):
        ramp = (u[mid] - _LOSS_ONSET) / (1.0 - _LOSS_ONSET)
        out[mid] = out[mid] + _LOSS_AT_CAPACITY * ramp * ramp
    over = u > 1.0
    if np.any(over):
        overflow = (u[over] - 1.0) / u[over]
        out[over] = np.minimum(0.9, out[over] + _LOSS_AT_CAPACITY + overflow)
    return out


def batch_queue_delay_ms(utilization: np.ndarray,
                         kind: Optional[LinkKind] = None, *,
                         base=None, cap=None) -> np.ndarray:
    """Vector twin of :meth:`LinkStateEvaluator.queue_delay_ms`.

    Pass *kind* for a single-link batch, or ``base=``/``cap=`` (scalar
    or per-element arrays of the per-kind queue constants) for a flat
    mixed-link batch.
    """
    if np.any(utilization < 0):
        raise ValidationError("utilization must be >= 0 in every element")
    if kind is not None:
        base = _QUEUE_BASE_MS[kind]
        cap = _QUEUE_CAP_MS[kind]
    if base is None or cap is None:
        raise ValidationError("batch_queue_delay_ms needs a kind or "
                              "base and cap")
    u = np.minimum(utilization, 0.995)
    mm1 = base * u / (1.0 - u)
    return np.where(utilization >= 1.0, cap, np.minimum(cap, mm1))


# ----------------------------------------------------------------------
# traffic model


def batch_mean_utilization(profile: DiurnalProfile,
                           ts: np.ndarray) -> np.ndarray:
    """Vector twin of :meth:`DiurnalProfile.mean_utilization`.

    The weekend factor is applied with one scalar :func:`is_weekend`
    call when every timestamp provably falls on the same local day
    (with a one-second margin from the day edges, covering datetime's
    microsecond rounding); otherwise each element falls back to the
    scalar call, so the datetime-based day boundary always agrees.
    """
    ts = np.asarray(ts, dtype=np.float64)
    local = np.fmod(ts / HOUR + profile.utc_offset_hours, 24.0)
    bump_sum = np.zeros(ts.shape)
    for bump in profile.bumps:
        delta = np.abs(local - bump.center_hour)
        delta = np.minimum(delta, 24.0 - delta)
        inside = delta < bump.width_hours
        value = np.zeros(ts.shape)
        if np.any(inside):
            d = delta[inside]
            value[inside] = (bump.amplitude * 0.5
                             * (1.0 + np.cos(math.pi * d / bump.width_hours)))
        bump_sum = bump_sum + value
    load = profile.base + bump_sum

    shift_s = profile.utc_offset_hours * HOUR
    lo = float(np.min(ts)) + shift_s
    hi = float(np.max(ts)) + shift_s
    day = math.floor(lo / DAY)
    same_day = (day == math.floor(hi / DAY)
                and lo - day * DAY > _DAY_EDGE_MARGIN_S
                and (day + 1) * DAY - hi > _DAY_EDGE_MARGIN_S)
    if same_day:
        if is_weekend(float(np.min(ts)), profile.utc_offset_hours):
            load = load * profile.weekend_factor
    else:
        weekend = np.fromiter(
            (is_weekend(float(t), profile.utc_offset_hours) for t in ts),
            dtype=bool, count=ts.shape[0])
        load = np.where(weekend, load * profile.weekend_factor, load)
    return np.maximum(0.0, load)


def batch_weekend_mask(ts: np.ndarray,
                       utc_offset_hours: np.ndarray) -> np.ndarray:
    """Per-element :func:`repro.simclock.is_weekend` over mixed offsets.

    For each distinct UTC offset the same-day shortcut of
    :func:`batch_mean_utilization` applies (one scalar call when all of
    that offset's timestamps provably share a local day, with the
    one-second margin covering datetime's microsecond rounding);
    otherwise those elements fall back to scalar calls.
    """
    ts = np.asarray(ts, dtype=np.float64)
    utc_offset_hours = np.asarray(utc_offset_hours, dtype=np.float64)
    weekend = np.zeros(ts.shape, dtype=bool)
    for offset in np.unique(utc_offset_hours):
        mask = utc_offset_hours == offset
        shifted = ts[mask] + offset * HOUR
        lo = float(np.min(shifted))
        hi = float(np.max(shifted))
        day = math.floor(lo / DAY)
        same_day = (day == math.floor(hi / DAY)
                    and lo - day * DAY > _DAY_EDGE_MARGIN_S
                    and (day + 1) * DAY - hi > _DAY_EDGE_MARGIN_S)
        if same_day:
            weekend[mask] = is_weekend(float(np.min(ts[mask])),
                                       float(offset))
        else:
            subset = ts[mask]
            weekend[mask] = np.fromiter(
                (is_weekend(float(t), float(offset)) for t in subset),
                dtype=bool, count=subset.shape[0])
    return weekend


def batch_mean_utilization_grid(ts: np.ndarray, base: np.ndarray,
                                weekend_factor: np.ndarray,
                                utc_offset_hours: np.ndarray,
                                bump_center: np.ndarray,
                                bump_width: np.ndarray,
                                bump_amplitude: np.ndarray) -> np.ndarray:
    """Flat-batch twin of :meth:`DiurnalProfile.mean_utilization`.

    Unlike :func:`batch_mean_utilization` (one profile, many times),
    every element here carries its own profile parameters, so one call
    evaluates a whole hour's worth of *different* links.  Bump columns
    are padded (``amplitude 0, width 1``): a padded slot contributes an
    exact ``+0.0``, which leaves the running sum bit-identical to the
    scalar ``sum()`` over that profile's real bumps.
    """
    ts = np.asarray(ts, dtype=np.float64)
    local = np.fmod(ts / HOUR + utc_offset_hours, 24.0)
    bump_sum = np.zeros(ts.shape)
    for j in range(bump_center.shape[1]):
        delta = np.abs(local - bump_center[:, j])
        delta = np.minimum(delta, 24.0 - delta)
        width = bump_width[:, j]
        inside = delta < width
        value = np.zeros(ts.shape)
        if np.any(inside):
            d = delta[inside]
            value[inside] = (bump_amplitude[inside, j] * 0.5
                             * (1.0 + np.cos(math.pi * d / width[inside])))
        bump_sum = bump_sum + value
    load = base + bump_sum
    weekend = batch_weekend_mask(ts, utc_offset_hours)
    load = np.where(weekend, load * weekend_factor, load)
    return np.maximum(0.0, load)


def batch_utilization(model: UtilizationModel, link_id: int, direction: int,
                      ts: np.ndarray) -> np.ndarray:
    """Vector twin of :meth:`UtilizationModel.utilization`."""
    profile = model.profile(link_id, direction)
    mean = batch_mean_utilization(profile, ts)
    if profile.noise_sigma <= 0:
        return mean
    hour_idx = (np.floor_divide(ts - model.origin_ts, HOUR)
                .astype(np.int64) % UtilizationModel.NOISE_HOURS)
    noise = model.noise_array(link_id, direction)[hour_idx]
    return np.maximum(0.0, mean + noise)


def batch_observe(evaluator: LinkStateEvaluator, link: Link, direction: int,
                  ts: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vector twin of :meth:`LinkStateEvaluator.observe`.

    Returns ``(utilization, residual_mbps, loss_rate, queue_delay_ms)``
    arrays aligned with *ts*.  The flap hook is hour-granular (see
    :meth:`repro.faults.FaultInjector.link_flap_utilization`), so it is
    consulted once per distinct hour in the batch and its floor is
    broadcast to that hour's elements - exactly what per-element scalar
    calls would decide.
    """
    ts = np.asarray(ts, dtype=np.float64)
    u = batch_utilization(evaluator.utilization_model, link.link_id,
                          direction, ts)
    hook = evaluator.flap_hook
    if hook is not None:
        hours = np.floor_divide(ts, HOUR)
        for hour in np.unique(hours):
            in_hour = hours == hour
            floor = hook(link.link_id, direction, float(ts[in_hour][0]))
            if floor is not None:
                u[in_hour] = np.maximum(u[in_hour], floor)
    residual = batch_residual_mbps(link.capacity_mbps, u)
    loss = batch_loss_rate(u, link.kind)
    queue = batch_queue_delay_ms(u, link.kind)
    return u, residual, loss, queue


#: Optional floor returned by the flap hook (re-exported for typing).
FlapFloor = Optional[float]
