"""tcpdump-style flow capture and RTT/loss estimation.

The paper captured packet headers with ``tcpdump`` during each speed
test and later (on the analysis VM) identified the HTTP transactions
inside the encrypted traffic, then estimated round-trip latency and
packet loss from the TCP flows.  We reproduce that pipeline: a capture
produces per-connection :class:`TcpFlow` records with packet,
retransmission, and RTT-sample counts derived from the path state the
test actually experienced, and the estimators recover RTT/loss from
those records (with realistic estimator noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.pathmodel import PathMetrics
from ..rng import SeedTree
from ..units import MSS_BYTES
from ..errors import ValidationError

__all__ = ["TcpFlow", "FlowCapture", "estimate_rtt_ms", "estimate_loss_rate"]


@dataclass(frozen=True)
class TcpFlow:
    """One captured TCP connection's header-derived statistics."""

    flow_index: int
    direction: str            # "download" | "upload"
    packets: int
    retransmissions: int
    bytes: float
    rtt_samples_ms: Tuple[float, ...]
    duration_s: float

    @property
    def retransmission_rate(self) -> float:
        if self.packets == 0:
            return 0.0
        return self.retransmissions / self.packets


class FlowCapture:
    """Turns a test's path state into captured per-flow statistics."""

    def __init__(self, seeds: Optional[SeedTree] = None,
                 rtt_samples_per_flow: int = 12) -> None:
        if rtt_samples_per_flow < 1:
            raise ValidationError("need at least one RTT sample per flow")
        self._rng = (seeds or SeedTree(0)).generator("flow-capture")
        self.rtt_samples_per_flow = rtt_samples_per_flow

    def capture(self, metrics: PathMetrics, total_bytes: float,
                duration_s: float, n_flows: int,
                direction: str) -> List[TcpFlow]:
        """Synthesize the flows tcpdump would have captured."""
        if n_flows < 1:
            raise ValidationError(f"n_flows must be >= 1, got {n_flows}")
        if total_bytes < 0 or duration_s <= 0:
            raise ValidationError("bytes must be >= 0 and duration positive")
        # Parallel connections do not split bytes exactly evenly.
        shares = self._rng.dirichlet(np.full(n_flows, 8.0))
        flows: List[TcpFlow] = []
        for i in range(n_flows):
            flow_bytes = total_bytes * float(shares[i])
            packets = max(1, int(round(flow_bytes / MSS_BYTES)))
            retx = int(self._rng.binomial(packets,
                                          min(0.95,
                                              metrics.measured_loss_rate)))
            jitter = self._rng.exponential(
                max(0.05, metrics.rtt_ms * 0.03),
                size=self.rtt_samples_per_flow)
            samples = tuple(float(metrics.rtt_ms + j) for j in jitter)
            flows.append(TcpFlow(
                flow_index=i,
                direction=direction,
                packets=packets,
                retransmissions=retx,
                bytes=flow_bytes,
                rtt_samples_ms=samples,
                duration_s=duration_s,
            ))
        return flows


def estimate_rtt_ms(flows: Sequence[TcpFlow]) -> float:
    """Analysis-VM RTT estimate: median of per-flow minimum samples.

    Minimum-filtering per flow removes queueing spikes the way
    tcptrace-style analysis does; the median across flows resists a
    single weird connection.
    """
    if not flows:
        raise ValidationError("cannot estimate RTT from zero flows")
    mins = [min(f.rtt_samples_ms) for f in flows if f.rtt_samples_ms]
    if not mins:
        raise ValidationError("flows carry no RTT samples")
    return float(np.median(mins))


def estimate_loss_rate(flows: Sequence[TcpFlow]) -> float:
    """Analysis-VM loss estimate: aggregate retransmission rate.

    Retransmissions slightly overestimate loss (spurious retransmits),
    which is faithful to header-based estimation.
    """
    if not flows:
        raise ValidationError("cannot estimate loss from zero flows")
    packets = sum(f.packets for f in flows)
    retx = sum(f.retransmissions for f in flows)
    if packets == 0:
        return 0.0
    return retx / packets
