"""Prefix-to-AS mapping (CAIDA Routeviews pfx2as analog).

The dataset maps announced prefixes to origin ASNs via longest-prefix
match.  It is built from what networks *announce* (their address
blocks and per-PoP more-specifics), so - exactly like the real dataset
- an interdomain link interface numbered out of the other network's
space maps to the *address owner*, not the router operator.  That gap
is what bdrmap exists to close.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..netsim.addressing import Prefix, PrefixTrie
from ..netsim.topology import Topology
from ..errors import ValidationError

__all__ = ["Prefix2AS", "build_prefix2as"]


class Prefix2AS:
    """Longest-prefix-match dataset: IP -> origin ASN."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[int] = PrefixTrie()

    def add(self, prefix: Prefix, asn: int) -> None:
        """Register an announced prefix."""
        if asn <= 0:
            raise ValidationError(f"ASN must be positive, got {asn}")
        self._trie.insert(prefix, asn)

    def lookup(self, ip: int) -> Optional[int]:
        """Origin ASN of the most-specific covering prefix, or None."""
        return self._trie.lookup(ip)

    def lookup_prefix(self, ip: int) -> Optional[Tuple[Prefix, int]]:
        """(prefix, ASN) of the most-specific match, or None."""
        return self._trie.longest_match(ip)

    def prefixes(self) -> Iterator[Tuple[Prefix, int]]:
        """Iterate all (prefix, origin ASN) entries."""
        return self._trie.items()

    def routed_prefixes(self) -> List[Tuple[Prefix, int]]:
        """All entries as a list, sorted for deterministic iteration."""
        return sorted(self.prefixes(),
                      key=lambda item: (item[0].network, item[0].length))

    def __len__(self) -> int:
        return len(self._trie)


def build_prefix2as(topology: Topology) -> Prefix2AS:
    """Build the dataset from every AS's announced prefixes."""
    dataset = Prefix2AS()
    for asn, as_obj in topology.ases.items():
        for prefix in as_obj.prefixes:
            dataset.add(prefix, asn)
    return dataset
