"""Traceroute serialization (scamper "warts" analog, JSON-lines).

The measurement VMs dump their hourly paris-traceroutes to compressed
files that get shipped to the bucket alongside the pcaps; the analysis
VM parses them back.  scamper's binary warts format is overkill here -
we keep the same role with one JSON object per traceroute, which also
makes the exports greppable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Iterator, Union

from ..errors import MeasurementError
from .traceroute import Hop, Traceroute

__all__ = ["dumps", "loads", "dump_file", "load_file"]

_FORMAT = "repro-warts-1"


def dumps(trace: Traceroute) -> str:
    """One traceroute as a single JSON line."""
    return json.dumps({
        "format": _FORMAT,
        "src": trace.src_ip,
        "dst": trace.dst_ip,
        "ts": trace.ts,
        "flow_id": trace.flow_id,
        "reached": trace.reached,
        "hops": [
            [hop.ttl, hop.ip, hop.rtt_ms] for hop in trace.hops
        ],
    }, separators=(",", ":"))


def loads(line: str) -> Traceroute:
    """Parse one JSON line back into a :class:`Traceroute`."""
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as err:
        raise MeasurementError(f"malformed warts line: {err}") from None
    if raw.get("format") != _FORMAT:
        raise MeasurementError(
            f"unknown warts format {raw.get('format')!r}")
    hops = tuple(
        Hop(ttl=int(ttl),
            ip=None if ip is None else int(ip),
            rtt_ms=None if rtt is None else float(rtt))
        for ttl, ip, rtt in raw["hops"])
    return Traceroute(
        src_ip=int(raw["src"]), dst_ip=int(raw["dst"]),
        ts=float(raw["ts"]), flow_id=int(raw["flow_id"]),
        hops=hops, reached=bool(raw["reached"]))


def dump_file(traces: Iterable[Traceroute],
              path: Union[str, pathlib.Path]) -> int:
    """Write traces as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for trace in traces:
            handle.write(dumps(trace))
            handle.write("\n")
            count += 1
    return count


def load_file(path: Union[str, pathlib.Path]) -> Iterator[Traceroute]:
    """Iterate traces from a JSON-lines file."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield loads(line)
