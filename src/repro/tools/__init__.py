"""Measurement tooling: the instruments CLASP runs on and around VMs.

Re-implementations, against the simulator's abstractions, of the tools
the paper used: CAIDA's prefix-to-AS dataset, scamper's
paris-traceroute, bdrmap border inference, tcpdump-style flow capture
with RTT/loss estimation, someta run metadata, an ipinfo-style
business-type database, and Speedchecker edge latency probes.
"""

from .prefix2as import Prefix2AS, build_prefix2as
from .traceroute import Hop, Scamper, Traceroute
from .bdrmap import Bdrmap, BdrmapResult, InferredLink
from .flows import FlowCapture, TcpFlow, estimate_loss_rate, estimate_rtt_ms
from .someta import SometaRecorder, SystemSnapshot
from .ipinfo import BusinessType, IpInfoDatabase
from .speedchecker import LatencySample, Speedchecker, TupleMedian

__all__ = [
    "Prefix2AS", "build_prefix2as",
    "Hop", "Scamper", "Traceroute",
    "Bdrmap", "BdrmapResult", "InferredLink",
    "FlowCapture", "TcpFlow", "estimate_loss_rate", "estimate_rtt_ms",
    "SometaRecorder", "SystemSnapshot",
    "BusinessType", "IpInfoDatabase",
    "LatencySample", "Speedchecker", "TupleMedian",
]
