"""Speedchecker-style edge latency probing.

The differential-based selection starts from a preliminary study: from
vantage points (VPs) in thousands of <city, AS> tuples, measure latency
to cloud VMs reachable over the premium and the standard network tier,
keep tuples with >100 samples, and compare the per-tuple medians.  Our
VPs are software agents in access-ISP PoPs with a per-VP last-mile
latency offset; probes are timestamped across several simulated days so
diurnal queueing is represented in the medians.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cloud.api import CloudPlatform, Direction
from ..errors import NoRouteError, ValidationError
from ..rng import SeedTree
from ..simclock import CAMPAIGN_START
from ..units import DAY

__all__ = ["VantagePoint", "LatencySample", "TupleMedian", "Speedchecker"]


@dataclass(frozen=True)
class VantagePoint:
    """One edge agent: a host in a <city, AS> tuple."""

    asn: int
    city_key: str
    pop_id: int
    last_mile_ms: float


@dataclass(frozen=True)
class LatencySample:
    """A single probe result."""

    asn: int
    city_key: str
    region: str
    tier: enum.Enum
    rtt_ms: float
    ts: float


@dataclass(frozen=True)
class TupleMedian:
    """Aggregated latency for one <city, AS, region, tier> tuple."""

    asn: int
    city_key: str
    region: str
    tier: enum.Enum
    median_rtt_ms: float
    n_samples: int


class Speedchecker:
    """Edge probing platform bound to the simulated cloud."""

    def __init__(self, platform: CloudPlatform,
                 seeds: Optional[SeedTree] = None,
                 max_vps: int = 400) -> None:
        if max_vps < 1:
            raise ValidationError(f"max_vps must be >= 1, got {max_vps}")
        self.platform = platform
        self._seeds = seeds or SeedTree(0)
        self._rng = self._seeds.generator("speedchecker")
        self.max_vps = max_vps
        self._vps: Optional[List[VantagePoint]] = None

    # ------------------------------------------------------------------

    def vantage_points(self) -> List[VantagePoint]:
        """Enumerate (and cache) the platform's agent population."""
        if self._vps is not None:
            return self._vps
        topo = self.platform.topology
        candidates: List[Tuple[int, str, int]] = []
        for asn in self.platform.internet.access_isp_asns:
            for pop in topo.pops_of_as(asn):
                if pop.is_host:
                    continue
                candidates.append((asn, pop.city_key, pop.pop_id))
        candidates.sort()
        if len(candidates) > self.max_vps:
            idx = self._rng.choice(len(candidates), size=self.max_vps,
                                   replace=False)
            candidates = [candidates[int(i)] for i in sorted(idx)]
        self._vps = [
            VantagePoint(asn=asn, city_key=city, pop_id=pop_id,
                         last_mile_ms=float(self._rng.uniform(2.0, 18.0)))
            for asn, city, pop_id in candidates
        ]
        return self._vps

    # ------------------------------------------------------------------

    def probe(self, vp: VantagePoint, vm, ts: float) -> Optional[float]:
        """One RTT probe from a VP to a VM; None when unreachable."""
        try:
            fwd = self.platform.route(vm, vp.pop_id, Direction.INGRESS)
            rev = self.platform.route(vm, vp.pop_id, Direction.EGRESS)
        except NoRouteError:
            return None
        metrics = self.platform.path_model.evaluate(fwd, ts, rev)
        jitter = float(self._rng.exponential(0.8))
        return metrics.rtt_ms + 2.0 * vp.last_mile_ms + jitter

    def measure(self, region_names: Sequence[str],
                samples_per_tuple: int = 120,
                start_ts: float = CAMPAIGN_START,
                span_days: int = 5,
                min_samples: int = 100,
                tiers: Optional[Sequence[enum.Enum]] = None,
                name_prefix: str = "speedchecker") -> List[TupleMedian]:
        """Run the preliminary latency study.

        Creates one VM per (region, tier) - on GCP that is the premium
        + standard pair - probes every VP *samples_per_tuple* times at
        hours spread over *span_days*, and returns the per-tuple
        medians with at least *min_samples* (some probes fail to route
        or time out).  *tiers* restricts the study to a subset of the
        provider's tiers (the cross-cloud provider-choice study probes
        one tier per provider); *name_prefix* keeps a second study on
        the same platform from colliding with the first one's VM names.
        """
        study_tiers = tuple(tiers if tiers is not None
                            else self.platform.provider.tiers)
        probe_mtype = self.platform.provider.probe_machine_type
        vps = self.vantage_points()
        out: List[TupleMedian] = []
        for region in region_names:
            vms = {}
            for tier in study_tiers:
                vms[tier] = self.platform.create_vm(
                    region, probe_mtype, tier, start_ts,
                    name=f"{name_prefix}-{region}-{tier.value}")
            try:
                for vp in vps:
                    probe_times = (start_ts + self._rng.uniform(
                        0, span_days * DAY, size=samples_per_tuple))
                    for tier in study_tiers:
                        samples: List[float] = []
                        for ts in probe_times:
                            # ~4% of probes are lost at the edge.
                            if self._rng.random() < 0.04:
                                continue
                            rtt = self.probe(vp, vms[tier], float(ts))
                            if rtt is not None:
                                samples.append(rtt)
                        if len(samples) < min_samples:
                            continue
                        out.append(TupleMedian(
                            asn=vp.asn, city_key=vp.city_key, region=region,
                            tier=tier,
                            median_rtt_ms=float(np.median(samples)),
                            n_samples=len(samples)))
            finally:
                for tier in study_tiers:
                    self.platform.terminate_vm(vms[tier].name,
                                               start_ts + span_days * DAY)
        return out
