"""someta-style measurement metadata recording.

``someta`` (Sommers et al., IMC 2017) records host state alongside
active measurements so analyses can rule out the vantage point itself
as the bottleneck.  The paper used it to confirm the chosen VM types
had enough CPU to drive the speed tests.  The recorder snapshots CPU,
memory, and load around each test and flags tests where the host was
too busy to be trusted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


from ..cloud.vm import VirtualMachine
from ..rng import SeedTree
from ..errors import ValidationError

__all__ = ["SystemSnapshot", "SometaRecorder"]

#: CPU utilization above which a measurement is flagged as potentially
#: host-limited (matching the paper's "without depleting the CPU"
#: check).
CPU_SUSPECT_THRESHOLD = 0.90


@dataclass(frozen=True)
class SystemSnapshot:
    """Host state captured around one measurement."""

    ts: float
    vm_name: str
    cpu_utilization: float
    memory_used_gb: float
    load_1min: float
    test_server_id: Optional[str] = None

    @property
    def cpu_suspect(self) -> bool:
        """True when the host may have limited the measurement."""
        return self.cpu_utilization >= CPU_SUSPECT_THRESHOLD


class SometaRecorder:
    """Collects :class:`SystemSnapshot` records for one VM."""

    def __init__(self, vm: VirtualMachine,
                 seeds: Optional[SeedTree] = None) -> None:
        self.vm = vm
        self._rng = (seeds or SeedTree(0)).generator(f"someta-{vm.name}")
        self._snapshots: List[SystemSnapshot] = []

    def record(self, ts: float, test_cpu_utilization: float,
               test_server_id: Optional[str] = None) -> SystemSnapshot:
        """Snapshot host state during a test.

        *test_cpu_utilization* is the CPU the test itself consumed;
        background daemons add a small noisy baseline on top.
        """
        if not 0 <= test_cpu_utilization <= 1:
            raise ValidationError(
                f"cpu utilization must be in [0, 1], got {test_cpu_utilization}")
        background = float(abs(self._rng.normal(0.03, 0.015)))
        cpu = min(1.0, test_cpu_utilization + background)
        memory = (1.1 + 0.4 * cpu) * self.vm.machine_type.memory_gb / 7.5
        load = cpu * self.vm.machine_type.vcpus + float(
            abs(self._rng.normal(0.05, 0.03)))
        snap = SystemSnapshot(
            ts=ts,
            vm_name=self.vm.name,
            cpu_utilization=cpu,
            memory_used_gb=memory,
            load_1min=load,
            test_server_id=test_server_id,
        )
        self._snapshots.append(snap)
        return snap

    @property
    def snapshots(self) -> List[SystemSnapshot]:
        return list(self._snapshots)

    def suspect_fraction(self) -> float:
        """Fraction of recorded tests flagged as host-limited."""
        if not self._snapshots:
            return 0.0
        suspect = sum(1 for s in self._snapshots if s.cpu_suspect)
        return suspect / len(self._snapshots)
