"""ipinfo.io-style IP metadata: organisation and business type.

The paper's appendix resolves test server IPs through ipinfo.io's
company data to label them ISP / Hosting / Business / Education, with
an "Unknown" bucket where the database has no category.  Our database
derives labels from the owning AS's registered type but drops a
realistic fraction of answers, so analyses must cope with Unknown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..netsim.asn import ASType
from ..netsim.topology import Topology
from ..rng import SeedTree, stable_hash64
from .prefix2as import Prefix2AS
from ..errors import ValidationError

__all__ = ["BusinessType", "IpInfoRecord", "IpInfoDatabase"]


class BusinessType(enum.Enum):
    """The business categories the paper's Fig. 8 uses."""

    ISP = "isp"
    HOSTING = "hosting"
    BUSINESS = "business"
    EDUCATION = "education"
    UNKNOWN = "unknown"


_AS_TYPE_TO_BUSINESS = {
    ASType.TIER1: BusinessType.ISP,
    ASType.TRANSIT: BusinessType.ISP,
    ASType.ACCESS_ISP: BusinessType.ISP,
    ASType.HOSTING: BusinessType.HOSTING,
    ASType.BUSINESS: BusinessType.BUSINESS,
    ASType.EDUCATION: BusinessType.EDUCATION,
    ASType.CLOUD: BusinessType.HOSTING,
    ASType.CDN: BusinessType.HOSTING,
}


@dataclass(frozen=True)
class IpInfoRecord:
    """One lookup result."""

    ip: int
    asn: Optional[int]
    org: Optional[str]
    business_type: BusinessType


class IpInfoDatabase:
    """IP -> (ASN, org, business type) lookups with coverage gaps.

    ``unknown_rate`` is the probability the company database has no
    category for a given AS (deterministic per AS, so all IPs of one
    organisation agree).
    """

    def __init__(self, topology: Topology, prefix2as: Prefix2AS,
                 unknown_rate: float = 0.07,
                 seeds: Optional[SeedTree] = None) -> None:
        if not 0 <= unknown_rate < 1:
            raise ValidationError(
                f"unknown_rate must be in [0, 1), got {unknown_rate}")
        self._topo = topology
        self._p2a = prefix2as
        self.unknown_rate = unknown_rate
        self._seed = (seeds or SeedTree(0)).seed("ipinfo")
        self._unknown_cache: Dict[int, bool] = {}

    def _is_unknown(self, asn: int) -> bool:
        cached = self._unknown_cache.get(asn)
        if cached is None:
            h = stable_hash64(f"ipinfo-unknown:{self._seed}:{asn}")
            cached = (h % 10_000) < int(self.unknown_rate * 10_000)
            self._unknown_cache[asn] = cached
        return cached

    def lookup(self, ip: int) -> IpInfoRecord:
        """Resolve one address; never raises for unknown space."""
        asn = self._p2a.lookup(ip)
        if asn is None:
            return IpInfoRecord(ip=ip, asn=None, org=None,
                                business_type=BusinessType.UNKNOWN)
        as_obj = self._topo.ases.get(asn)
        if as_obj is None or self._is_unknown(asn):
            return IpInfoRecord(ip=ip, asn=asn,
                                org=as_obj.org if as_obj else None,
                                business_type=BusinessType.UNKNOWN)
        return IpInfoRecord(
            ip=ip, asn=asn, org=as_obj.org,
            business_type=_AS_TYPE_TO_BUSINESS[as_obj.as_type])

    def business_type(self, ip: int) -> BusinessType:
        return self.lookup(ip).business_type
