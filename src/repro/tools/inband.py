"""In-band bottleneck localization (FlowTrace-style, future work §5).

The paper's future work proposes injecting measurement probes into the
throughput flows (FlowTrace / ELF) to locate the bottleneck link and
cut test duration.  This module implements the idea against the
simulator: TTL-limited probe trains ride along the measurement flow,
and the per-hop one-way delay *increase* relative to a quiet baseline
exposes where the queue is building - the bottleneck hop.

The localizer is an inference tool: it only consumes per-hop RTT
samples that a real in-band train would observe (propagation +
current queueing + jitter), never the link-state internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import MeasurementError
from ..netsim.linkstate import LinkStateEvaluator
from ..netsim.routing import Route
from ..netsim.topology import Topology
from ..rng import SeedTree

__all__ = ["HopDelaySample", "BottleneckEstimate", "InbandProbe"]


@dataclass(frozen=True)
class HopDelaySample:
    """Cumulative one-way delay observed up to hop *index*."""

    hop_index: int
    link_id: int
    delay_ms: float


@dataclass(frozen=True)
class BottleneckEstimate:
    """Where the queueing concentrates along a path."""

    link_id: int
    hop_index: int
    queue_ms: float
    #: per-hop queueing estimates (ms), aligned with the route's links
    per_hop_queue_ms: Tuple[float, ...]

    @property
    def confident(self) -> bool:
        """True when one hop clearly dominates the queueing."""
        total = sum(self.per_hop_queue_ms)
        return total > 0.5 and self.queue_ms >= 0.5 * total


class InbandProbe:
    """TTL-limited probe trains inside a measurement flow."""

    def __init__(self, topology: Topology, evaluator: LinkStateEvaluator,
                 seeds: Optional[SeedTree] = None,
                 jitter_ms: float = 0.15) -> None:
        if jitter_ms < 0:
            raise MeasurementError("jitter must be >= 0")
        self._topo = topology
        self._eval = evaluator
        self._rng = (seeds or SeedTree(0)).generator("inband-probe")
        self.jitter_ms = jitter_ms

    def sample_path(self, route: Route, ts: float,
                    trains: int = 4) -> List[List[HopDelaySample]]:
        """Observe cumulative per-hop delays with *trains* probe trains."""
        if trains < 1:
            raise MeasurementError(f"trains must be >= 1, got {trains}")
        out: List[List[HopDelaySample]] = []
        for _ in range(trains):
            cumulative = 0.0
            samples: List[HopDelaySample] = []
            for idx, (link_id, direction) in enumerate(route.links):
                link = self._topo.link(link_id)
                obs = self._eval.observe(link, direction, ts)
                cumulative += link.delay_ms + obs.queue_delay_ms
                noisy = cumulative + float(
                    self._rng.exponential(self.jitter_ms))
                samples.append(HopDelaySample(
                    hop_index=idx, link_id=link_id, delay_ms=noisy))
            out.append(samples)
        return out

    def baseline_path(self, route: Route) -> List[float]:
        """Quiet-hour cumulative propagation delays per hop."""
        cumulative = 0.0
        out = []
        for link_id, _direction in route.links:
            cumulative += self._topo.link(link_id).delay_ms
            out.append(cumulative)
        return out

    def locate_bottleneck(self, route: Route, ts: float,
                          trains: int = 4) -> BottleneckEstimate:
        """Find the hop where queueing concentrates.

        Per hop, the queueing estimate is the *minimum* over trains of
        (observed cumulative delay - baseline), differenced along the
        path; min-filtering strips the probe jitter the way real
        train-based tools do.
        """
        if not route.links:
            raise MeasurementError("cannot probe an empty route")
        trains_samples = self.sample_path(route, ts, trains)
        baseline = self.baseline_path(route)
        n = len(route.links)
        min_excess = np.full(n, np.inf)
        for samples in trains_samples:
            for sample in samples:
                excess = sample.delay_ms - baseline[sample.hop_index]
                min_excess[sample.hop_index] = min(
                    min_excess[sample.hop_index], max(0.0, excess))
        per_hop = np.diff(np.concatenate([[0.0], min_excess]))
        per_hop = np.maximum(per_hop, 0.0)
        best = int(np.argmax(per_hop))
        return BottleneckEstimate(
            link_id=route.links[best][0],
            hop_index=best,
            queue_ms=float(per_hop[best]),
            per_hop_queue_ms=tuple(float(v) for v in per_hop),
        )
