"""Scamper-style paris-traceroute.

Renders a routed path as the hop list a traceroute would show: each
hop is the *ingress* interface of the receiving router (or its
loopback when the link is unnumbered), with cumulative RTTs including
queueing at probe time.  Paris-traceroute semantics: the flow
identifier is held constant, so per-flow ECMP decisions are stable
within one trace, and varying ``flow_id`` across traces exposes
parallel links - which is how bdrmap enumerates LAG members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


from .. import obs
from ..netsim.addressing import format_ip
from ..netsim.linkstate import LinkStateEvaluator
from ..netsim.routing import GraphMode, Route, Router, TierPolicy
from ..netsim.topology import Topology
from ..rng import SeedTree
from ..errors import ValidationError

__all__ = ["Hop", "Traceroute", "Scamper"]


@dataclass(frozen=True)
class Hop:
    """One traceroute hop.  ``ip`` is None for a non-responding hop."""

    ttl: int
    ip: Optional[int]
    rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        return self.ip is not None

    def __repr__(self) -> str:
        if self.ip is None:
            return f"Hop({self.ttl}, *)"
        return f"Hop({self.ttl}, {format_ip(self.ip)}, {self.rtt_ms:.1f}ms)"


@dataclass(frozen=True)
class Traceroute:
    """A completed trace: source/destination plus the hop list."""

    src_ip: int
    dst_ip: int
    ts: float
    flow_id: int
    hops: Tuple[Hop, ...]
    reached: bool

    def responding_ips(self) -> List[int]:
        return [h.ip for h in self.hops if h.ip is not None]

    def hop_ips(self) -> List[Optional[int]]:
        return [h.ip for h in self.hops]

    @property
    def rtt_ms(self) -> Optional[float]:
        """RTT to the destination, when it was reached."""
        if not self.reached or not self.hops:
            return None
        return self.hops[-1].rtt_ms


class Scamper:
    """Traceroute engine bound to a topology + routing engine.

    A small per-router non-response probability models ICMP rate
    limiting and filtered routers.  The destination host always
    responds (speed test servers are live web servers).
    """

    def __init__(self, topology: Topology, router: Router,
                 evaluator: Optional[LinkStateEvaluator] = None,
                 seeds: Optional[SeedTree] = None,
                 no_response_rate: float = 0.02) -> None:
        if not 0 <= no_response_rate < 1:
            raise ValidationError(
                f"no_response_rate must be in [0, 1), got {no_response_rate}")
        self._topo = topology
        self._router = router
        self._eval = evaluator
        self._rng = (seeds or SeedTree(0)).generator("scamper")
        self.no_response_rate = no_response_rate

    # ------------------------------------------------------------------

    def trace_route(self, route: Route, ts: float,
                    dst_ip: Optional[int] = None,
                    flow_id: int = 0) -> Traceroute:
        """Render an already computed route as a traceroute.

        *dst_ip* is the probed destination address: the final hop is
        the destination itself replying from that address (a probed
        host replies from the probed IP, not from a router interface).
        When omitted, the destination PoP's loopback stands in.
        """
        topo = self._topo
        src_pop = topo.pop(route.src_pop)
        target_ip = (dst_ip if dst_ip is not None
                     else topo.pop(route.dst_pop).loopback_ip)
        hops: List[Hop] = []
        cumulative_oneway = 0.0
        reached_target = False
        for idx, (link_id, direction) in enumerate(route.links):
            link = topo.link(link_id)
            receiver_pop_id = route.pops[idx + 1]
            iface = link.interface_at(receiver_pop_id)
            ip = iface.ip if iface is not None else topo.pop(receiver_pop_id).loopback_ip
            cumulative_oneway += link.delay_ms
            if self._eval is not None:
                link_state = self._eval.observe(link, direction, ts)
                cumulative_oneway += link_state.queue_delay_ms
            # The destination itself always answers; routers may not.
            is_target = ip == target_ip
            responds = is_target or self._rng.random() >= self.no_response_rate
            if responds:
                rtt = 2.0 * cumulative_oneway + float(self._rng.exponential(0.4))
                hops.append(Hop(idx + 1, ip, rtt))
            else:
                hops.append(Hop(idx + 1, None, None))
            reached_target = reached_target or is_target
        if not reached_target:
            # The probed address lives behind the final router (a host
            # in the announced prefix): one more hop, one more reply.
            last_mile = float(self._rng.uniform(0.1, 0.8))
            rtt = 2.0 * (cumulative_oneway + last_mile) + float(
                self._rng.exponential(0.4))
            hops.append(Hop(len(route.links) + 1, target_ip, rtt))
        obs.inc("tools.traceroute.traces")
        obs.observe("tools.traceroute.hops", len(hops))
        return Traceroute(
            src_ip=src_pop.loopback_ip,
            dst_ip=target_ip,
            ts=ts,
            flow_id=flow_id,
            hops=tuple(hops),
            reached=True,
        )

    def trace(self, src_pop_id: int, dst_pop_id: int, ts: float,
              mode: GraphMode = GraphMode.FULL,
              first_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
              last_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
              flow_id: int = 0,
              dst_ip: Optional[int] = None) -> Traceroute:
        """Compute the route and render the trace in one call."""
        route = self._router.route(src_pop_id, dst_pop_id, mode=mode,
                                   first_as_policy=first_as_policy,
                                   last_as_policy=last_as_policy,
                                   flow_id=flow_id)
        return self.trace_route(route, ts, dst_ip=dst_ip, flow_id=flow_id)

    def trace_to_ip(self, src_pop_id: int, dst_ip: int, ts: float,
                    mode: GraphMode = GraphMode.FULL,
                    first_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
                    last_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
                    flow_id: int = 0) -> Optional[Traceroute]:
        """Probe an IP address, resolving where the probe lands.

        Returns ``None`` for unrouted addresses (no covering prefix).
        """
        dst_pop = self._topo.resolve_ip_to_pop(dst_ip)
        if dst_pop is None:
            return None
        return self.trace(src_pop_id, dst_pop.pop_id, ts, mode=mode,
                          first_as_policy=first_as_policy,
                          last_as_policy=last_as_policy,
                          flow_id=flow_id, dst_ip=dst_ip)
