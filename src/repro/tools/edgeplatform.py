"""Host-based edge measurement platform (RIPE-Atlas-style).

The paper's motivation: edge platforms like RIPE Atlas or Ark have
vantage points whose coverage "depends on the network and location" of
volunteer hosts, and they "do not support or heavily restrict
throughput measurements using quota systems" to protect access links.
This module models exactly such a platform over the same synthetic
Internet, so the motivation becomes a measurable comparison (see
``benchmarks/bench_motivation_edge_platform.py``):

* probes live in volunteer hosts, concentrated in large ISPs / metros,
* latency measurements are unrestricted,
* throughput measurements consume a per-probe daily quota and are
  capped by the probe's (often slow) access link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


from ..errors import MeasurementError
from ..netsim.generator import GeneratedInternet
from ..rng import SeedTree
from ..units import DAY

__all__ = ["EdgeProbe", "QuotaExceeded", "EdgePlatform"]


class QuotaExceeded(MeasurementError):
    """The probe's daily throughput-measurement quota is spent."""


@dataclass
class EdgeProbe:
    """One volunteer vantage point."""

    probe_id: int
    asn: int
    city_key: str
    pop_id: int
    access_mbps: float
    #: Throughput tests allowed per probe per day (Atlas-like quota).
    daily_quota: int = 2
    _spent: Dict[int, int] = field(default_factory=dict)

    def charge_throughput_test(self, ts: float) -> None:
        day = int(ts // DAY)
        used = self._spent.get(day, 0)
        if used >= self.daily_quota:
            raise QuotaExceeded(
                f"probe {self.probe_id} exhausted its "
                f"{self.daily_quota} tests for day {day}")
        self._spent[day] = used + 1


class EdgePlatform:
    """A population of volunteer probes with quota-limited throughput."""

    def __init__(self, internet: GeneratedInternet,
                 n_probes: int = 300,
                 seeds: Optional[SeedTree] = None,
                 bias_to_big_isps: float = 0.75) -> None:
        if n_probes < 1:
            raise MeasurementError("need at least one probe")
        if not 0 <= bias_to_big_isps <= 1:
            raise MeasurementError("bias must be in [0, 1]")
        self.internet = internet
        rng = (seeds or SeedTree(0)).generator("edge-platform")
        topo = internet.topology

        big = set(internet.big_isp_asns)
        big_pops: List[Tuple[int, str, int]] = []
        other_pops: List[Tuple[int, str, int]] = []
        for asn in internet.access_isp_asns:
            for pop in topo.pops_of_as(asn):
                if pop.is_host:
                    continue
                entry = (asn, pop.city_key, pop.pop_id)
                (big_pops if asn in big else other_pops).append(entry)
        big_pops.sort()
        other_pops.sort()

        self.probes: List[EdgeProbe] = []
        for i in range(n_probes):
            use_big = big_pops and (not other_pops
                                    or rng.random() < bias_to_big_isps)
            pool = big_pops if use_big else other_pops
            asn, city, pop_id = pool[int(rng.integers(len(pool)))]
            # Volunteer access links: mostly residential speeds.
            access = float(rng.choice([25.0, 50.0, 100.0, 300.0, 1000.0],
                                      p=[0.15, 0.25, 0.35, 0.18, 0.07]))
            self.probes.append(EdgeProbe(
                probe_id=i + 1, asn=asn, city_key=city, pop_id=pop_id,
                access_mbps=access))

    # ------------------------------------------------------------------
    # coverage metrics (the motivation comparison)

    def covered_asns(self) -> Set[int]:
        return {p.asn for p in self.probes}

    def coverage_of(self, asns: Sequence[int]) -> float:
        """Fraction of *asns* that host at least one probe."""
        if not asns:
            return 0.0
        covered = self.covered_asns()
        return sum(1 for a in asns if a in covered) / len(asns)

    def big_isp_probe_fraction(self) -> float:
        big = set(self.internet.big_isp_asns)
        return sum(1 for p in self.probes if p.asn in big) \
            / len(self.probes)

    # ------------------------------------------------------------------
    # measurements

    def measure_throughput(self, probe: EdgeProbe, ts: float,
                           path_capacity_mbps: float) -> float:
        """A quota-charged throughput test, capped by the access link.

        Raises :class:`QuotaExceeded` once the probe's daily budget is
        spent - the reason the paper measured from the cloud instead.
        """
        probe.charge_throughput_test(ts)
        return min(probe.access_mbps, path_capacity_mbps)

    def max_daily_tests(self) -> int:
        """Total platform-wide throughput tests available per day."""
        return sum(p.daily_quota for p in self.probes)
