"""bdrmap-style border inference.

Infers the interdomain links between the vantage point's network (the
cloud) and its neighbors from traceroute evidence, the prefix-to-AS
dataset, and alias resolution - *not* from simulator ground truth.

The central ambiguity bdrmap resolves: the interdomain /30 is usually
numbered from one side's address space (for cloud peering, usually the
cloud's), so the far-side router's ingress interface can map to the
cloud in prefix-to-AS even though the router belongs to the neighbor.
We resolve router ownership the way alias-resolution-driven inference
does: an alias set usually recovers the router ID (loopback), which is
numbered from the operator's space; when it does not, we fall back to
a majority vote over the aliases' origin ASNs, which occasionally gets
a border off by one hop, just like the real tool chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..errors import ValidationError
from ..netsim.addressing import format_ip
from ..netsim.routing import GraphMode, TierPolicy
from ..netsim.topology import Topology
from ..rng import SeedTree
from .prefix2as import Prefix2AS
from .traceroute import Scamper, Traceroute

__all__ = ["AliasResolver", "InferredLink", "BdrmapResult", "Bdrmap"]


class AliasResolver:
    """MIDAR-style alias resolution against the simulated routers.

    Resolution is imperfect: each non-queried interface of the router
    is recovered with probability ``1 - miss_rate``; the router ID
    (loopback) is recovered with probability ``1 - loopback_miss_rate``.
    Results are deterministic per queried IP.
    """

    def __init__(self, topology: Topology,
                 miss_rate: float = 0.10,
                 loopback_miss_rate: float = 0.12,
                 seeds: Optional[SeedTree] = None) -> None:
        for name, value in (("miss_rate", miss_rate),
                            ("loopback_miss_rate", loopback_miss_rate)):
            if not 0 <= value < 1:
                raise ValidationError(f"{name} must be in [0, 1), got {value}")
        self._topo = topology
        self.miss_rate = miss_rate
        self.loopback_miss_rate = loopback_miss_rate
        # Re-rooting at the derived seed keeps per-ip streams identical
        # to the historical `seed ^ stable_hash64(label)` derivation.
        self._rng_tree = SeedTree((seeds or SeedTree(0)).seed("alias-resolver"))
        self._cache: Dict[int, FrozenSet[int]] = {}

    def resolve(self, ip: int) -> FrozenSet[int]:
        """Return the recovered alias set of *ip* (always contains it)."""
        cached = self._cache.get(ip)
        if cached is not None:
            return cached
        truth = self._topo.aliases_of(ip)
        if not truth:
            result = frozenset({ip})
            self._cache[ip] = result
            return result
        iface = self._topo.interface_by_ip(ip)
        loopback = (self._topo.pop(iface.pop_id).loopback_ip
                    if iface is not None else None)
        rng = self._rng_tree.generator(f"alias:{ip}")
        kept: Set[int] = {ip}
        for alias in sorted(truth):
            if alias == ip:
                continue
            rate = (self.loopback_miss_rate if alias == loopback
                    else self.miss_rate)
            if rng.random() >= rate:
                kept.add(alias)
        result = frozenset(kept)
        self._cache[ip] = result
        return result


@dataclass
class InferredLink:
    """One inferred border link of the VP network."""

    far_ip: int
    near_ip: Optional[int]
    neighbor_asn: int
    n_traces: int = 1
    #: True when the far side was identified through alias evidence
    #: (interdomain subnet numbered from VP space).
    via_alias: bool = False

    def __repr__(self) -> str:
        return (f"InferredLink(far={format_ip(self.far_ip)}, "
                f"AS{self.neighbor_asn}, n={self.n_traces})")


@dataclass
class BdrmapResult:
    """The inferred border map of the VP network."""

    vp_asn: int
    links: Dict[int, InferredLink] = field(default_factory=dict)  # far_ip ->
    #: far_ip -> full alias set of the far-side router (for matching
    #: traceroute hops against borders "and their aliases").
    far_aliases: Dict[int, FrozenSet[int]] = field(default_factory=dict)

    def far_ips(self) -> Set[int]:
        return set(self.links)

    def neighbors(self) -> Set[int]:
        return {l.neighbor_asn for l in self.links.values()}

    def links_of_neighbor(self, asn: int) -> List[InferredLink]:
        return [l for l in self.links.values() if l.neighbor_asn == asn]

    def match_hop(self, ip: int) -> Optional[int]:
        """Map a traceroute hop to a known far-side IP (via aliases)."""
        if ip in self.links:
            return ip
        for far_ip, aliases in self.far_aliases.items():
            if ip in aliases:
                return far_ip
        return None

    def build_hop_index(self) -> Dict[int, int]:
        """alias IP -> far-side IP index for bulk matching."""
        index: Dict[int, int] = {}
        for far_ip, aliases in self.far_aliases.items():
            for alias in aliases:
                index.setdefault(alias, far_ip)
        for far_ip in self.links:
            index[far_ip] = far_ip
        return index

    def __len__(self) -> int:
        return len(self.links)


class Bdrmap:
    """Runs the probing + inference pipeline from one vantage point."""

    def __init__(self, topology: Topology, scamper: Scamper,
                 prefix2as: Prefix2AS, vp_asn: int,
                 alias_resolver: Optional[AliasResolver] = None) -> None:
        self._topo = topology
        self._scamper = scamper
        self._p2a = prefix2as
        self.vp_asn = vp_asn
        self._aliases = alias_resolver or AliasResolver(topology)

    # ------------------------------------------------------------------
    # probing

    def probe_targets(self) -> List[Tuple[int, int]]:
        """(probe address, destination PoP) per routed foreign prefix.

        Mirrors real bdrmap probing one random address inside every
        routed prefix of the BGP table.
        """
        targets: List[Tuple[int, int]] = []
        for prefix, pop_id in self._topo.announced_prefixes():
            pop = self._topo.pop(pop_id)
            if pop.asn == self.vp_asn:
                continue
            probe_ip = prefix.network + (1 if prefix.length < 32 else 0)
            targets.append((probe_ip, pop_id))
        return targets

    def collect_traces(self, src_pop_id: int, ts: float,
                       targets: Optional[Sequence[Tuple[int, int]]] = None,
                       flow_ids: Sequence[int] = (0, 1, 2),
                       mode: GraphMode = GraphMode.FULL,
                       first_as_policy: TierPolicy = TierPolicy.COLD_POTATO,
                       ) -> List[Traceroute]:
        """Traceroute every target with several paris flow IDs.

        Varying the flow ID across traces walks the ECMP hash over
        parallel border links, which is how LAG members are enumerated.
        """
        from ..errors import NoRouteError
        if targets is None:
            targets = self.probe_targets()
        traces: List[Traceroute] = []
        for probe_ip, dst_pop in targets:
            for flow_id in flow_ids:
                # Real ECMP hashes the 5-tuple: destination address and
                # source port both move the flow across LAG members.
                wire_flow = (flow_id << 20) ^ (probe_ip & 0xFFFFF)
                try:
                    traces.append(self._scamper.trace(
                        src_pop_id, dst_pop, ts, mode=mode,
                        first_as_policy=first_as_policy, flow_id=wire_flow,
                        dst_ip=probe_ip))
                except NoRouteError:
                    break
        return traces

    # ------------------------------------------------------------------
    # inference

    def _foreign_alias_evidence(self, ip: int,
                                hint_asn: int) -> Optional[int]:
        """Foreign owner of *ip*'s router, per alias evidence, or None.

        This is the alias test that moves a border one hop closer to
        the VP: a hop whose address maps to the VP but whose router has
        own-space aliases (loopback, its other interfaces) in a foreign
        AS's space is a foreign border router, its ingress interface
        merely being numbered from the VP's /30.  A true VP border
        router never carries foreign addresses when the VP numbers its
        interconnects from its own space.

        The owner is the majority foreign ASN among the aliases, with
        the trace-context *hint* breaking ties - routers carry
        third-party addresses (their own customer links numbered from
        the customer's space), the classic bdrmap ambiguity.
        """
        owners: Dict[int, int] = {}
        for alias in self._aliases.resolve(ip):
            if alias == ip:
                continue
            asn = self._p2a.lookup(alias)
            if asn is not None and asn != self.vp_asn:
                owners[asn] = owners.get(asn, 0) + 1
        if not owners:
            return None
        return max(owners, key=lambda a: (owners[a], a == hint_asn, -a))

    def infer(self, traces: Iterable[Traceroute]) -> BdrmapResult:
        """Infer the VP network's border links from traces."""
        result = BdrmapResult(vp_asn=self.vp_asn)
        for trace in traces:
            inferred = self._infer_one(trace)
            if inferred is None:
                continue
            far_ip, near_ip, neighbor, via_alias = inferred
            existing = result.links.get(far_ip)
            if existing is None:
                result.links[far_ip] = InferredLink(
                    far_ip=far_ip, near_ip=near_ip, neighbor_asn=neighbor,
                    n_traces=1, via_alias=via_alias)
                result.far_aliases[far_ip] = self._aliases.resolve(far_ip)
            else:
                existing.n_traces += 1
        return result

    def _infer_one(self, trace: Traceroute
                   ) -> Optional[Tuple[int, Optional[int], int, bool]]:
        """(far_ip, near_ip, neighbor_asn, via_alias) or None."""
        hops = trace.responding_ips()
        if len(hops) < 2:
            return None
        first_foreign = None
        for idx, ip in enumerate(hops):
            asn = self._p2a.lookup(ip)
            if asn is not None and asn != self.vp_asn:
                first_foreign = idx
                break
        if first_foreign is None or first_foreign == 0:
            # Either the whole visible path maps to the VP (border is
            # hidden behind non-responding hops) or the trace starts
            # outside the VP; neither yields a confident border.
            return None
        j = first_foreign
        foreign_asn = self._p2a.lookup(hops[j])
        assert foreign_asn is not None
        prev_ip = hops[j - 1]
        owner = self._foreign_alias_evidence(prev_ip, foreign_asn)
        if owner is not None:
            # VP-numbered interconnect: the previous hop is the far
            # side (the neighbor's ingress interface in VP space).
            near_ip = hops[j - 2] if j >= 2 else None
            return prev_ip, near_ip, owner, True
        if hops[j] == trace.dst_ip:
            # The only foreign evidence is the probed destination
            # itself: the border sits somewhere among the VP-mapped
            # hops but cannot be placed confidently.  Real bdrmap
            # refuses to call a destination address a router interface.
            return None
        # Neighbor-numbered interconnect (or alias evidence missed):
        # the first foreign hop is the far side itself.
        return hops[j], prev_ip, foreign_asn, False

    def run(self, src_pop_id: int, ts: float,
            targets: Optional[Sequence[Tuple[int, int]]] = None,
            flow_ids: Sequence[int] = (0, 1, 2, 3, 4, 5)) -> BdrmapResult:
        """Probe + infer in one call (the paper's "pilot scan")."""
        with obs.span("tools.bdrmap.run", layer="tools",
                      sim_ts=ts) as sp:
            traces = self.collect_traces(src_pop_id, ts, targets=targets,
                                         flow_ids=flow_ids)
            result = self.infer(traces)
            sp.annotate(n_traces=len(traces), n_links=len(result))
        obs.inc("tools.bdrmap.runs")
        return result
