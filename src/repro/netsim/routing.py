"""Policy routing: valley-free AS paths and router-level expansion.

AS-level routing follows the Gao-Rexford export rules:

* an AS exports its own and customer routes to everyone,
* it exports peer/provider routes only to its customers,

which yields the classic preference order *customer > peer > provider*
with shortest-AS-path tie-breaking.  Routes are computed by a three-phase
BFS from the destination and cached per (destination, graph-mode).

Two graph modes model the cloud provider's network service tiers:

* ``full`` - the real adjacency, including the cloud's rich
  settlement-free peering edge (premium tier uses this),
* ``standard`` - the cloud keeps only its transit providers, so paths
  to/from the cloud traverse the public transit core (standard tier).

Router-level expansion turns an AS path into a concrete PoP/link path.
Potato policy decides *where* to cross each interdomain boundary:
hot-potato hands traffic off at the interconnection closest to where it
currently is (the public-Internet default), cold-potato carries it on
the current AS's backbone to the interconnection closest to the final
destination (what the premium tier's private WAN does).
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import NoRouteError, RoutingError, TopologyError
from ..rng import stable_hash64
from .topology import InterdomainLink, Link, LinkKind, Topology

__all__ = ["GraphMode", "TierPolicy", "Route", "Router"]


class GraphMode(enum.Enum):
    """Which AS adjacency the path computation sees."""

    FULL = "full"
    STANDARD = "standard"


class TierPolicy(enum.Enum):
    """Potato policy applied inside the *first* AS of the path."""

    HOT_POTATO = "hot"
    COLD_POTATO = "cold"


# Route preference classes, lower is better.
_CLS_SELF = 0
_CLS_CUSTOMER = 1
_CLS_PEER = 2
_CLS_PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """A fully expanded forwarding path.

    ``links`` holds ``(link_id, direction)`` pairs where direction 0
    means the flow traverses the link from ``pop_a`` to ``pop_b``.
    ``pops`` has exactly ``len(links) + 1`` entries.
    """

    as_path: Tuple[int, ...]
    pops: Tuple[int, ...]
    links: Tuple[Tuple[int, int], ...]
    mode: GraphMode = GraphMode.FULL
    #: Ground-truth interdomain records crossed, in order.
    border_crossings: Tuple[InterdomainLink, ...] = ()

    def __post_init__(self) -> None:
        if len(self.pops) != len(self.links) + 1:
            raise RoutingError("route pops/links length mismatch")

    @property
    def src_pop(self) -> int:
        return self.pops[0]

    @property
    def dst_pop(self) -> int:
        return self.pops[-1]

    def propagation_delay_ms(self, topology: Topology) -> float:
        """One-way propagation delay along the route."""
        return sum(topology.link(lid).delay_ms for lid, _d in self.links)

    def first_border(self) -> Optional[InterdomainLink]:
        """The first interdomain link crossed, if any."""
        return self.border_crossings[0] if self.border_crossings else None

    def last_border(self) -> Optional[InterdomainLink]:
        return self.border_crossings[-1] if self.border_crossings else None


class Router:
    """Routing engine bound to one :class:`Topology`.

    The name mirrors its role ("the thing that computes routes"); it is
    exported from :mod:`repro.netsim` as ``RoutingEngine``.
    """

    def __init__(self, topology: Topology,
                 cloud_asn: Optional[int] = None) -> None:
        self._topo = topology
        self._cloud_asn = cloud_asn
        # dst -> mode -> {asn: (cls, dist, next_hop)}
        self._rib_cache: Dict[Tuple[int, GraphMode], Dict[int, Tuple[int, int, int]]] = {}
        # (asn, src_pop) -> {dst_pop: (prev_pop, link_id)}
        self._intra_cache: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
        self._adj_full = self._build_adjacency(GraphMode.FULL)
        self._adj_std = self._build_adjacency(GraphMode.STANDARD)

    # ------------------------------------------------------------------
    # AS-level

    def _build_adjacency(self, mode: GraphMode) -> Dict[str, Dict[int, Set[int]]]:
        """Precompute providers/customers/peers maps for a graph mode."""
        topo = self._topo
        providers: Dict[int, Set[int]] = {asn: set() for asn in topo.ases}
        customers: Dict[int, Set[int]] = {asn: set() for asn in topo.ases}
        peers: Dict[int, Set[int]] = {asn: set() for asn in topo.ases}
        for asn in topo.ases:
            providers[asn] = set(topo.providers_of(asn))
            customers[asn] = set(topo.customers_of(asn))
            peers[asn] = set(topo.peers_of(asn))
        if mode is GraphMode.STANDARD and self._cloud_asn is not None:
            cloud = self._cloud_asn
            # Drop the cloud's settlement-free peering edge entirely: in
            # the standard tier its prefixes are reachable (and its
            # egress flows) only via its transit providers.
            for peer in peers[cloud]:
                peers[peer].discard(cloud)
            peers[cloud] = set()
            for cust in customers[cloud]:
                providers[cust].discard(cloud)
            customers[cloud] = set()
        return {"providers": providers, "customers": customers, "peers": peers}

    def _adjacency(self, mode: GraphMode) -> Dict[str, Dict[int, Set[int]]]:
        return self._adj_full if mode is GraphMode.FULL else self._adj_std

    def _routes_to(self, dst_asn: int,
                   mode: GraphMode) -> Dict[int, Tuple[int, int, int]]:
        """Best route of every AS toward *dst_asn*: (class, length, next hop)."""
        key = (dst_asn, mode)
        cached = self._rib_cache.get(key)
        if cached is not None:
            return cached
        if dst_asn not in self._topo.ases:
            raise TopologyError(f"unknown destination ASN {dst_asn}")
        adj = self._adjacency(mode)
        providers = adj["providers"]
        customers = adj["customers"]
        peers = adj["peers"]

        best: Dict[int, Tuple[int, int, int]] = {dst_asn: (_CLS_SELF, 0, dst_asn)}

        # Phase 1: customer routes climb customer->provider edges from dst.
        frontier = deque([dst_asn])
        while frontier:
            asn = frontier.popleft()
            cls, dist, _nh = best[asn]
            for prov in providers[asn]:
                cand = (_CLS_CUSTOMER, dist + 1, asn)
                cur = best.get(prov)
                if cur is None or _better(cand, cur):
                    best[prov] = cand
                    frontier.append(prov)

        # Phase 2: one peer edge on top of a customer route (or dst itself).
        customer_holders = [(asn, rec) for asn, rec in best.items()
                            if rec[0] in (_CLS_SELF, _CLS_CUSTOMER)]
        for asn, (cls, dist, _nh) in customer_holders:
            for peer in peers[asn]:
                cand = (_CLS_PEER, dist + 1, asn)
                cur = best.get(peer)
                if cur is None or _better(cand, cur):
                    best[peer] = cand

        # Phase 3: provider routes descend provider->customer edges.
        # Dijkstra-like expansion ordered by (class, length) so shorter
        # provider routes win deterministically.
        heap: List[Tuple[int, int, int, int]] = []
        for asn, (cls, dist, nh) in best.items():
            heapq.heappush(heap, (cls, dist, asn, nh))
        settled: Set[int] = set()
        while heap:
            cls, dist, asn, nh = heapq.heappop(heap)
            if asn in settled:
                continue
            cur = best.get(asn)
            if cur is not None and (cls, dist, nh) != cur:
                # A better record already replaced this heap entry.
                if _better(cur, (cls, dist, nh)):
                    continue
            settled.add(asn)
            for cust in customers[asn]:
                cand = (_CLS_PROVIDER, dist + 1, asn)
                cur_c = best.get(cust)
                if cur_c is None or _better(cand, cur_c):
                    best[cust] = cand
                    heapq.heappush(heap, (cand[0], cand[1], cust, asn))

        self._rib_cache[key] = best
        return best

    def as_path(self, src_asn: int, dst_asn: int,
                mode: GraphMode = GraphMode.FULL) -> Tuple[int, ...]:
        """Valley-free AS path from *src_asn* to *dst_asn*.

        Raises :class:`NoRouteError` when policy forbids all paths.
        """
        if src_asn == dst_asn:
            return (src_asn,)
        rib = self._routes_to(dst_asn, mode)
        if src_asn not in rib:
            raise NoRouteError(src_asn, dst_asn)
        path = [src_asn]
        cursor = src_asn
        seen = {src_asn}
        while cursor != dst_asn:
            _cls, _dist, nxt = rib[cursor]
            if nxt in seen:
                raise RoutingError(
                    f"routing loop toward AS{dst_asn} at AS{nxt}")
            path.append(nxt)
            seen.add(nxt)
            cursor = nxt
        return tuple(path)

    def reachable_from(self, src_asn: int,
                       mode: GraphMode = GraphMode.FULL) -> Set[int]:
        """All ASes *src_asn* can reach under policy (including itself)."""
        out = set()
        for dst in self._topo.ases:
            if dst == src_asn:
                out.add(dst)
                continue
            try:
                self.as_path(src_asn, dst, mode)
            except NoRouteError:
                continue
            out.add(dst)
        return out

    # ------------------------------------------------------------------
    # intra-AS shortest paths over backbone links

    def _intra_table(self, asn: int, src_pop: int) -> Dict[int, Tuple[int, int]]:
        """Dijkstra predecessor table inside one AS from *src_pop*."""
        key = (asn, src_pop)
        cached = self._intra_cache.get(key)
        if cached is not None:
            return cached
        topo = self._topo
        dist: Dict[int, float] = {src_pop: 0.0}
        prev: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, int]] = [(0.0, src_pop)]
        visited: Set[int] = set()
        while heap:
            d, pop_id = heapq.heappop(heap)
            if pop_id in visited:
                continue
            visited.add(pop_id)
            for link in topo.links_of_pop(pop_id):
                if link.kind is LinkKind.INTERDOMAIN:
                    continue
                other = link.other_pop(pop_id)
                if topo.pop(other).asn != asn:
                    continue
                # Host attachments are leaves: never transit through one.
                if topo.pop(pop_id).is_host and pop_id != src_pop:
                    continue
                nd = d + link.delay_ms
                if nd < dist.get(other, float("inf")):
                    dist[other] = nd
                    prev[other] = (pop_id, link.link_id)
                    heapq.heappush(heap, (nd, other))
        self._intra_cache[key] = prev
        return prev

    def _intra_path(self, asn: int, src_pop: int,
                    dst_pop: int) -> Tuple[List[int], List[Tuple[int, int]]]:
        """PoP and link sequence from src to dst inside *asn*."""
        if src_pop == dst_pop:
            return [src_pop], []
        prev = self._intra_table(asn, src_pop)
        if dst_pop not in prev:
            raise NoRouteError(src_pop, dst_pop)
        pops_rev = [dst_pop]
        links_rev: List[Tuple[int, int]] = []
        cursor = dst_pop
        while cursor != src_pop:
            parent, link_id = prev[cursor]
            link = self._topo.link(link_id)
            links_rev.append((link_id, link.direction_from(parent)))
            pops_rev.append(parent)
            cursor = parent
        pops_rev.reverse()
        links_rev.reverse()
        return pops_rev, links_rev

    # ------------------------------------------------------------------
    # interdomain link choice & full expansion

    def _border_candidates(self, from_asn: int,
                           to_asn: int) -> List[Tuple[InterdomainLink, Link, int, int]]:
        """(record, link, near_pop, far_pop) for each border link a->b."""
        out = []
        for record in self._topo.interdomain_between(from_asn, to_asn):
            link = self._topo.link(record.link_id)
            pop_a_asn = self._topo.pop(link.pop_a).asn
            if pop_a_asn == from_asn:
                near, far = link.pop_a, link.pop_b
            else:
                near, far = link.pop_b, link.pop_a
            if self._topo.pop(near).asn != from_asn or \
               self._topo.pop(far).asn != to_asn:
                continue
            out.append((record, link, near, far))
        return out

    def _pop_distance_km(self, pop_a: int, pop_b: int) -> float:
        topo = self._topo
        city_a = topo.city_of_pop(pop_a)
        city_b = topo.city_of_pop(pop_b)
        return city_a.point.distance_km(city_b.point)

    def _choose_border(self, candidates: List[Tuple[InterdomainLink, Link, int, int]],
                       anchor_pop: int,
                       flow_key: int) -> Tuple[InterdomainLink, Link, int, int]:
        """Pick the border link closest to *anchor_pop*.

        Parallel links at (essentially) the same distance are load
        balanced by a stable hash of the flow key, modelling ECMP over
        LAG members / parallel peering sessions.  Paris-traceroute keeps
        the flow key constant, so a given flow always sees one member.
        """
        scored = sorted(
            ((self._pop_distance_km(c[2], anchor_pop), c[0].link_id, c)
             for c in candidates),
            key=lambda item: (item[0], item[1]))
        best_distance = scored[0][0]
        ties = [c for dist, _lid, c in scored if dist <= best_distance + 1.0]
        if len(ties) == 1:
            return ties[0]
        idx = stable_hash64(
            f"ecmp:{flow_key}:{ties[0][0].link_id}:{len(ties)}") % len(ties)
        return ties[idx]

    def expand(self, as_path: Sequence[int], src_pop: int, dst_pop: int,
               first_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
               last_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
               mode: GraphMode = GraphMode.FULL,
               flow_id: int = 0) -> Route:
        """Expand an AS path into a concrete PoP/link route.

        *first_as_policy* governs the exit choice out of the first AS:
        cold-potato carries traffic on the first AS's backbone to the
        border nearest the destination (premium-tier egress).
        *last_as_policy* governs the crossing *into* the final AS:
        cold-potato models a transit delivering standard-tier traffic
        at the interconnection nearest the destination region, because
        standard-tier prefixes are only announced there.  Every other
        hand-off is hot-potato, as on the public Internet.

        *flow_id* feeds the ECMP hash, so different transport flows
        between the same endpoints may ride different parallel border
        links while one flow's path stays stable (paris-traceroute).
        """
        topo = self._topo
        if topo.pop(src_pop).asn != as_path[0]:
            raise RoutingError("src_pop is not in the first AS of as_path")
        if topo.pop(dst_pop).asn != as_path[-1]:
            raise RoutingError("dst_pop is not in the last AS of as_path")

        pops: List[int] = [src_pop]
        links: List[Tuple[int, int]] = []
        crossings: List[InterdomainLink] = []
        flow_key = (src_pop << 24) ^ (dst_pop << 4) ^ flow_id
        current = src_pop
        for i in range(len(as_path) - 1):
            here, there = as_path[i], as_path[i + 1]
            candidates = self._border_candidates(here, there)
            if not candidates:
                raise NoRouteError(here, there)
            entering_last = (i == len(as_path) - 2)
            if i == 0 and first_as_policy is TierPolicy.COLD_POTATO:
                chosen = self._choose_border(candidates, dst_pop, flow_key)
            elif entering_last and last_as_policy is TierPolicy.COLD_POTATO:
                chosen = self._choose_border(candidates, dst_pop, flow_key)
            else:
                chosen = self._choose_border(candidates, current, flow_key)
            record, link, near_pop, far_pop = chosen
            intra_pops, intra_links = self._intra_path(here, current, near_pop)
            pops.extend(intra_pops[1:])
            links.extend(intra_links)
            links.append((link.link_id, link.direction_from(near_pop)))
            pops.append(far_pop)
            crossings.append(record)
            current = far_pop
        # Final intra-AS leg to the destination PoP.
        last_asn = as_path[-1]
        intra_pops, intra_links = self._intra_path(last_asn, current, dst_pop)
        pops.extend(intra_pops[1:])
        links.extend(intra_links)
        return Route(tuple(as_path), tuple(pops), tuple(links),
                     mode=mode, border_crossings=tuple(crossings))

    def route(self, src_pop: int, dst_pop: int,
              mode: GraphMode = GraphMode.FULL,
              first_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
              last_as_policy: TierPolicy = TierPolicy.HOT_POTATO,
              flow_id: int = 0) -> Route:
        """Compute the full route between two PoPs under a graph mode."""
        src_asn = self._topo.pop(src_pop).asn
        dst_asn = self._topo.pop(dst_pop).asn
        as_path = self.as_path(src_asn, dst_asn, mode)
        return self.expand(as_path, src_pop, dst_pop,
                           first_as_policy=first_as_policy,
                           last_as_policy=last_as_policy,
                           mode=mode, flow_id=flow_id)

    def invalidate_caches(self) -> None:
        """Drop all cached RIBs and intra-AS tables (topology changed)."""
        self._rib_cache.clear()
        self._intra_cache.clear()
        self._adj_full = self._build_adjacency(GraphMode.FULL)
        self._adj_std = self._build_adjacency(GraphMode.STANDARD)

    def invalidate_intra_cache(self, asn: Optional[int] = None) -> None:
        """Drop intra-AS tables (for *asn* only, when given).

        Needed whenever a host is attached to an existing AS after
        routes were computed - the cached Dijkstra tables predate the
        new leaf.  AS-level RIBs stay valid (hosts don't change BGP).
        """
        if asn is None:
            self._intra_cache.clear()
            return
        stale = [key for key in self._intra_cache if key[0] == asn]
        for key in stale:
            del self._intra_cache[key]


def _better(cand: Tuple[int, int, int], cur: Tuple[int, int, int]) -> bool:
    """Route preference: class, then length, then lowest next hop."""
    return cand < cur
