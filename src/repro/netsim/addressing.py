"""IPv4 addressing: parsing, prefixes, longest-prefix match, allocation.

Addresses are plain ``int`` values (0 .. 2**32-1) everywhere inside the
simulator; dotted-quad strings exist only at the presentation boundary.
The :class:`PrefixTrie` implements longest-prefix match, which backs the
CAIDA-style prefix-to-AS dataset (:mod:`repro.tools.prefix2as`) and
bdrmap's address-ownership tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from ..errors import AddressingError

__all__ = [
    "parse_ip",
    "format_ip",
    "Prefix",
    "PrefixTrie",
    "PrefixAllocator",
]

_MAX_IP = (1 << 32) - 1

V = TypeVar("V")


def parse_ip(text: str) -> int:
    """Parse dotted-quad IPv4 text into an integer.

    >>> parse_ip("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressingError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressingError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressingError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Render an integer IPv4 address as dotted-quad text."""
    if not 0 <= value <= _MAX_IP:
        raise AddressingError(f"IPv4 value out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix ``network/length`` with host-bit validation."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressingError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= _MAX_IP:
            raise AddressingError(f"network out of range: {self.network}")
        if self.network & ~self.mask():
            raise AddressingError(
                f"host bits set in prefix {format_ip(self.network)}/{self.length}")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` text."""
        try:
            net_text, len_text = text.split("/")
        except ValueError:
            raise AddressingError(f"malformed prefix: {text!r}") from None
        return cls(parse_ip(net_text), int(len_text))

    def mask(self) -> int:
        """The netmask as an integer."""
        if self.length == 0:
            return 0
        return (_MAX_IP << (32 - self.length)) & _MAX_IP

    def contains(self, ip: int) -> bool:
        """True when *ip* falls inside this prefix."""
        return (ip & self.mask()) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when *other* is equal to or more specific than this."""
        return other.length >= self.length and self.contains(other.network)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network + self.size - 1

    def hosts(self) -> Iterator[int]:
        """Iterate usable host addresses (skips network/broadcast for /30-)."""
        if self.length >= 31:
            yield from range(self.first, self.last + 1)
        else:
            yield from range(self.first + 1, self.last)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subdivisions of this prefix at *new_length*."""
        if new_length < self.length or new_length > 32:
            raise AddressingError(
                f"cannot subnet /{self.length} into /{new_length}")
        step = 1 << (32 - new_length)
        for net in range(self.first, self.last + 1, step):
            yield Prefix(net, new_length)

    def __str__(self) -> str:
        return f"{format_ip(self.network)}/{self.length}"


class _TrieNode(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Binary trie keyed by IPv4 prefixes supporting longest-prefix match."""

    def __init__(self) -> None:
        self._root: _TrieNode[V] = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert (or replace) the value stored at *prefix*."""
        node = self._root
        for i in range(prefix.length):
            bit = (prefix.network >> (31 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                nxt = _TrieNode()
                node.children[bit] = nxt
            node = nxt
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def exact(self, prefix: Prefix) -> Optional[V]:
        """Return the value stored exactly at *prefix*, if any."""
        node = self._root
        for i in range(prefix.length):
            bit = (prefix.network >> (31 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                return None
            node = nxt
        return node.value if node.has_value else None

    def longest_match(self, ip: int) -> Optional[Tuple[Prefix, V]]:
        """Return the most-specific (prefix, value) covering *ip*."""
        if not 0 <= ip <= _MAX_IP:
            raise AddressingError(f"IPv4 value out of range: {ip}")
        node = self._root
        best: Optional[Tuple[int, V]] = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        network = 0
        for i in range(32):
            bit = (ip >> (31 - i)) & 1
            nxt = node.children[bit]
            if nxt is None:
                break
            network |= bit << (31 - i)
            node = nxt
            if node.has_value:
                best = (i + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        mask = 0 if length == 0 else (_MAX_IP << (32 - length)) & _MAX_IP
        return Prefix(ip & mask, length), value

    def lookup(self, ip: int) -> Optional[V]:
        """Return only the value of the longest match (or ``None``)."""
        hit = self.longest_match(ip)
        return None if hit is None else hit[1]

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate all stored (prefix, value) pairs in trie order."""
        stack: List[Tuple[_TrieNode[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield Prefix(network, length), node.value  # type: ignore[misc]
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    child_net = network | (bit << (31 - length)) if length < 32 else network
                    stack.append((child, child_net, length + 1))


class PrefixAllocator:
    """Carves non-overlapping sub-prefixes out of a pool prefix.

    The topology generator uses one allocator per address pool (cloud,
    transit cores, access edges) so interface and server addresses never
    collide, which matters because bdrmap and prefix-to-AS both key on
    address ownership.
    """

    def __init__(self, pool: Prefix) -> None:
        self._pool = pool
        self._cursor = pool.first
        self._allocated: List[Prefix] = []

    @property
    def pool(self) -> Prefix:
        return self._pool

    @property
    def allocated(self) -> List[Prefix]:
        """Prefixes handed out so far, in allocation order."""
        return list(self._allocated)

    def remaining(self) -> int:
        """Addresses still available in the pool."""
        return self._pool.last - self._cursor + 1

    def allocate(self, length: int) -> Prefix:
        """Allocate the next aligned /*length* block from the pool."""
        if length < self._pool.length or length > 32:
            raise AddressingError(
                f"cannot allocate /{length} from pool {self._pool}")
        size = 1 << (32 - length)
        # Align the cursor up to the block boundary.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        if aligned + size - 1 > self._pool.last:
            raise AddressingError(
                f"pool {self._pool} exhausted allocating /{length}")
        self._cursor = aligned + size
        prefix = Prefix(aligned, length)
        self._allocated.append(prefix)
        return prefix

    def allocate_host(self) -> int:
        """Allocate a single host address (a /32)."""
        return self.allocate(32).network
