"""Instantaneous link state: residual bandwidth, loss, queueing delay.

Given a link's capacity and its background utilization at time *t*
(from :class:`~repro.netsim.traffic.UtilizationModel`), this module
computes what a measurement flow experiences on that link:

* **residual bandwidth** - how much of the capacity a new elastic flow
  set can claim.  Below saturation this is simply the unused capacity;
  once offered load reaches capacity, loss-based TCP fairness leaves a
  small contested share rather than exactly zero.
* **loss rate** - negligible until high utilization, rising steeply as
  the queue saturates; above capacity the drop rate is the structural
  overflow fraction ``(u - 1) / u`` plus the queue-full component.
* **queueing delay** - an M/M/1-flavoured delay that grows with
  utilization and is capped at the buffer depth (bufferbloat ceiling).

The numbers are per-link; :mod:`repro.netsim.pathmodel` composes them
along a route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .topology import Link, LinkKind
from .traffic import UtilizationModel
from ..errors import ValidationError

__all__ = ["FlapHook", "LinkObservation", "LinkStateEvaluator"]

#: Utilization where queueing loss begins.
_LOSS_ONSET = 0.92
#: Loss rate reached right at u == 1.0 from queue pressure alone.
_LOSS_AT_CAPACITY = 0.012
#: Sub-onset loss grows gently with utilization (transient bursts on a
#: loaded link drop a few packets long before sustained overload);
#: coefficient of the u^4 term.
_SUBONSET_COEF = 4e-4
#: Baseline residual loss floor on any link (bit errors, transient
#: bursts).  Paths accumulate a few of these, giving healthy paths the
#: 1e-4 .. 1e-3 loss regime that bounds TCP throughput below link rate.
_FLOOR_LOSS = {
    LinkKind.BACKBONE: 1e-5,
    LinkKind.INTERDOMAIN: 2e-5,
    LinkKind.ACCESS: 5e-5,
    LinkKind.LAN: 6e-6,
}
#: Queueing delay parameters: service quantum and buffer cap per kind.
_QUEUE_BASE_MS = {
    LinkKind.BACKBONE: 0.03,
    LinkKind.INTERDOMAIN: 0.06,
    LinkKind.ACCESS: 0.12,
    LinkKind.LAN: 0.02,
}
_QUEUE_CAP_MS = {
    LinkKind.BACKBONE: 12.0,
    LinkKind.INTERDOMAIN: 30.0,
    LinkKind.ACCESS: 60.0,
    LinkKind.LAN: 5.0,
}
#: Share of capacity still winnable by an aggressive multi-flow test
#: when the link is exactly saturated (contested share floor).
_CONTESTED_SHARE = 0.12


@dataclass(frozen=True)
class LinkObservation:
    """What one direction of one link looks like at one instant."""

    link_id: int
    direction: int
    capacity_mbps: float
    utilization: float
    residual_mbps: float
    loss_rate: float
    queue_delay_ms: float
    #: Correlated micro-burst loss (see :class:`~repro.netsim.topology.Link`).
    burst_loss: float = 0.0

    @property
    def saturated(self) -> bool:
        """True when background load alone meets or exceeds capacity."""
        return self.utilization >= 1.0


#: Fault hook signature: ``(link_id, direction, ts)`` returning a
#: utilization floor the link is forced to while flapped, or ``None``.
FlapHook = Callable[[int, int, float], Optional[float]]


class LinkStateEvaluator:
    """Computes :class:`LinkObservation` records from the traffic model."""

    def __init__(self, utilization_model: UtilizationModel,
                 flap_hook: Optional[FlapHook] = None) -> None:
        self._util = utilization_model
        self._flap_hook = flap_hook

    @property
    def utilization_model(self) -> UtilizationModel:
        return self._util

    def set_flap_hook(self, hook: Optional[FlapHook]) -> None:
        """Install (or clear) a deterministic link-flap fault hook."""
        self._flap_hook = hook

    @property
    def flap_hook(self) -> Optional[FlapHook]:
        """The installed flap hook (batch evaluators query it directly)."""
        return self._flap_hook

    def observe(self, link: Link, direction: int, ts: float) -> LinkObservation:
        """Evaluate one link direction at simulated time *ts*."""
        u = self._util.utilization(link.link_id, direction, ts)
        if self._flap_hook is not None:
            floor = self._flap_hook(link.link_id, direction, ts)
            if floor is not None:
                # A flapped link direction behaves like a saturated one:
                # heavy loss, bufferbloat queueing, near-zero residual.
                u = max(u, floor)
        residual = self.residual_mbps(link.capacity_mbps, u)
        loss = self.loss_rate(u, link.kind)
        queue = self.queue_delay_ms(u, link.kind)
        return LinkObservation(
            link_id=link.link_id,
            direction=direction,
            capacity_mbps=link.capacity_mbps,
            utilization=u,
            residual_mbps=residual,
            loss_rate=loss,
            queue_delay_ms=queue,
            burst_loss=link.burst_loss,
        )

    @staticmethod
    def residual_mbps(capacity_mbps: float, utilization: float) -> float:
        """Bandwidth a new elastic flow set can claim on this link."""
        if capacity_mbps <= 0:
            raise ValidationError(f"capacity must be positive: {capacity_mbps}")
        if utilization < 0:
            raise ValidationError(f"utilization must be >= 0: {utilization}")
        free = capacity_mbps * (1.0 - utilization)
        # Even on a saturated link, loss-based congestion control lets an
        # aggressive multi-flow test carve out a contested share that
        # shrinks as overload deepens.  Written in multiplication form
        # (not **) so the numpy batch path reproduces it bit-for-bit.
        over = max(1.0, utilization)
        contested = capacity_mbps * _CONTESTED_SHARE / (over * over)
        return max(free, contested)

    @staticmethod
    def loss_rate(utilization: float, kind: LinkKind) -> float:
        """Packet loss fraction for a link direction at utilization *u*."""
        if utilization < 0:
            raise ValidationError(f"utilization must be >= 0: {utilization}")
        floor = _FLOOR_LOSS[kind]
        # u^4 in multiplication form: bit-identical to the numpy twin.
        u_sq = utilization * utilization
        burst = _SUBONSET_COEF * (u_sq * u_sq)
        if utilization <= _LOSS_ONSET:
            return floor + burst
        if utilization <= 1.0:
            ramp = (utilization - _LOSS_ONSET) / (1.0 - _LOSS_ONSET)
            return floor + burst + _LOSS_AT_CAPACITY * ramp * ramp
        # Over capacity: the structural overflow fraction dominates.
        overflow = (utilization - 1.0) / utilization
        return min(0.9, floor + burst + _LOSS_AT_CAPACITY + overflow)

    @staticmethod
    def queue_delay_ms(utilization: float, kind: LinkKind) -> float:
        """Queueing delay added by this link direction, in ms."""
        if utilization < 0:
            raise ValidationError(f"utilization must be >= 0: {utilization}")
        base = _QUEUE_BASE_MS[kind]
        cap = _QUEUE_CAP_MS[kind]
        u = min(utilization, 0.995)
        mm1 = base * u / (1.0 - u)
        if utilization >= 1.0:
            return cap
        return min(cap, mm1)
