"""Synthetic Internet substrate.

This package implements everything the CLASP experiments need from "the
Internet": IPv4 addressing, an AS-level topology with business
relationships, city-level PoPs and interdomain links, valley-free policy
routing (with the cloud provider's premium/standard tier semantics),
time-varying link utilization with diurnal/pandemic load, and a TCP
throughput model that turns a routed path plus link state into the
latency/loss/throughput a measurement flow would observe.
"""

from .addressing import (
    Prefix,
    PrefixAllocator,
    PrefixTrie,
    format_ip,
    parse_ip,
)
from .asn import AS, ASRelationship, ASType, RelationshipKind
from .topology import InterdomainLink, Interface, Link, LinkKind, PoP, Topology
from .generator import GeneratorConfig, TopologyGenerator
from .routing import Route, Router as RoutingEngine, TierPolicy
from .traffic import DiurnalProfile, UtilizationModel, TrafficConfig
from .linkstate import LinkObservation, LinkStateEvaluator
from .tcp import tcp_throughput_mbps, multiflow_throughput_mbps
from .pathmodel import PathMetrics, PathPerformanceModel

__all__ = [
    "Prefix", "PrefixAllocator", "PrefixTrie", "format_ip", "parse_ip",
    "AS", "ASRelationship", "ASType", "RelationshipKind",
    "InterdomainLink", "Interface", "Link", "LinkKind", "PoP", "Topology",
    "GeneratorConfig", "TopologyGenerator",
    "Route", "RoutingEngine", "TierPolicy",
    "DiurnalProfile", "UtilizationModel", "TrafficConfig",
    "LinkObservation", "LinkStateEvaluator",
    "tcp_throughput_mbps", "multiflow_throughput_mbps",
    "PathMetrics", "PathPerformanceModel",
]
