"""Synthetic Internet generator.

Builds a calibrated internetwork around a hyperscale cloud provider:

* a tiered AS population (tier-1 transit, regional transit, access
  ISPs, hosting, education, business networks),
* city-level PoPs with intra-AS backbones,
* Gao-Rexford business relationships and the physical interdomain
  links that realise them (with parallel "LAG member" links, each with
  its own far-side interface IP - the granularity bdrmap reports),
* a cloud AS with a private WAN spanning many metros, settlement-free
  peering with most edge networks (premium tier) and a handful of
  transit providers (standard tier),
* per-link diurnal utilization profiles, with a configurable fraction
  of access-ISP interconnects under-provisioned in the ISP-to-cloud
  direction (the pandemic congestion the paper measures).

The generator is deterministic given a :class:`~repro.rng.SeedTree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ConfigError, TopologyError, ValidationError
from ..geo import City, CityCatalog, default_catalog
from ..geo.coords import propagation_delay_ms
from ..rng import SeedTree
from ..simclock import CAMPAIGN_START
from ..units import gbps
from .addressing import Prefix, PrefixAllocator
from .asn import AS, ASRelationship, ASType, RelationshipKind
from .topology import InterdomainLink, LinkKind, PoP, Topology
from .traffic import (
    DiurnalBump,
    DiurnalProfile,
    TrafficConfig,
    UtilizationModel,
)

__all__ = ["GeneratorConfig", "GeneratedInternet", "TopologyGenerator"]


def _story_profile(kind: str, utc_offset: float,
                   draw: np.random.Generator) -> DiurnalProfile:
    """Named congestion shapes for story networks."""
    if kind == "evening":
        return DiurnalProfile(
            base=float(draw.uniform(0.45, 0.55)),
            bumps=(DiurnalBump(21.0, 4.0, float(draw.uniform(0.55, 0.8))),),
            utc_offset_hours=utc_offset, noise_sigma=0.05)
    if kind == "daytime":
        return DiurnalProfile(
            base=float(draw.uniform(0.45, 0.55)),
            bumps=(DiurnalBump(13.0, 5.5, float(draw.uniform(0.55, 0.75))),
                   DiurnalBump(21.0, 4.0, float(draw.uniform(0.30, 0.45)))),
            utc_offset_hours=utc_offset, noise_sigma=0.05)
    if kind == "allday":
        return DiurnalProfile(
            base=float(draw.uniform(0.62, 0.72)),
            bumps=(DiurnalBump(15.0, 7.0, float(draw.uniform(0.45, 0.6))),),
            utc_offset_hours=utc_offset, noise_sigma=0.05)
    raise ValidationError(f"unknown congestion story kind {kind!r}")

# Name material for synthetic ASes (all fictional).
_ISP_STEMS = [
    "Blue Ridge", "Summit", "Cascade", "Prairie", "Lakeshore", "Granite",
    "Redwood", "Pioneer", "Harbor", "Canyon", "Mesa", "Frontier Line",
    "Valley", "Beacon", "Juniper", "Monarch", "Sierra", "Sandhill",
    "Ridgeline", "Clearwater", "Foothill", "Bayline", "Northwind",
    "Sunset", "Copperfield", "Ironwood", "Palmetto", "Bluestem", "Cypress",
    "Horizon", "Keystone", "Magnolia", "Tidewater", "Wolfpine", "Yucca",
]
_ISP_SUFFIXES = ["Broadband", "Cable", "Communications", "Fiber", "Telecom",
                 "Internet", "Networks", "Wireless", "Connect"]
_HOSTING_STEMS = ["Stack", "Rack", "Node", "Grid", "Core", "Edge", "Vault",
                  "Flux", "Quanta", "Nimbus", "Zephyr", "Apex", "Datum"]
_HOSTING_SUFFIXES = ["Hosting", "Servers", "Datacenters", "Cloud Services",
                     "Colo", "Systems"]
_TIER1_NAMES = [
    "TransGlobal Carrier", "Meridian Backbone", "Atlantic Core Networks",
    "Pacifica Transit", "Continental Exchange", "Polar Route Systems",
    "Equator Communications", "Longhaul International", "Axis Carrier Group",
]
_TRANSIT_SUFFIXES = ["Transit", "Carrier", "Backbone", "NetExchange"]
_EDU_SUFFIXES = ["State University", "Institute of Technology",
                 "Community College Network", "Research Consortium"]
_BIZ_SUFFIXES = ["Logistics", "Financial", "Media Group", "Health Systems",
                 "Retail Corp", "Manufacturing"]


@dataclass
class GeneratorConfig:
    """Size and shape knobs for the synthetic Internet."""

    # AS population
    n_tier1: int = 9
    n_transit: int = 48
    n_access_isp: int = 430
    n_big_isp: int = 26            # subset of access ISPs with wide footprints
    n_hosting: int = 215
    n_education: int = 56
    n_business: int = 108

    cloud_asn: int = 15169
    cloud_name: str = "Macro Cloud Platform"

    #: Fraction of small access ISPs / hosting / education networks that
    #: peer directly with the cloud (big ISPs always do).  Kept well
    #: below 1 so most servers reach the cloud through their upstream's
    #: interconnects - which is why the paper found 75-92 % of servers
    #: sharing interdomain links.
    small_isp_peering_fraction: float = 0.42
    hosting_peering_fraction: float = 0.40
    education_peering_fraction: float = 0.30

    #: Parallel link ("LAG member") count ranges per peering city.
    big_isp_parallel_links: Tuple[int, int] = (4, 9)
    small_parallel_links: Tuple[int, int] = (4, 10)

    #: How many cities a big ISP peers with the cloud in (capped by the
    #: ISP's own footprint).
    big_isp_peering_cities: Tuple[int, int] = (4, 10)
    #: How many metros a small edge network reaches the cloud at.
    #: Kept near the network's own footprint so its announced prefixes
    #: exercise every interconnect group (what lets probing find them).
    small_peering_cities: Tuple[int, int] = (1, 2)

    #: Cloud WAN presence: which world regions get dense vs sparse PoPs.
    cloud_dense_regions: Tuple[str, ...] = ("us-west", "us-central", "us-east", "eu")
    cloud_sparse_cities: Tuple[str, ...] = (
        "Singapore, SG", "Tokyo, JP", "Sydney, AU", "Sao Paulo, BR",
        "Mumbai, IN", "Hong Kong, HK",
    )
    n_cloud_transits: int = 3

    # Capacities (Mbps)
    cloud_backbone_gbps: Tuple[float, float] = (400.0, 1200.0)
    tier1_backbone_gbps: Tuple[float, float] = (200.0, 800.0)
    transit_backbone_gbps: Tuple[float, float] = (40.0, 200.0)
    edge_backbone_gbps: Tuple[float, float] = (10.0, 60.0)
    cloud_peering_gbps: Tuple[float, float] = (10.0, 100.0)
    transit_interconnect_gbps: Tuple[float, float] = (10.0, 100.0)

    traffic: TrafficConfig = field(default_factory=TrafficConfig)

    def __post_init__(self) -> None:
        if self.n_big_isp > self.n_access_isp:
            raise ConfigError("n_big_isp cannot exceed n_access_isp")
        if self.n_tier1 < self.n_cloud_transits:
            raise ConfigError("need at least n_cloud_transits tier-1 ASes")


@dataclass
class GeneratedInternet:
    """Everything the generator hands back."""

    topology: Topology
    utilization: UtilizationModel
    cloud_asn: int
    tier1_asns: List[int]
    transit_asns: List[int]
    cloud_transit_asns: List[int]
    access_isp_asns: List[int]
    big_isp_asns: List[int]
    hosting_asns: List[int]
    education_asns: List[int]
    business_asns: List[int]
    #: per-AS infrastructure allocator (hosts/servers draw from these)
    infra_allocators: Dict[int, PrefixAllocator]
    #: ASNs flagged as having under-provisioned cloud connectivity
    congested_asns: Set[int]
    config: GeneratorConfig

    @property
    def edge_asns(self) -> List[int]:
        """All ASes that can plausibly host a speed test server."""
        return (self.access_isp_asns + self.hosting_asns
                + self.education_asns + self.business_asns)


class TopologyGenerator:
    """Builds a :class:`GeneratedInternet` from a config and seed tree."""

    def __init__(self, config: Optional[GeneratorConfig] = None,
                 seeds: Optional[SeedTree] = None,
                 cities: Optional[CityCatalog] = None) -> None:
        self.config = config or GeneratorConfig()
        self.seeds = seeds or SeedTree(0)
        self.cities = cities or default_catalog()
        self._rng = self.seeds.generator("topology-generator")
        self._next_asn = 100
        self._pool = PrefixAllocator(Prefix.parse("10.0.0.0/8"))
        self._wide_pool = PrefixAllocator(Prefix.parse("100.64.0.0/10"))
        self._infra_allocators: Dict[int, PrefixAllocator] = {}

    # ------------------------------------------------------------------
    # public entry point

    def generate(self) -> GeneratedInternet:
        cfg = self.config
        topo = Topology()
        for city in self.cities:
            topo.add_city(city)
        util = UtilizationModel(self.seeds, origin_ts=CAMPAIGN_START)

        allocators = self._infra_allocators
        announced: Dict[int, List[Prefix]] = {}

        # --- cloud AS -------------------------------------------------
        cloud_cities = self._cloud_cities()
        cloud = AS(asn=cfg.cloud_asn, name=cfg.cloud_name,
                   as_type=ASType.CLOUD, country="US")
        topo.add_as(cloud)
        self._allocate_space(cloud, allocators, announced, wide=True)
        self._place_pops(topo, allocators, cloud, cloud_cities)
        self._build_backbone(topo, util, cloud, cfg.cloud_backbone_gbps,
                             mesh_degree=4, base_range=(0.20, 0.40))

        # --- tier-1 carriers -------------------------------------------
        tier1s: List[AS] = []
        world = list(self.cities)
        for i in range(cfg.n_tier1):
            name = _TIER1_NAMES[i % len(_TIER1_NAMES)]
            as_obj = AS(asn=self._take_asn(), name=name,
                        as_type=ASType.TIER1, country="US")
            topo.add_as(as_obj)
            self._allocate_space(as_obj, allocators, announced, wide=True)
            n_cities = int(self._rng.integers(18, 30))
            chosen = self._sample_cities(world, n_cities)
            self._place_pops(topo, allocators, as_obj, chosen)
            self._build_backbone(topo, util, as_obj, cfg.tier1_backbone_gbps,
                                 mesh_degree=3, base_range=(0.15, 0.35))
            tier1s.append(as_obj)

        # Tier-1 full-mesh peering, dense (real tier-1 pairs
        # interconnect at many metros; sparse meshes produce absurd
        # hot-potato detours).
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1:]:
                self._connect_interdomain(
                    topo, util, a, b, RelationshipKind.PEER_TO_PEER,
                    n_cities=int(self._rng.integers(6, 11)),
                    parallel=(1, 2),
                    capacity_range=cfg.transit_interconnect_gbps,
                    congest_prob=0.02)

        # --- regional transit -------------------------------------------
        transits: List[AS] = []
        region_names = ["us-west", "us-central", "us-east", "eu", "apac", "latam"]
        for i in range(cfg.n_transit):
            region = region_names[i % len(region_names)]
            try:
                region_cities = [c for c in self.cities if c.region == region]
            except ConfigError:
                region_cities = list(self.cities)
            stem = self._rng.choice(_ISP_STEMS)
            suffix = self._rng.choice(_TRANSIT_SUFFIXES)
            as_obj = AS(asn=self._take_asn(), name=f"{stem} {suffix}",
                        as_type=ASType.TRANSIT,
                        country=region_cities[0].country if region_cities else "US")
            topo.add_as(as_obj)
            self._allocate_space(as_obj, allocators, announced)
            n_cities = int(self._rng.integers(3, min(9, max(4, len(region_cities)))))
            chosen = self._sample_cities(region_cities, n_cities)
            self._place_pops(topo, allocators, as_obj, chosen)
            self._build_backbone(topo, util, as_obj, cfg.transit_backbone_gbps,
                                 mesh_degree=2, base_range=(0.20, 0.45))
            transits.append(as_obj)
            # Each transit buys from 2 tier-1s, preferring tier-1s with
            # a presence in its own region (so the interconnects stay
            # local instead of hauling traffic across oceans).
            home = topo.pops_of_as(as_obj.asn)[0]
            home_city = self.cities.get(home.city_key)

            def t1_distance(t1: AS) -> float:
                pops = [p for p in topo.pops_of_as(t1.asn)
                        if not p.is_host]
                return min(self.cities.get(p.city_key).point
                           .distance_km(home_city.point) for p in pops)

            t1_weights = np.array([1.0 / (300.0 + t1_distance(t)) ** 2
                                   for t in tier1s])
            t1_weights = t1_weights / t1_weights.sum()
            for provider in self._rng.choice(len(tier1s), size=2,
                                             replace=False, p=t1_weights):
                self._connect_interdomain(
                    topo, util, as_obj, tier1s[int(provider)],
                    RelationshipKind.CUSTOMER_TO_PROVIDER,
                    n_cities=int(self._rng.integers(2, 4)),
                    parallel=(1, 2),
                    capacity_range=cfg.transit_interconnect_gbps,
                    congest_prob=cfg.traffic.transit_congested_fraction)

        # --- cloud transit providers (standard tier) --------------------
        cloud_transit_idx = self._rng.choice(
            len(tier1s), size=cfg.n_cloud_transits, replace=False)
        cloud_transits = [tier1s[int(i)] for i in cloud_transit_idx]
        for provider in cloud_transits:
            # The cloud provisions its transit gateways generously:
            # standard-tier traffic funnels through them, so they are
            # engineered far below the congestion regime of edge
            # interconnects.
            self._connect_interdomain(
                topo, util, cloud, provider,
                RelationshipKind.CUSTOMER_TO_PROVIDER,
                n_cities=int(self._rng.integers(7, 11)),
                parallel=(2, 4),
                capacity_range=cfg.transit_interconnect_gbps,
                congest_prob=0.02,
                subnet_owner_bias=1.0)

        # --- edge networks ----------------------------------------------
        access: List[AS] = []
        big_isps: List[AS] = []
        congested_asns: Set[int] = set()
        congest_draw = self.seeds.generator("congestion-assignment")

        us_cities = [c for c in self.cities if c.country == "US"]
        for i in range(cfg.n_access_isp):
            is_big = i < cfg.n_big_isp
            stem = self._rng.choice(_ISP_STEMS)
            suffix = self._rng.choice(_ISP_SUFFIXES)
            name = f"{stem} {suffix}"
            # ~12% of small access ISPs live outside the U.S. so the
            # differential experiments have global eyeballs to select.
            offshore = (not is_big) and self._rng.random() < 0.12
            pool = [c for c in self.cities if c.country != "US"] if offshore else us_cities
            as_obj = AS(asn=self._take_asn(), name=name,
                        as_type=ASType.ACCESS_ISP,
                        country=pool[0].country if offshore else "US")
            topo.add_as(as_obj)
            self._allocate_space(as_obj, allocators, announced)
            if is_big:
                n_cities = int(self._rng.integers(4, 10))
            else:
                n_cities = int(self._rng.integers(1, 3))
            chosen = self._sample_cities(pool, n_cities)
            as_obj.country = chosen[0].country
            self._place_pops(topo, allocators, as_obj, chosen)
            self._build_backbone(topo, util, as_obj, cfg.edge_backbone_gbps,
                                 mesh_degree=2, base_range=(0.25, 0.50))
            is_congested = congest_draw.random() < cfg.traffic.congested_fraction
            if is_congested:
                congested_asns.add(as_obj.asn)
            peers_cloud = is_big or (
                self._rng.random() < cfg.small_isp_peering_fraction)
            # A congested ISP without direct peering expresses its
            # congestion on the transit uplinks its cloud traffic rides.
            self._buy_transit(topo, util, as_obj, transits, tier1s,
                              n_providers=2 if is_big else
                              int(self._rng.integers(1, 3)),
                              congested_upstream=is_congested
                              and not peers_cloud,
                              congest_draw=congest_draw)
            if peers_cloud:
                self._peer_with_cloud(topo, util, cloud, as_obj,
                                      is_big=is_big,
                                      congested=is_congested,
                                      congest_draw=congest_draw)
            access.append(as_obj)
            if is_big:
                big_isps.append(as_obj)

        hosting = self._make_edge_population(
            topo, util, allocators, announced, transits, tier1s, cloud,
            congested_asns, congest_draw,
            count=cfg.n_hosting, as_type=ASType.HOSTING,
            peering_fraction=cfg.hosting_peering_fraction,
            congest_scale=0.35)
        education = self._make_edge_population(
            topo, util, allocators, announced, transits, tier1s, cloud,
            congested_asns, congest_draw,
            count=cfg.n_education, as_type=ASType.EDUCATION,
            peering_fraction=cfg.education_peering_fraction,
            congest_scale=0.5)
        business = self._make_edge_population(
            topo, util, allocators, announced, transits, tier1s, cloud,
            congested_asns, congest_draw,
            count=cfg.n_business, as_type=ASType.BUSINESS,
            peering_fraction=0.25, congest_scale=0.5)

        topo.validate()
        return GeneratedInternet(
            topology=topo,
            utilization=util,
            cloud_asn=cloud.asn,
            tier1_asns=[a.asn for a in tier1s],
            transit_asns=[a.asn for a in transits],
            cloud_transit_asns=[a.asn for a in cloud_transits],
            access_isp_asns=[a.asn for a in access],
            big_isp_asns=[a.asn for a in big_isps],
            hosting_asns=[a.asn for a in hosting],
            education_asns=[a.asn for a in education],
            business_asns=[a.asn for a in business],
            infra_allocators=allocators,
            congested_asns=congested_asns,
            config=cfg,
        )

    # ------------------------------------------------------------------
    # building blocks

    def _take_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _cloud_cities(self) -> List[City]:
        dense = [c for c in self.cities
                 if c.region in self.config.cloud_dense_regions]
        sparse = [self.cities.get(key) for key in self.config.cloud_sparse_cities
                  if key in self.cities]
        return dense + sparse

    def _sample_cities(self, pool: Sequence[City], k: int) -> List[City]:
        """Weighted sample without replacement, capped at the pool size."""
        pool = list(pool)
        k = min(k, len(pool))
        weights = np.array([c.population_weight for c in pool], dtype=float)
        weights /= weights.sum()
        idx = self._rng.choice(len(pool), size=k, replace=False, p=weights)
        return [pool[int(i)] for i in idx]

    def _allocate_space(self, as_obj: AS,
                        allocators: Dict[int, PrefixAllocator],
                        announced: Dict[int, List[Prefix]],
                        wide: bool = False) -> None:
        """Give the AS an address block and an infrastructure allocator."""
        pool = self._wide_pool if wide else self._pool
        block = pool.allocate(14 if wide else 20)
        subnets = list(block.subnets(block.length + 2))
        infra = subnets[0]
        allocators[as_obj.asn] = PrefixAllocator(infra)
        announced[as_obj.asn] = []
        as_obj.prefixes.append(block)

    def _announce_pop_prefix(self, as_obj: AS,
                             allocators: Dict[int, PrefixAllocator]) -> Prefix:
        """Carve a /24 the AS announces for one PoP's customer space."""
        del allocators  # announced space comes from the AS block directly
        block = as_obj.prefixes[0]
        infra_size = block.size // 4
        announced_base = block.network + infra_size
        existing = len(as_obj.prefixes) - 1
        net = announced_base + existing * 256
        if net + 255 > block.last:
            raise TopologyError(
                f"AS{as_obj.asn} has no room for another /24")
        prefix = Prefix(net, 24)
        as_obj.prefixes.append(prefix)
        return prefix

    def _place_pops(self, topo: Topology,
                    allocators: Dict[int, PrefixAllocator],
                    as_obj: AS, cities: Sequence[City]) -> List[PoP]:
        pops = []
        seen: Set[str] = set()
        unique_cities = []
        for city in cities:
            if city.key not in seen:
                seen.add(city.key)
                unique_cities.append(city)
        if not unique_cities:
            return pops
        # Announce several /24s per PoP (real networks originate many
        # prefixes per site); bounded by the AS block's announced slots.
        block = as_obj.prefixes[0]
        slots = (block.size - block.size // 4) // 256
        per_pop = max(1, min(3, slots // len(unique_cities)))
        for city in unique_cities:
            loopback = allocators[as_obj.asn].allocate_host()
            pop = topo.add_pop(as_obj.asn, city.key, loopback)
            pops.append(pop)
            for _ in range(per_pop):
                prefix = self._announce_pop_prefix(as_obj, allocators)
                topo.register_announced_prefix(prefix, pop.pop_id)
        # The covering block routes to the first PoP by default.
        topo.register_announced_prefix(block, pops[0].pop_id)
        return pops

    def _build_backbone(self, topo: Topology, util: UtilizationModel,
                        as_obj: AS, capacity_gbps: Tuple[float, float],
                        mesh_degree: int,
                        base_range: Tuple[float, float]) -> None:
        """Connect an AS's PoPs: greedy nearest-neighbour tree + chords."""
        pops = [p for p in topo.pops_of_as(as_obj.asn) if not p.is_host]
        if len(pops) < 2:
            return
        alloc = None  # backbone interfaces are unnumbered in our model
        del alloc
        connected = [pops[0]]
        remaining = pops[1:]
        edges: Set[Tuple[int, int]] = set()

        def link_pops(a: PoP, b: PoP) -> None:
            key = (min(a.pop_id, b.pop_id), max(a.pop_id, b.pop_id))
            if key in edges:
                return
            edges.add(key)
            city_a = topo.cities[a.city_key]
            city_b = topo.cities[b.city_key]
            delay = propagation_delay_ms(city_a.point, city_b.point)
            capacity = gbps(self._rng.uniform(*capacity_gbps))
            link = topo.add_link(LinkKind.BACKBONE, a.pop_id, b.pop_id,
                                 capacity, delay)
            base = self._rng.uniform(*base_range)
            offset = (city_a.utc_offset_hours + city_b.utc_offset_hours) / 2.0
            profile = DiurnalProfile.quiet(base=base, utc_offset_hours=offset,
                                           noise_sigma=self.config.traffic.noise_sigma)
            util.set_profile_both(link.link_id, profile)

        while remaining:
            best = None
            best_d = float("inf")
            for r in remaining:
                for c in connected:
                    d = topo.cities[r.city_key].point.distance_km(
                        topo.cities[c.city_key].point)
                    if d < best_d:
                        best_d = d
                        best = (r, c)
            assert best is not None
            r, c = best
            link_pops(r, c)
            connected.append(r)
            remaining.remove(r)

        # chords for redundancy / shorter intra-AS paths
        if mesh_degree > 1 and len(pops) > 3:
            extra = min(len(pops) * (mesh_degree - 1) // 2,
                        len(pops) * (len(pops) - 1) // 2 - len(edges))
            for _ in range(extra):
                i, j = self._rng.choice(len(pops), size=2, replace=False)
                link_pops(pops[int(i)], pops[int(j)])

    def _shared_or_nearest_cities(self, topo: Topology, a: AS, b: AS,
                                  k: int) -> List[Tuple[PoP, PoP]]:
        """Pick up to *k* (PoP_a, PoP_b) pairs to interconnect at.

        Prefers cities where both ASes are present; falls back to the
        geographically closest PoP pairs.
        """
        pops_a = [p for p in topo.pops_of_as(a.asn) if not p.is_host]
        pops_b = [p for p in topo.pops_of_as(b.asn) if not p.is_host]
        if not pops_a or not pops_b:
            raise TopologyError(
                f"cannot interconnect AS{a.asn} and AS{b.asn}: missing PoPs")
        shared = []
        b_by_city = {p.city_key: p for p in pops_b}
        for pa in pops_a:
            pb = b_by_city.get(pa.city_key)
            if pb is not None:
                shared.append((pa, pb))
        if len(shared) >= k:
            idx = self._rng.choice(len(shared), size=k, replace=False)
            return [shared[int(i)] for i in idx]
        pairs = list(shared)
        used_a = {pa.pop_id for pa, _ in pairs}
        scored = []
        for pa in pops_a:
            if pa.pop_id in used_a:
                continue
            nearest = min(pops_b, key=lambda pb: topo.cities[pa.city_key]
                          .point.distance_km(topo.cities[pb.city_key].point))
            d = topo.cities[pa.city_key].point.distance_km(
                topo.cities[nearest.city_key].point)
            scored.append((d, pa, nearest))
        scored.sort(key=lambda t: (t[0], t[1].pop_id))
        for _d, pa, pb in scored[:max(0, k - len(pairs))]:
            pairs.append((pa, pb))
        return pairs if pairs else [(pops_a[0], min(
            pops_b, key=lambda pb: topo.cities[pops_a[0].city_key].point
            .distance_km(topo.cities[pb.city_key].point)))]

    def _connect_interdomain(self, topo: Topology, util: UtilizationModel,
                             a: AS, b: AS, kind: RelationshipKind,
                             n_cities: int, parallel: Tuple[int, int],
                             capacity_range: Tuple[float, float],
                             congest_prob: float,
                             congested_upstream: bool = False,
                             congest_draw: Optional[np.random.Generator] = None,
                             subnet_owner_bias: float = 0.75,
                             forced_pairs: Optional[
                                 List[Tuple[PoP, PoP]]] = None,
                             congested_direction: int = 1,
                             ) -> List[InterdomainLink]:
        """Create relationship + physical border links between two ASes.

        Direction convention: links are created with ``pop_a`` on *a*'s
        side, so direction 0 is a->b and direction 1 is b->a.  For cloud
        peering *a* is the cloud, making direction 1 the ISP-to-cloud
        (ingress) direction where congestion is injected.

        *subnet_owner_bias* is the probability the link /30 is numbered
        from *a*'s address space.  The cloud numbers its PNIs from its
        own space (bias 1.0), which is exactly the ambiguity bdrmap's
        alias heuristics must untangle; other borders keep a mix.
        """
        draw = congest_draw if congest_draw is not None else self._rng
        topo.add_relationship(ASRelationship(a.asn, b.asn, kind))
        if forced_pairs is not None:
            pairs = list(forced_pairs)
        else:
            pairs = self._shared_or_nearest_cities(topo, a, b, n_cities)
        records: List[InterdomainLink] = []
        for pa, pb in pairs:
            n_parallel = int(self._rng.integers(parallel[0], parallel[1] + 1))
            city_a = topo.cities[pa.city_key]
            city_b = topo.cities[pb.city_key]
            delay = propagation_delay_ms(city_a.point, city_b.point)
            subnet_owner = a if self._rng.random() < subnet_owner_bias else b
            city_congested = (congested_upstream
                              and draw.random() < 0.85)
            for _ in range(n_parallel):
                alloc = self._infra_alloc(subnet_owner)
                net = alloc.allocate(30)
                hosts = list(net.hosts())
                ip_a, ip_b = hosts[0], hosts[1]
                capacity = gbps(self._rng.uniform(*capacity_range))
                link = topo.add_link(LinkKind.INTERDOMAIN, pa.pop_id,
                                     pb.pop_id, capacity, max(0.1, delay),
                                     ip_a=ip_a, ip_b=ip_b,
                                     address_asn=subnet_owner.asn)
                record = InterdomainLink(
                    link_id=link.link_id, near_asn=a.asn, far_asn=b.asn,
                    city_key=pa.city_key, near_ip=ip_a, far_ip=ip_b)
                topo.register_interdomain(record)
                records.append(record)
                self._assign_border_profiles(
                    util, link.link_id, city_b.utc_offset_hours,
                    upstream_congested=city_congested or (
                        draw.random() < congest_prob),
                    downstream_congested=draw.random()
                    < self.config.traffic.reverse_congested_fraction,
                    draw=draw,
                    upstream_direction=congested_direction)
        return records

    def _infra_alloc(self, as_obj: AS) -> PrefixAllocator:
        alloc = self._infra_allocators.get(as_obj.asn)
        if alloc is None:
            raise TopologyError(f"AS{as_obj.asn} has no allocator")
        return alloc

    def _assign_border_profiles(self, util: UtilizationModel, link_id: int,
                                utc_offset: float,
                                upstream_congested: bool,
                                downstream_congested: bool,
                                draw: np.random.Generator,
                                upstream_direction: int = 1) -> None:
        """Set load profiles for both directions of a border link.

        *upstream_direction* is the direction index that carries
        edge-to-cloud traffic: 1 for cloud-peering links (the cloud is
        ``pop_a``), 0 for customer-to-provider transit uplinks (the
        customer is ``pop_a``).
        """
        cfg = self.config.traffic
        base = draw.uniform(*cfg.base_utilization_range)
        quiet_amp = draw.uniform(*cfg.quiet_bump_range)

        def quiet_profile() -> DiurnalProfile:
            return DiurnalProfile(
                base=base,
                bumps=(DiurnalBump(21.0, 5.0, quiet_amp),),
                utc_offset_hours=utc_offset,
                noise_sigma=cfg.noise_sigma)

        def congested_profile() -> DiurnalProfile:
            amp = draw.uniform(*cfg.congested_peak_range)
            daytime = draw.random() < cfg.daytime_congestion_share
            if daytime:
                bumps = (DiurnalBump(13.5, 5.0, amp),
                         DiurnalBump(21.0, 3.5, amp * 0.6))
            else:
                bumps = (DiurnalBump(21.0, 3.5, amp),)
            return DiurnalProfile(
                base=draw.uniform(0.40, 0.55),
                bumps=bumps,
                utc_offset_hours=utc_offset,
                noise_sigma=cfg.noise_sigma * 1.3)

        downstream_direction = upstream_direction ^ 1
        util.set_profile(link_id, upstream_direction,
                         congested_profile() if upstream_congested
                         else quiet_profile())
        util.set_profile(link_id, downstream_direction,
                         congested_profile() if downstream_congested
                         else quiet_profile())

    def add_story_isp(self, net: GeneratedInternet, name: str,
                      home_city_keys: Sequence[str],
                      peering_city_keys: Optional[Sequence[str]] = None,
                      congestion: Optional[str] = None,
                      parallel: Tuple[int, int] = (2, 4)) -> AS:
        """Add a purpose-built access ISP after generation.

        Scenario builders use this for the paper's named networks: the
        ISP gets PoPs in *home_city_keys*, transit from the nearest
        regional transits, and cloud peering at *peering_city_keys*
        (cloud-side cities; defaults to the home cities).  *congestion*
        is ``None``, ``"evening"``, ``"daytime"``, or ``"allday"`` and
        shapes the ISP-to-cloud direction of every peering link.
        """
        topo = net.topology
        util = net.utilization
        cloud = topo.as_of(net.cloud_asn)
        home = [self.cities.get(k) for k in home_city_keys]
        as_obj = AS(asn=self._take_asn(), name=name,
                    as_type=ASType.ACCESS_ISP, country=home[0].country)
        topo.add_as(as_obj)
        self._allocate_space(as_obj, net.infra_allocators, {})
        self._place_pops(topo, net.infra_allocators, as_obj, home)
        self._build_backbone(topo, util, as_obj,
                             self.config.edge_backbone_gbps,
                             mesh_degree=2, base_range=(0.25, 0.50))
        transits = [topo.as_of(asn) for asn in net.transit_asns]
        tier1s = [topo.as_of(asn) for asn in net.tier1_asns]
        self._buy_transit(topo, util, as_obj, transits, tier1s,
                          n_providers=2)

        peer_cities = list(peering_city_keys or home_city_keys)
        isp_pops = [p for p in topo.pops_of_as(as_obj.asn) if not p.is_host]
        forced_pairs = []
        for key in peer_cities:
            cloud_pop = topo.pop_of_as_in_city(net.cloud_asn, key)
            if cloud_pop is None:
                raise TopologyError(
                    f"cloud has no PoP in {key!r} to peer at")
            nearest_isp = min(isp_pops, key=lambda p: topo.cities[
                p.city_key].point.distance_km(topo.cities[key].point))
            forced_pairs.append((cloud_pop, nearest_isp))
        records = self._connect_interdomain(
            topo, util, cloud, as_obj, RelationshipKind.PEER_TO_PEER,
            n_cities=len(forced_pairs), parallel=parallel,
            capacity_range=self.config.cloud_peering_gbps,
            congest_prob=0.0, subnet_owner_bias=1.0,
            forced_pairs=forced_pairs)

        if congestion is not None:
            net.congested_asns.add(as_obj.asn)
            draw = self.seeds.generator(f"story-{name}")
            for record in records:
                offset = self.cities.get(
                    topo.pop(topo.link(record.link_id).pop_b)
                    .city_key).utc_offset_hours
                util.set_profile(record.link_id, 1, _story_profile(
                    congestion, offset, draw))
        net.access_isp_asns.append(as_obj.asn)
        self._rebind_router_caches(net)
        return as_obj

    def add_cloud_wan(self, net: GeneratedInternet, name: str,
                      city_keys: Sequence[str],
                      asn: Optional[int] = None,
                      backbone_gbps: Optional[Tuple[float, float]] = None,
                      n_transits: int = 2,
                      transit_parallel: Tuple[int, int] = (2, 4),
                      mesh_degree: int = 3) -> AS:
        """Grow another cloud provider's WAN after generation.

        Mirrors the native cloud's construction in :meth:`generate`: a
        CLOUD-type AS with wide address space, PoPs in *city_keys*, a
        meshed backbone (skipped for a single-DC provider with one
        city), and transit from *n_transits* tier-1s with generously
        provisioned gateways (``congest_prob=0.02``) numbered from the
        cloud's own space (``subnet_owner_bias=1.0``), exactly like the
        native cloud's standard-tier transit.  No peering fabric is
        built - providers that sell a peering-backed tier model it via
        their tier table, not extra edges.

        The new AS joins no edge-AS list, so server catalogs and
        vantage-point populations are unaffected; a campaign that never
        routes through the WAN produces the exact same dataset with or
        without it.  Returns the new AS; callers hand ``as_obj.asn`` to
        :class:`~repro.cloud.api.CloudPlatform` as ``cloud_asn``.
        """
        topo = net.topology
        util = net.utilization
        if asn is not None and asn in topo.ases:
            raise TopologyError(
                f"ASN {asn} is already present in this topology")
        cities = [self.cities.get(k) for k in city_keys]
        if not cities:
            raise TopologyError(f"WAN {name!r} needs at least one city")
        as_obj = AS(asn=asn if asn is not None else self._take_asn(),
                    name=name, as_type=ASType.CLOUD,
                    country=cities[0].country)
        topo.add_as(as_obj)
        self._allocate_space(as_obj, net.infra_allocators, {}, wide=True)
        self._place_pops(topo, net.infra_allocators, as_obj, cities)
        if len(cities) > 1:
            self._build_backbone(
                topo, util, as_obj,
                backbone_gbps or self.config.cloud_backbone_gbps,
                mesh_degree=mesh_degree, base_range=(0.20, 0.40))
        tier1s = [topo.as_of(t1_asn) for t1_asn in net.tier1_asns]
        if not tier1s:
            raise TopologyError("no tier-1 carriers to buy transit from")
        n_providers = max(1, min(n_transits, len(tier1s)))
        provider_idx = self._rng.choice(len(tier1s), size=n_providers,
                                        replace=False)
        for idx in provider_idx:
            self._connect_interdomain(
                topo, util, as_obj, tier1s[int(idx)],
                RelationshipKind.CUSTOMER_TO_PROVIDER,
                n_cities=max(1, min(len(cities),
                                    int(self._rng.integers(2, 6)))),
                parallel=transit_parallel,
                capacity_range=self.config.transit_interconnect_gbps,
                congest_prob=0.02,
                subnet_owner_bias=1.0)
        self._rebind_router_caches(net)
        return as_obj

    @staticmethod
    def _rebind_router_caches(net: GeneratedInternet) -> None:
        """Topology changed post-generation; flag for router rebuilds.

        Routing engines built before a story AS was added must call
        :meth:`~repro.netsim.routing.Router.invalidate_caches` (the
        scenario builder constructs CLASP after all stories, so the
        common path needs nothing here).
        """
        # Nothing to do on the net object itself; hook kept for clarity.

    def _buy_transit(self, topo: Topology, util: UtilizationModel,
                     customer: AS, transits: List[AS], tier1s: List[AS],
                     n_providers: int,
                     congested_upstream: bool = False,
                     congest_draw: Optional[np.random.Generator] = None,
                     ) -> None:
        """Connect an edge AS to its transit providers.

        *congested_upstream* marks the customer's uplinks (the
        customer-to-provider direction, which edge-to-cloud traffic
        rides) as under-provisioned - how a congested ISP without
        direct cloud peering expresses its congestion.
        """
        home = topo.pops_of_as(customer.asn)[0]
        home_city = topo.cities[home.city_key]

        def distance_to(provider: AS) -> float:
            pops = [p for p in topo.pops_of_as(provider.asn) if not p.is_host]
            return min(topo.cities[p.city_key].point.distance_km(home_city.point)
                       for p in pops)

        ranked = sorted(transits, key=distance_to)[:6]
        if not ranked:
            ranked = tier1s
        # Nearby providers only: a Frankfurt eyeball does not buy
        # transit hauled in from Melbourne.  Keep providers within
        # 4000 km when any exist; weight the remainder by proximity.
        nearby = [p for p in ranked if distance_to(p) <= 4000.0]
        if nearby:
            ranked = nearby
        distances = np.array([distance_to(p) for p in ranked])
        weights = 1.0 / (300.0 + distances) ** 2
        weights = weights / weights.sum()
        chosen_idx = self._rng.choice(len(ranked),
                                      size=min(n_providers, len(ranked)),
                                      replace=False, p=weights)
        for i in chosen_idx:
            provider = ranked[int(i)]
            self._connect_interdomain(
                topo, util, customer, provider,
                RelationshipKind.CUSTOMER_TO_PROVIDER,
                n_cities=1, parallel=(1, 2),
                capacity_range=self.config.transit_interconnect_gbps,
                congest_prob=self.config.traffic.transit_congested_fraction * 0.5,
                congested_upstream=congested_upstream,
                congest_draw=congest_draw,
                congested_direction=0)

    def _peer_with_cloud(self, topo: Topology, util: UtilizationModel,
                         cloud: AS, edge: AS, is_big: bool,
                         congested: bool,
                         congest_draw: np.random.Generator) -> None:
        cfg = self.config
        if is_big:
            lo, hi = cfg.big_isp_peering_cities
            n_cities = int(self._rng.integers(lo, hi + 1))
            parallel = cfg.big_isp_parallel_links
        else:
            lo, hi = cfg.small_peering_cities
            n_cities = int(self._rng.integers(lo, hi + 1))
            parallel = cfg.small_parallel_links
        self._connect_interdomain(
            topo, util, cloud, edge, RelationshipKind.PEER_TO_PEER,
            n_cities=n_cities, parallel=parallel,
            capacity_range=cfg.cloud_peering_gbps,
            congest_prob=0.0,
            congested_upstream=congested,
            congest_draw=congest_draw,
            subnet_owner_bias=1.0)

    def _make_edge_population(self, topo: Topology, util: UtilizationModel,
                              allocators: Dict[int, PrefixAllocator],
                              announced: Dict[int, List[Prefix]],
                              transits: List[AS], tier1s: List[AS],
                              cloud: AS, congested_asns: Set[int],
                              congest_draw: np.random.Generator,
                              count: int, as_type: ASType,
                              peering_fraction: float,
                              congest_scale: float) -> List[AS]:
        """Create hosting/education/business ASes."""
        cfg = self.config
        out: List[AS] = []
        major = [c for c in self.cities if c.population_weight >= 1.5]
        for i in range(count):
            if as_type is ASType.HOSTING:
                stem = self._rng.choice(_HOSTING_STEMS)
                suffix = self._rng.choice(_HOSTING_SUFFIXES)
                name = f"{stem} {suffix}"
                pool = major
                n_cities = int(self._rng.integers(1, 4))
            elif as_type is ASType.EDUCATION:
                city = self._sample_cities([c for c in self.cities
                                            if c.country == "US"], 1)[0]
                name = f"{city.name} {self._rng.choice(_EDU_SUFFIXES)}"
                pool = [city]
                n_cities = 1
            else:
                stem = self._rng.choice(_ISP_STEMS)
                name = f"{stem} {self._rng.choice(_BIZ_SUFFIXES)}"
                pool = [c for c in self.cities if c.country == "US"]
                n_cities = 1
            as_obj = AS(asn=self._take_asn(), name=name, as_type=as_type)
            topo.add_as(as_obj)
            self._allocate_space(as_obj, allocators, announced)
            chosen = self._sample_cities(pool, n_cities)
            as_obj.country = chosen[0].country
            self._place_pops(topo, allocators, as_obj, chosen)
            self._build_backbone(topo, util, as_obj, cfg.edge_backbone_gbps,
                                 mesh_degree=1, base_range=(0.15, 0.40))
            is_congested = congest_draw.random() < (
                cfg.traffic.congested_fraction * congest_scale)
            if is_congested:
                congested_asns.add(as_obj.asn)
            peers_cloud = self._rng.random() < peering_fraction
            self._buy_transit(topo, util, as_obj, transits, tier1s,
                              n_providers=int(self._rng.integers(1, 3)),
                              congested_upstream=is_congested
                              and not peers_cloud,
                              congest_draw=congest_draw)
            if peers_cloud:
                self._peer_with_cloud(topo, util, cloud, as_obj,
                                      is_big=False,
                                      congested=is_congested,
                                      congest_draw=congest_draw)
            out.append(as_obj)
        return out

