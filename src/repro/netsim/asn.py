"""Autonomous systems and their business relationships.

The synthetic Internet follows the classic Gao–Rexford model: every
interdomain adjacency is either *customer-to-provider* (money flows up)
or *peer-to-peer* (settlement free).  Valley-free routing over these
relationships is implemented in :mod:`repro.netsim.routing`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .addressing import Prefix
from ..errors import ValidationError

__all__ = ["ASType", "RelationshipKind", "ASRelationship", "AS"]


class ASType(enum.Enum):
    """Business category of an AS.

    The categories mirror what the paper's appendix resolves via
    ipinfo.io (ISP / Hosting / Business / Education) plus the structural
    roles the topology generator needs (tier-1 and regional transit,
    cloud, IXP route servers are modelled as peers at shared metros).
    """

    TIER1 = "tier1"              # global transit free of providers
    TRANSIT = "transit"          # regional/national transit provider
    ACCESS_ISP = "isp"           # eyeball/access ISP
    HOSTING = "hosting"          # datacenter / web hosting
    BUSINESS = "business"        # enterprise network
    EDUCATION = "education"      # university / NREN
    CLOUD = "cloud"              # the hyperscale cloud provider
    CDN = "cdn"                  # content network (background traffic)

    @property
    def ipinfo_label(self) -> str:
        """The label an ipinfo-style database would return."""
        mapping = {
            ASType.TIER1: "isp",
            ASType.TRANSIT: "isp",
            ASType.ACCESS_ISP: "isp",
            ASType.HOSTING: "hosting",
            ASType.BUSINESS: "business",
            ASType.EDUCATION: "education",
            ASType.CLOUD: "hosting",
            ASType.CDN: "hosting",
        }
        return mapping[self]


class RelationshipKind(enum.Enum):
    """Directed business relationship between two adjacent ASes."""

    CUSTOMER_TO_PROVIDER = "c2p"
    PEER_TO_PEER = "p2p"

    def reversed(self) -> "RelationshipKind":
        """The relationship as seen from the other endpoint."""
        if self is RelationshipKind.PEER_TO_PEER:
            return self
        return RelationshipKind.CUSTOMER_TO_PROVIDER  # direction encoded by order


@dataclass(frozen=True)
class ASRelationship:
    """A business adjacency: *a* relates to *b* with the given kind.

    For ``CUSTOMER_TO_PROVIDER``, *a* is the customer and *b* the
    provider.  ``PEER_TO_PEER`` is symmetric.
    """

    a: int
    b: int
    kind: RelationshipKind

    def involves(self, asn: int) -> bool:
        return asn in (self.a, self.b)

    def other(self, asn: int) -> int:
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise ValidationError(f"AS{asn} is not part of this relationship")


@dataclass
class AS:
    """An autonomous system in the synthetic topology."""

    asn: int
    name: str
    as_type: ASType
    country: str = "US"
    prefixes: List[Prefix] = field(default_factory=list)
    #: City keys (``"Name, CC"``) where this AS has PoPs.
    pop_cities: List[str] = field(default_factory=list)
    #: Free-form organisation name (what a whois/ipinfo lookup shows).
    org: Optional[str] = None

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValidationError(f"ASN must be positive, got {self.asn}")
        if self.org is None:
            self.org = self.name

    @property
    def is_eyeball(self) -> bool:
        """True for networks that terminate end users."""
        return self.as_type is ASType.ACCESS_ISP

    @property
    def is_transit(self) -> bool:
        """True for networks whose business is carrying others' traffic."""
        return self.as_type in (ASType.TIER1, ASType.TRANSIT)

    def __repr__(self) -> str:
        return f"AS{self.asn}({self.name}, {self.as_type.value})"
