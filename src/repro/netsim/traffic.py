"""Time-varying background traffic on links.

Each link direction carries a :class:`UtilizationModel`: a base load
plus one or more diurnal *bumps* (raised-cosine humps centred on a local
hour), a weekend factor, and reproducible per-hour noise.  The model is
deterministic given the seed tree, so re-running a campaign reproduces
the same congestion events.

The paper's measurement window is the 2020 pandemic: access-ISP
interconnects see both the classic FCC evening peak (7-11 pm local) and
a daytime surge from telecommuting/remote learning.  The generator
assigns *congested* profiles (peak utilization above capacity) to a
configurable fraction of interconnects, which is what produces the
30-70 % of ISPs with detectable congestion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..rng import SeedTree
from ..simclock import is_weekend
from ..units import HOUR
from ..errors import ValidationError

__all__ = ["DiurnalBump", "DiurnalProfile", "UtilizationModel", "TrafficConfig"]


@dataclass(frozen=True)
class DiurnalBump:
    """One raised-cosine load hump.

    ``amplitude`` adds to utilization at the hump centre; the hump spans
    ``+- width_hours`` around ``center_hour`` (in the link's local time)
    and is periodic over the 24-hour day.
    """

    center_hour: float
    width_hours: float
    amplitude: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.center_hour < 24.0:
            raise ValidationError(f"center_hour out of range: {self.center_hour}")
        if self.width_hours <= 0:
            raise ValidationError(f"width_hours must be positive: {self.width_hours}")

    def value(self, local_hour: float) -> float:
        """Contribution of this bump at a (fractional) local hour."""
        delta = abs(local_hour - self.center_hour)
        delta = min(delta, 24.0 - delta)  # periodic distance on the day
        if delta >= self.width_hours:
            return 0.0
        return self.amplitude * 0.5 * (1.0 + math.cos(math.pi * delta / self.width_hours))


#: The FCC's peak-use window is 7 pm - 11 pm local time; we centre the
#: evening bump there.
EVENING_PEAK = 21.0
#: Pandemic telework/remote-learning load is centred on early afternoon.
DAYTIME_PEAK = 13.0


@dataclass(frozen=True)
class DiurnalProfile:
    """Shape of a link direction's background load (before noise)."""

    base: float
    bumps: Tuple[DiurnalBump, ...] = ()
    weekend_factor: float = 0.9
    noise_sigma: float = 0.02
    utc_offset_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValidationError(f"base utilization must be >= 0: {self.base}")
        if self.noise_sigma < 0:
            raise ValidationError(f"noise_sigma must be >= 0: {self.noise_sigma}")

    def mean_utilization(self, ts: float) -> float:
        """Noise-free utilization at simulated time *ts* (UTC seconds)."""
        local = (ts / HOUR + self.utc_offset_hours) % 24.0
        load = self.base + sum(b.value(local) for b in self.bumps)
        if is_weekend(ts, self.utc_offset_hours):
            load *= self.weekend_factor
        return max(0.0, load)

    def peak_mean(self) -> float:
        """The maximum noise-free weekday utilization over the day."""
        return max(self.mean_utilization(h * HOUR + 4 * 86400)  # a weekday
                   for h in range(24))

    @staticmethod
    def quiet(base: float = 0.25, utc_offset_hours: float = 0.0,
              noise_sigma: float = 0.02) -> "DiurnalProfile":
        """A healthy link: mild evening bump, never near capacity."""
        return DiurnalProfile(
            base=base,
            bumps=(DiurnalBump(EVENING_PEAK, 5.0, 0.20),),
            utc_offset_hours=utc_offset_hours,
            noise_sigma=noise_sigma,
        )

    @staticmethod
    def congested_evening(base: float = 0.45, peak_amplitude: float = 0.75,
                          utc_offset_hours: float = 0.0,
                          noise_sigma: float = 0.04) -> "DiurnalProfile":
        """Under-provisioned interconnect: evening peak exceeds capacity."""
        return DiurnalProfile(
            base=base,
            bumps=(DiurnalBump(EVENING_PEAK, 4.0, peak_amplitude),),
            utc_offset_hours=utc_offset_hours,
            noise_sigma=noise_sigma,
        )

    @staticmethod
    def congested_daytime(base: float = 0.45, peak_amplitude: float = 0.70,
                          utc_offset_hours: float = 0.0,
                          noise_sigma: float = 0.04) -> "DiurnalProfile":
        """Pandemic pattern: telework surge overloads the link all day."""
        return DiurnalProfile(
            base=base,
            bumps=(
                DiurnalBump(DAYTIME_PEAK, 6.0, peak_amplitude),
                DiurnalBump(EVENING_PEAK, 4.0, peak_amplitude * 0.6),
            ),
            utc_offset_hours=utc_offset_hours,
            noise_sigma=noise_sigma,
        )


class UtilizationModel:
    """Per-(link, direction) utilization with reproducible hourly noise.

    Noise is drawn lazily, one array of per-hour deviates per link
    direction, from a generator seeded by the link's identity - two
    queries for the same (link, direction, hour) always agree, and the
    realisation is independent of query order.
    """

    #: Number of hourly noise samples kept per (link, direction).  The
    #: campaign is 153 days = 3672 hours; we keep a year to be safe.
    NOISE_HOURS = 24 * 366

    def __init__(self, seeds: SeedTree, origin_ts: float) -> None:
        self._seeds = seeds.child("utilization-noise")
        self._origin = float(origin_ts)
        self._profiles: Dict[Tuple[int, int], DiurnalProfile] = {}
        self._noise: Dict[Tuple[int, int], np.ndarray] = {}
        self._default_profile = DiurnalProfile.quiet()

    @property
    def origin_ts(self) -> float:
        return self._origin

    def set_profile(self, link_id: int, direction: int,
                    profile: DiurnalProfile) -> None:
        """Assign the load shape of one link direction."""
        if direction not in (0, 1):
            raise ValidationError(f"direction must be 0 or 1, got {direction}")
        self._profiles[(link_id, direction)] = profile
        self._noise.pop((link_id, direction), None)

    def set_profile_both(self, link_id: int, profile: DiurnalProfile,
                         reverse: Optional[DiurnalProfile] = None) -> None:
        """Assign forward and (optionally different) reverse profiles."""
        self.set_profile(link_id, 0, profile)
        self.set_profile(link_id, 1, reverse if reverse is not None else profile)

    def profile(self, link_id: int, direction: int) -> DiurnalProfile:
        return self._profiles.get((link_id, direction), self._default_profile)

    def has_profile(self, link_id: int, direction: int) -> bool:
        return (link_id, direction) in self._profiles

    def _noise_array(self, link_id: int, direction: int) -> np.ndarray:
        key = (link_id, direction)
        arr = self._noise.get(key)
        if arr is None:
            # Intentional re-derivation: the noise array is rebuilt from
            # the same label after remove() so utilization stays stable.
            gen = self._seeds.generator(f"link-{link_id}-dir-{direction}",
                                        allow_reuse=True)
            sigma = self.profile(link_id, direction).noise_sigma
            arr = gen.normal(0.0, sigma, size=self.NOISE_HOURS) if sigma > 0 \
                else np.zeros(self.NOISE_HOURS)
            self._noise[key] = arr
        return arr

    def noise_array(self, link_id: int, direction: int) -> np.ndarray:
        """The full per-hour noise realisation of one link direction.

        Exposed (read-only by convention) for the vectorized batch path,
        which indexes many hours at once; mutating the returned array
        would desynchronise scalar and batch evaluation.
        """
        return self._noise_array(link_id, direction)

    def utilization(self, link_id: int, direction: int, ts: float) -> float:
        """Background utilization fraction at *ts* (can exceed 1.0)."""
        profile = self.profile(link_id, direction)
        mean = profile.mean_utilization(ts)
        if profile.noise_sigma <= 0:
            return mean
        hour_idx = int((ts - self._origin) // HOUR) % self.NOISE_HOURS
        noise = float(self._noise_array(link_id, direction)[hour_idx])
        return max(0.0, mean + noise)


@dataclass
class TrafficConfig:
    """Knobs controlling how the generator assigns load profiles.

    ``congested_fraction`` is the probability that an access-ISP
    interconnect receives an over-capacity profile in the *ISP-to-cloud*
    (upstream/ingress) direction - the direction where the paper found
    most congestion.  ``reverse_congested_fraction`` applies to the
    cloud-to-ISP direction.
    """

    congested_fraction: float = 0.30
    reverse_congested_fraction: float = 0.06
    daytime_congestion_share: float = 0.28
    base_utilization_range: Tuple[float, float] = (0.15, 0.45)
    congested_peak_range: Tuple[float, float] = (0.32, 0.72)
    quiet_bump_range: Tuple[float, float] = (0.10, 0.30)
    backbone_base_range: Tuple[float, float] = (0.10, 0.30)
    transit_congested_fraction: float = 0.12
    noise_sigma: float = 0.035

    def __post_init__(self) -> None:
        for name in ("congested_fraction", "reverse_congested_fraction",
                     "daytime_congestion_share", "transit_congested_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} must be in [0, 1], got {value}")
