"""TCP bulk-transfer throughput model.

We use the PFTK model (Padhye, Firoiu, Towsley, Kurose: "Modeling TCP
Throughput: A Simple Model and its Empirical Validation") with the
Mathis square-root law as its small-loss limit.  Web speed tests open
several parallel connections; :func:`multiflow_throughput_mbps`
aggregates the per-flow model and caps the aggregate at the available
path bandwidth.

The model intentionally keeps only first-order effects - loss rate,
RTT, MSS, flow count, receive-window ceiling - because the paper's
phenomena (peak-hour collapse, premium-tier loss inflation, the
200-600 Mbps healthy band) are all driven by those.
"""

from __future__ import annotations

import math

from .. import obs
from ..errors import ValidationError
from ..units import MSS_BYTES, bytes_per_sec_to_mbps, ms_to_s

__all__ = [
    "mathis_throughput_mbps",
    "pftk_throughput_mbps",
    "tcp_throughput_mbps",
    "multiflow_throughput_mbps",
]

#: Default receiver window: 4 MiB, a typical modern autotuned ceiling.
DEFAULT_RWND_BYTES = 4 * 1024 * 1024

#: Default initial retransmission timeout used by the PFTK timeout term.
_RTO_MIN_S = 0.2

#: Loss below this is treated as effectively lossless: the flow is
#: window- or bandwidth-limited instead.
_MIN_LOSS = 1e-7


def mathis_throughput_mbps(rtt_ms: float, loss_rate: float,
                           mss_bytes: int = MSS_BYTES) -> float:
    """Mathis et al. square-root law: ``MSS/RTT * sqrt(3/2) / sqrt(p)``."""
    if rtt_ms <= 0:
        raise ValidationError(f"rtt must be positive, got {rtt_ms}")
    if not 0 <= loss_rate < 1:
        raise ValidationError(f"loss_rate must be in [0, 1), got {loss_rate}")
    p = max(loss_rate, _MIN_LOSS)
    rate_bytes = (mss_bytes / ms_to_s(rtt_ms)) * math.sqrt(1.5 / p)
    return bytes_per_sec_to_mbps(rate_bytes)


def pftk_throughput_mbps(rtt_ms: float, loss_rate: float,
                         mss_bytes: int = MSS_BYTES,
                         rwnd_bytes: int = DEFAULT_RWND_BYTES) -> float:
    """PFTK steady-state throughput including the timeout regime.

    ``B = min(Wmax/RTT, 1 / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2)))``
    in segments per second, with b = 2 (delayed ACKs).
    """
    if rtt_ms <= 0:
        raise ValidationError(f"rtt must be positive, got {rtt_ms}")
    if not 0 <= loss_rate < 1:
        raise ValidationError(f"loss_rate must be in [0, 1), got {loss_rate}")
    rtt_s = ms_to_s(rtt_ms)
    window_limit_bytes_per_s = rwnd_bytes / rtt_s
    p = loss_rate
    if p < _MIN_LOSS:
        return bytes_per_sec_to_mbps(window_limit_bytes_per_s)
    b = 2.0
    t0 = max(_RTO_MIN_S, 4.0 * rtt_s)
    denom = (rtt_s * math.sqrt(2.0 * b * p / 3.0)
             + t0 * min(1.0, 3.0 * math.sqrt(3.0 * b * p / 8.0)) * p * (1.0 + 32.0 * p * p))
    segments_per_s = 1.0 / denom
    rate_bytes = min(window_limit_bytes_per_s, segments_per_s * mss_bytes)
    return bytes_per_sec_to_mbps(rate_bytes)


def tcp_throughput_mbps(rtt_ms: float, loss_rate: float,
                        mss_bytes: int = MSS_BYTES,
                        rwnd_bytes: int = DEFAULT_RWND_BYTES) -> float:
    """Single-flow throughput: PFTK, window-capped."""
    return pftk_throughput_mbps(rtt_ms, loss_rate, mss_bytes, rwnd_bytes)


def multiflow_throughput_mbps(rtt_ms: float, loss_rate: float,
                              n_flows: int,
                              path_avail_mbps: float,
                              mss_bytes: int = MSS_BYTES,
                              rwnd_bytes: int = DEFAULT_RWND_BYTES) -> float:
    """Aggregate throughput of *n_flows* parallel connections on a path.

    The aggregate is the per-flow PFTK rate times the flow count, capped
    by the available path bandwidth: parallel flows multiply the
    loss-limited rate (each flow suffers the loss process independently)
    but cannot exceed what the bottleneck leaves over.
    """
    if n_flows < 1:
        raise ValidationError(f"n_flows must be >= 1, got {n_flows}")
    if path_avail_mbps < 0:
        raise ValidationError(f"path_avail_mbps must be >= 0, got {path_avail_mbps}")
    with obs.span("netsim.tcp.transfer", layer="netsim",
                  n_flows=n_flows) as sp:
        per_flow = tcp_throughput_mbps(rtt_ms, loss_rate, mss_bytes,
                                       rwnd_bytes)
        aggregate = min(per_flow * n_flows, path_avail_mbps)
        sp.annotate(throughput_mbps=round(aggregate, 3),
                    path_limited=per_flow * n_flows > path_avail_mbps)
    obs.inc("netsim.tcp.transfers")
    obs.observe("netsim.tcp.throughput_mbps", aggregate)
    return aggregate
