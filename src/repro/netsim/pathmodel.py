"""End-to-end path performance: compose link states along a route.

:class:`PathPerformanceModel` is the single place where a routed path
plus the traffic model turns into the numbers a transport flow sees:
round-trip time (propagation + queueing on both directions), the data
direction's loss rate, and the available (residual) bandwidth at the
path bottleneck.  The speed test protocol then applies the TCP model
and endpoint rate limits on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .linkstate import LinkObservation, LinkStateEvaluator
from .routing import Route
from .topology import Topology
from ..errors import ValidationError

__all__ = ["PathMetrics", "PathPerformanceModel"]


@dataclass(frozen=True)
class PathMetrics:
    """Transport-relevant state of a forward/reverse path pair at time t.

    The *forward* direction is the direction the bulk data flows; RTT
    includes the reverse direction's propagation and queueing as well.
    """

    rtt_ms: float
    loss_rate: float
    avail_mbps: float
    forward: Tuple[LinkObservation, ...]
    reverse: Tuple[LinkObservation, ...]
    #: Correlated micro-burst loss accumulated on the data direction.
    burst_loss_rate: float = 0.0

    @property
    def measured_loss_rate(self) -> float:
        """What a packet capture counts: smooth plus bursty drops."""
        return min(0.95, 1.0 - (1.0 - self.loss_rate)
                   * (1.0 - self.burst_loss_rate))

    #: How much of the bursty loss TCP "feels": correlated drops inside
    #: one RTT window cost a single multiplicative decrease however
    #: many packets the burst ate, so the throughput-relevant fraction
    #: of burst loss is tiny compared to independent loss.
    BURST_TCP_WEIGHT = 0.002

    @property
    def tcp_effective_loss_rate(self) -> float:
        """Loss rate the (independent-loss) TCP model should be fed."""
        return min(0.95, self.loss_rate
                   + self.BURST_TCP_WEIGHT * self.burst_loss_rate)

    @property
    def bottleneck(self) -> LinkObservation:
        """The forward-direction link with the least residual bandwidth."""
        if not self.forward:
            raise ValidationError("path has no forward links")
        return min(self.forward, key=lambda obs: obs.residual_mbps)

    @property
    def max_forward_utilization(self) -> float:
        """Highest background utilization on the data direction."""
        return max((obs.utilization for obs in self.forward), default=0.0)

    @property
    def congested(self) -> bool:
        """True when any forward link is saturated by background load."""
        return any(obs.saturated for obs in self.forward)


class PathPerformanceModel:
    """Evaluates routed paths against the time-varying traffic model."""

    def __init__(self, topology: Topology,
                 evaluator: LinkStateEvaluator) -> None:
        self._topo = topology
        self._eval = evaluator

    @property
    def topology(self) -> Topology:
        return self._topo

    @property
    def evaluator(self) -> LinkStateEvaluator:
        return self._eval

    def observe_route(self, route: Route, ts: float,
                      reverse: bool = False) -> List[LinkObservation]:
        """Observe every link of *route* in its traversal direction.

        With ``reverse=True`` each link is observed in the opposite
        direction, modelling the ACK/return path when no asymmetric
        reverse route is supplied.
        """
        out: List[LinkObservation] = []
        for link_id, direction in route.links:
            link = self._topo.link(link_id)
            d = direction ^ 1 if reverse else direction
            out.append(self._eval.observe(link, d, ts))
        return out

    def evaluate(self, forward_route: Route, ts: float,
                 reverse_route: Optional[Route] = None) -> PathMetrics:
        """Compute :class:`PathMetrics` for a data path at time *ts*.

        *forward_route* carries the bulk data.  When *reverse_route* is
        omitted the reverse direction is the same links traversed
        backwards; with service tiers the two directions genuinely
        differ and the caller passes the asymmetric return route.
        """
        fwd_obs = self.observe_route(forward_route, ts)
        if reverse_route is None:
            rev_obs = self.observe_route(forward_route, ts, reverse=True)
            rev_prop = forward_route.propagation_delay_ms(self._topo)
        else:
            rev_obs = self.observe_route(reverse_route, ts)
            rev_prop = reverse_route.propagation_delay_ms(self._topo)
        fwd_prop = forward_route.propagation_delay_ms(self._topo)

        rtt = (fwd_prop + rev_prop
               + sum(o.queue_delay_ms for o in fwd_obs)
               + sum(o.queue_delay_ms for o in rev_obs))

        survive = 1.0
        burst_survive = 1.0
        for obs in fwd_obs:
            survive *= (1.0 - obs.loss_rate)
            burst_survive *= (1.0 - obs.burst_loss)
        loss = 1.0 - survive

        avail = min((o.residual_mbps for o in fwd_obs), default=float("inf"))

        return PathMetrics(
            rtt_ms=rtt,
            loss_rate=min(0.95, max(0.0, loss)),
            avail_mbps=avail,
            forward=tuple(fwd_obs),
            reverse=tuple(rev_obs),
            burst_loss_rate=min(0.95, max(0.0, 1.0 - burst_survive)),
        )

    def idle_rtt_ms(self, forward_route: Route,
                    reverse_route: Optional[Route] = None) -> float:
        """Propagation-only RTT (what a quiet-hour ping would converge to)."""
        fwd = forward_route.propagation_delay_ms(self._topo)
        rev = (reverse_route.propagation_delay_ms(self._topo)
               if reverse_route is not None else fwd)
        return fwd + rev
