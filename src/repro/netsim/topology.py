"""City-level network topology: PoPs, links, interfaces, interdomain links.

The granularity is one router per (AS, city) *point of presence*.  Every
link endpoint gets its own interface IP, so traceroute and bdrmap see a
realistic address plan: interdomain link subnets are allocated by one of
the two adjacent ASes (usually, but not always, the non-cloud side),
which is exactly the ambiguity bdrmap-style inference has to resolve.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TopologyError
from ..geo import City
from .addressing import Prefix, PrefixTrie, format_ip
from .asn import AS, ASRelationship, RelationshipKind

__all__ = ["LinkKind", "PoP", "Interface", "Link", "InterdomainLink", "Topology"]


class LinkKind(enum.Enum):
    """What role a link plays in the topology."""

    BACKBONE = "backbone"        # intra-AS long-haul between two PoPs
    INTERDOMAIN = "interdomain"  # border link between two ASes
    ACCESS = "access"            # last-mile aggregation inside an access ISP
    LAN = "lan"                  # server/VM attachment inside a PoP


@dataclass(frozen=True)
class PoP:
    """A node in the forwarding graph.

    Router PoPs (``is_host=False``) are one-per-(AS, city); host PoPs
    model end hosts (speed test servers, cloud VMs) attached to a router
    PoP by a LAN/access link and are exempt from the uniqueness rule.
    """

    pop_id: int
    asn: int
    city_key: str
    loopback_ip: int
    is_host: bool = False

    def __repr__(self) -> str:
        role = "Host" if self.is_host else "PoP"
        return f"{role}({self.pop_id}, AS{self.asn}, {self.city_key})"


@dataclass(frozen=True)
class Interface:
    """A numbered link endpoint owned by a PoP router."""

    ip: int
    pop_id: int
    link_id: int
    #: ASN whose address space the interface IP was allocated from
    #: (NOT necessarily the AS operating the router - that is the crux
    #: of border inference).
    address_asn: int

    def __repr__(self) -> str:
        return f"Interface({format_ip(self.ip)}, pop={self.pop_id})"


@dataclass
class Link:
    """A bidirectional link between two PoPs.

    Capacity is symmetric; utilization may differ per direction (the
    traffic model tracks the two directions separately, keyed by
    ``(link_id, direction)`` where direction 0 is a->b).
    """

    link_id: int
    kind: LinkKind
    pop_a: int
    pop_b: int
    capacity_mbps: float
    delay_ms: float
    iface_a: Optional[Interface] = None
    iface_b: Optional[Interface] = None
    #: Extra *bursty* loss on this link (micro-burst drops): inflates
    #: measured packet loss heavily but, being correlated, degrades
    #: multi-flow TCP throughput far less than independent loss would.
    burst_loss: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise TopologyError(
                f"link {self.link_id} capacity must be positive")
        if self.delay_ms < 0:
            raise TopologyError(f"link {self.link_id} delay must be >= 0")
        if self.pop_a == self.pop_b:
            raise TopologyError(f"link {self.link_id} is a self-loop")

    def other_pop(self, pop_id: int) -> int:
        if pop_id == self.pop_a:
            return self.pop_b
        if pop_id == self.pop_b:
            return self.pop_a
        raise TopologyError(f"PoP {pop_id} not on link {self.link_id}")

    def interface_at(self, pop_id: int) -> Optional[Interface]:
        """Interface on the *pop_id* side of this link."""
        if pop_id == self.pop_a:
            return self.iface_a
        if pop_id == self.pop_b:
            return self.iface_b
        raise TopologyError(f"PoP {pop_id} not on link {self.link_id}")

    def direction_from(self, pop_id: int) -> int:
        """0 when traffic flows a->b starting at *pop_id*, else 1."""
        if pop_id == self.pop_a:
            return 0
        if pop_id == self.pop_b:
            return 1
        raise TopologyError(f"PoP {pop_id} not on link {self.link_id}")


@dataclass(frozen=True)
class InterdomainLink:
    """Ground-truth record of one border link (for generation & tests).

    ``far_ip`` is the interface on the *far* (non-cloud, or generally
    pop_b) side - the address bdrmap reports as the far side of the
    interconnection.
    """

    link_id: int
    near_asn: int
    far_asn: int
    city_key: str
    near_ip: int
    far_ip: int

    def __repr__(self) -> str:
        return (f"InterdomainLink(AS{self.near_asn}<->AS{self.far_asn} "
                f"@ {self.city_key}, far={format_ip(self.far_ip)})")


class Topology:
    """The full synthetic internetwork.

    Owns ASes, PoPs, links, the relationship graph, and the address
    indices that tools (traceroute, bdrmap, prefix-to-AS) query.
    """

    def __init__(self) -> None:
        self._ases: Dict[int, AS] = {}
        self._pops: Dict[int, PoP] = {}
        self._links: Dict[int, Link] = {}
        self._relationships: Dict[Tuple[int, int], RelationshipKind] = {}
        self._pops_of_as: Dict[int, List[int]] = {}
        self._pop_by_as_city: Dict[Tuple[int, str], int] = {}
        self._links_of_pop: Dict[int, List[int]] = {}
        self._interdomain: List[InterdomainLink] = []
        self._interdomain_by_pair: Dict[Tuple[int, int], List[InterdomainLink]] = {}
        self._iface_by_ip: Dict[int, Interface] = {}
        self._next_pop_id = 1
        self._next_link_id = 1
        self.cities: Dict[str, City] = {}
        self._prefix_pops: PrefixTrie[int] = PrefixTrie()

    # ------------------------------------------------------------------
    # construction

    def add_city(self, city: City) -> None:
        """Register a city so PoPs can reference it by key."""
        self.cities[city.key] = city

    def add_as(self, as_obj: AS) -> AS:
        if as_obj.asn in self._ases:
            raise TopologyError(f"duplicate ASN {as_obj.asn}")
        self._ases[as_obj.asn] = as_obj
        self._pops_of_as[as_obj.asn] = []
        return as_obj

    def add_pop(self, asn: int, city_key: str, loopback_ip: int) -> PoP:
        if asn not in self._ases:
            raise TopologyError(f"unknown ASN {asn}")
        if city_key not in self.cities:
            raise TopologyError(f"unknown city {city_key!r}")
        key = (asn, city_key)
        if key in self._pop_by_as_city:
            raise TopologyError(f"AS{asn} already has a PoP in {city_key}")
        pop = PoP(self._next_pop_id, asn, city_key, loopback_ip)
        self._next_pop_id += 1
        self._pops[pop.pop_id] = pop
        self._pops_of_as[asn].append(pop.pop_id)
        self._pop_by_as_city[key] = pop.pop_id
        self._links_of_pop[pop.pop_id] = []
        self._ases[asn].pop_cities.append(city_key)
        return pop

    def add_host(self, asn: int, attach_pop_id: int, host_ip: int,
                 capacity_mbps: float, delay_ms: float = 0.1,
                 kind: LinkKind = LinkKind.LAN) -> PoP:
        """Attach an end host (server/VM) to a router PoP.

        Returns the host's PoP node; the access link is created with the
        host's IP on the host side so traceroutes terminate at the
        host address.
        """
        attach = self.pop(attach_pop_id)
        if attach.is_host:
            raise TopologyError("cannot attach a host to another host")
        if asn not in self._ases:
            raise TopologyError(f"unknown ASN {asn}")
        host = PoP(self._next_pop_id, asn, attach.city_key, host_ip,
                   is_host=True)
        self._next_pop_id += 1
        self._pops[host.pop_id] = host
        self._pops_of_as[asn].append(host.pop_id)
        self._links_of_pop[host.pop_id] = []
        self.add_link(kind, attach_pop_id, host.pop_id,
                      capacity_mbps, delay_ms,
                      ip_b=host_ip, address_asn=asn)
        return host

    def add_link(self, kind: LinkKind, pop_a: int, pop_b: int,
                 capacity_mbps: float, delay_ms: float,
                 ip_a: Optional[int] = None, ip_b: Optional[int] = None,
                 address_asn: Optional[int] = None) -> Link:
        """Create a link; optionally number both endpoint interfaces.

        *address_asn* records which AS's space the link subnet came
        from; it defaults to the AS of ``pop_a``.
        """
        for pid in (pop_a, pop_b):
            if pid not in self._pops:
                raise TopologyError(f"unknown PoP {pid}")
        link = Link(self._next_link_id, kind, pop_a, pop_b,
                    capacity_mbps, delay_ms)
        self._next_link_id += 1
        owner = address_asn if address_asn is not None else self._pops[pop_a].asn
        if ip_a is not None:
            link.iface_a = self._register_interface(ip_a, pop_a, link.link_id, owner)
        if ip_b is not None:
            link.iface_b = self._register_interface(ip_b, pop_b, link.link_id, owner)
        self._links[link.link_id] = link
        self._links_of_pop[pop_a].append(link.link_id)
        self._links_of_pop[pop_b].append(link.link_id)
        return link

    def _register_interface(self, ip: int, pop_id: int, link_id: int,
                            address_asn: int) -> Interface:
        if ip in self._iface_by_ip:
            raise TopologyError(f"duplicate interface IP {format_ip(ip)}")
        iface = Interface(ip, pop_id, link_id, address_asn)
        self._iface_by_ip[ip] = iface
        return iface

    def register_interdomain(self, record: InterdomainLink) -> None:
        """Record ground truth for a border link (generator only)."""
        self._interdomain.append(record)
        pair = (record.near_asn, record.far_asn)
        self._interdomain_by_pair.setdefault(pair, []).append(record)

    def add_relationship(self, rel: ASRelationship) -> None:
        for asn in (rel.a, rel.b):
            if asn not in self._ases:
                raise TopologyError(f"unknown ASN {asn} in relationship")
        if rel.kind is RelationshipKind.PEER_TO_PEER:
            key = (min(rel.a, rel.b), max(rel.a, rel.b))
            self._relationships[key] = RelationshipKind.PEER_TO_PEER
        else:
            # Stored with orientation: (customer, provider).
            self._relationships[(rel.a, rel.b)] = RelationshipKind.CUSTOMER_TO_PROVIDER

    # ------------------------------------------------------------------
    # lookups

    @property
    def ases(self) -> Dict[int, AS]:
        return self._ases

    @property
    def pops(self) -> Dict[int, PoP]:
        return self._pops

    @property
    def links(self) -> Dict[int, Link]:
        return self._links

    def as_of(self, asn: int) -> AS:
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown ASN {asn}") from None

    def pop(self, pop_id: int) -> PoP:
        try:
            return self._pops[pop_id]
        except KeyError:
            raise TopologyError(f"unknown PoP {pop_id}") from None

    def link(self, link_id: int) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id}") from None

    def pops_of_as(self, asn: int) -> List[PoP]:
        return [self._pops[pid] for pid in self._pops_of_as.get(asn, [])]

    def pop_of_as_in_city(self, asn: int, city_key: str) -> Optional[PoP]:
        pid = self._pop_by_as_city.get((asn, city_key))
        return None if pid is None else self._pops[pid]

    def links_of_pop(self, pop_id: int) -> List[Link]:
        return [self._links[lid] for lid in self._links_of_pop.get(pop_id, [])]

    def neighbors(self, asn: int) -> Set[int]:
        """ASes adjacent to *asn* via at least one interdomain link."""
        out: Set[int] = set()
        for (a, b), _kind in self._relationships.items():
            if a == asn:
                out.add(b)
            elif b == asn:
                out.add(a)
        return out

    def is_customer(self, a: int, b: int) -> bool:
        """True when *a* buys transit from *b*."""
        return (self._relationships.get((a, b))
                is RelationshipKind.CUSTOMER_TO_PROVIDER)

    def is_peer(self, a: int, b: int) -> bool:
        """True when *a* and *b* peer settlement-free."""
        key = (min(a, b), max(a, b))
        return self._relationships.get(key) is RelationshipKind.PEER_TO_PEER

    def are_adjacent(self, a: int, b: int) -> bool:
        """True when any business relationship exists between the two."""
        return self.is_customer(a, b) or self.is_customer(b, a) or self.is_peer(a, b)

    def providers_of(self, asn: int) -> Set[int]:
        return {b for (a, b), k in self._relationships.items()
                if a == asn and k is RelationshipKind.CUSTOMER_TO_PROVIDER}

    def customers_of(self, asn: int) -> Set[int]:
        return {a for (a, b), k in self._relationships.items()
                if b == asn and k is RelationshipKind.CUSTOMER_TO_PROVIDER}

    def peers_of(self, asn: int) -> Set[int]:
        out = set()
        for (a, b), k in self._relationships.items():
            if k is RelationshipKind.PEER_TO_PEER and asn in (a, b):
                out.add(b if a == asn else a)
        return out

    def interdomain_links(self, near_asn: Optional[int] = None) -> List[InterdomainLink]:
        """Ground-truth border links, optionally filtered by near AS."""
        if near_asn is None:
            return list(self._interdomain)
        return [r for r in self._interdomain if r.near_asn == near_asn]

    def interdomain_between(self, a: int, b: int) -> List[InterdomainLink]:
        return list(self._interdomain_by_pair.get((a, b), [])) + \
            list(self._interdomain_by_pair.get((b, a), []))

    def register_announced_prefix(self, prefix: Prefix, pop_id: int) -> None:
        """Associate an announced prefix with the PoP that originates it.

        Probing tools use this to aim a traceroute at "an address in
        prefix P" - the probe is routed toward the announcing PoP.
        """
        if pop_id not in self._pops:
            raise TopologyError(f"unknown PoP {pop_id}")
        self._prefix_pops.insert(prefix, pop_id)

    def resolve_ip_to_pop(self, ip: int) -> Optional[PoP]:
        """The PoP a probe to *ip* lands on (interface, host, or prefix)."""
        iface = self._iface_by_ip.get(ip)
        if iface is not None:
            return self._pops[iface.pop_id]
        pop_id = self._prefix_pops.lookup(ip)
        return None if pop_id is None else self._pops[pop_id]

    def announced_prefixes(self) -> List[Tuple[Prefix, int]]:
        """All (announced prefix, origin PoP id) pairs."""
        return sorted(self._prefix_pops.items(),
                      key=lambda item: (item[0].network, item[0].length))

    def interface_by_ip(self, ip: int) -> Optional[Interface]:
        return self._iface_by_ip.get(ip)

    def operator_of_ip(self, ip: int) -> Optional[int]:
        """ASN actually operating the router that owns interface *ip*."""
        iface = self._iface_by_ip.get(ip)
        if iface is None:
            return None
        return self._pops[iface.pop_id].asn

    def aliases_of(self, ip: int) -> Set[int]:
        """All interface IPs on the same router as *ip* (incl. loopback)."""
        iface = self._iface_by_ip.get(ip)
        if iface is None:
            return set()
        pop = self._pops[iface.pop_id]
        out = {pop.loopback_ip}
        for link in self.links_of_pop(pop.pop_id):
            for side in (link.iface_a, link.iface_b):
                if side is not None and side.pop_id == pop.pop_id:
                    out.add(side.ip)
        return out

    def city_of_pop(self, pop_id: int) -> City:
        pop = self.pop(pop_id)
        return self.cities[pop.city_key]

    # ------------------------------------------------------------------
    # integrity

    def validate(self) -> None:
        """Raise :class:`TopologyError` on structural inconsistencies."""
        for link in self._links.values():
            if link.pop_a not in self._pops or link.pop_b not in self._pops:
                raise TopologyError(f"link {link.link_id} has dangling PoP")
            if link.kind is LinkKind.INTERDOMAIN:
                asn_a = self._pops[link.pop_a].asn
                asn_b = self._pops[link.pop_b].asn
                if asn_a == asn_b:
                    raise TopologyError(
                        f"interdomain link {link.link_id} joins AS{asn_a} to itself")
        for record in self._interdomain:
            if record.link_id not in self._links:
                raise TopologyError(
                    f"interdomain record references missing link {record.link_id}")

    def stats(self) -> Dict[str, int]:
        """Summary counts, handy for logging and calibration tests."""
        return {
            "ases": len(self._ases),
            "pops": len(self._pops),
            "links": len(self._links),
            "interdomain_links": len(self._interdomain),
            "relationships": len(self._relationships),
        }
