"""``repro.lint`` - whole-program invariant checker for the codebase.

The reproduction's headline claim (bit-for-bit reproducibility from one
integer seed) rests on conventions that ordinary tests cannot enforce:

* all randomness flows through :class:`repro.rng.SeedTree`,
* all unit conversions flow through :mod:`repro.units`,
* all raised errors derive from :class:`repro.errors.ReproError`,
* imports respect the ``netsim -> cloud -> tools -> core -> experiments``
  layering.

This package is a self-contained static-analysis pass over the repo's
own source, built on :mod:`ast`, in two layers:

* **per-file rules** (``RPR001`` ... ``RPR008``) see one parsed module
  at a time;
* **cross-file rules** (``RPR009`` ... ``RPR012``) consume a
  :class:`~repro.lint.index.ProjectIndex` - the whole ``src/`` tree
  distilled into per-file facts (module graph, symbol table, SeedTree
  label sites, event taxonomy) - and check shard-safety invariants no
  single file can witness: mutable module state, unordered iteration,
  RNG label collisions, and event-handler exhaustiveness.

Violations are reported as :class:`Finding` records and gated in CI by
``tests/test_lint_clean.py``.  Individual lines opt out with a
``# repro: noqa RPRxxx`` comment; grandfathered findings live in a
checked-in baseline file (``lint-baseline.txt``).  Results are cached
incrementally by content hash, so warm runs only re-analyze files that
changed.

Run it as ``python -m repro.lint [paths]`` or ``repro lint``; add
``--graph`` for the import graph and ``--format json|sarif`` for
machine-readable output.
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .cache import LintCache, content_key
from .engine import (LintResult, ModuleContext, lint_file, lint_sources,
                     lint_text, run)
from .findings import Finding
from .index import FileFacts, ProjectIndex, extract_facts
from .output import findings_to_json, findings_to_sarif, render_module_graph
from .rules import LAYERS, Rule, all_rules, get_rule
from .xrules import SHARD_SAFE_GLOBALS, shard_safe_globals

__all__ = [
    "Finding",
    "FileFacts",
    "LintCache",
    "LintResult",
    "ModuleContext",
    "ProjectIndex",
    "Rule",
    "LAYERS",
    "SHARD_SAFE_GLOBALS",
    "all_rules",
    "content_key",
    "extract_facts",
    "findings_to_json",
    "findings_to_sarif",
    "get_rule",
    "lint_file",
    "lint_sources",
    "lint_text",
    "load_baseline",
    "render_module_graph",
    "run",
    "shard_safe_globals",
    "write_baseline",
]
