"""``repro.lint`` - AST-based invariant checker for the repro codebase.

The reproduction's headline claim (bit-for-bit reproducibility from one
integer seed) rests on conventions that ordinary tests cannot enforce:

* all randomness flows through :class:`repro.rng.SeedTree`,
* all unit conversions flow through :mod:`repro.units`,
* all raised errors derive from :class:`repro.errors.ReproError`,
* imports respect the ``netsim -> cloud -> tools -> core -> experiments``
  layering.

This package is a self-contained static-analysis pass over the repo's
own source, built on :mod:`ast`.  Each invariant is a registered rule
with a stable code (``RPR001`` ... ``RPR006``); violations are reported
as :class:`Finding` records and gated in CI by
``tests/test_lint_clean.py``.  Individual lines opt out with a
``# repro: noqa RPRxxx`` comment; grandfathered findings live in a
checked-in baseline file (``lint-baseline.txt``).

Run it as ``python -m repro.lint [paths]`` or ``repro lint``.
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .engine import LintResult, ModuleContext, lint_file, lint_text, run
from .findings import Finding
from .rules import LAYERS, Rule, all_rules, get_rule

__all__ = [
    "Finding",
    "LintResult",
    "ModuleContext",
    "Rule",
    "LAYERS",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_text",
    "run",
    "load_baseline",
    "write_baseline",
]
