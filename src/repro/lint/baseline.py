"""Checked-in baseline of grandfathered findings.

The baseline file lets the linter become a CI gate immediately even if
some findings are deliberately exempt: known findings are recorded once
and only *new* findings fail the build.  Format, one entry per line::

    # comments and blank lines are ignored
    src/repro/tools/legacy.py:42:RPR003
    src/repro/tools/legacy.py:*:RPR002     # any line of that file

``*`` in the line field matches every line, which keeps an entry valid
across unrelated edits to the file.  Paths use forward slashes and are
relative to the repository root (the directory the linter runs from).

Every entry must carry a trailing ``#`` comment explaining why it is
exempt rather than fixed - :func:`load_baseline` rejects bare entries,
so an unexplained exemption cannot survive a CI run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Set

from ..errors import ConfigError
from .findings import Finding

__all__ = ["load_baseline", "matches_baseline", "write_baseline"]


def load_baseline(path: "Path | str") -> Set[str]:
    """Read *path* and return the set of ``path:line:code`` keys.

    Raises :class:`~repro.errors.ConfigError` for an entry without a
    trailing justification comment: the baseline is a list of debts,
    and a debt nobody can explain is a debt nobody will ever pay.
    """
    entries: Set[str] = set()
    text = Path(path).read_text(encoding="utf-8")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line, sep, comment = raw.partition("#")
        line = line.strip()
        if not line:
            continue
        if not sep or not comment.strip():
            raise ConfigError(
                f"{path}:{lineno}: baseline entry {line!r} has no "
                f"justification comment; append `# why this is exempt`")
        entries.add(line)
    return entries


def matches_baseline(baseline: Set[str], finding: Finding) -> bool:
    """True if *finding* is covered by an exact or wildcard-line entry."""
    if finding.baseline_key() in baseline:
        return True
    return f"{finding.path}:*:{finding.code}" in baseline


def write_baseline(path: "Path | str", findings: Iterable[Finding]) -> int:
    """Write the baseline for *findings* to *path*; returns entry count.

    Entries are exact ``path:line:code`` keys; hand-edit to ``*`` lines
    (and add an explanatory comment) for entries meant to live long.
    """
    keys = sorted({f.baseline_key() for f in findings})
    header = (
        "# repro.lint baseline - grandfathered findings, one per line.\n"
        "# Format: path:line:code ('*' as line matches any line).\n"
        "# Every entry must carry a comment explaining why it is exempt.\n"
    )
    body = "".join(f"{key}  # TODO: justify or fix\n" for key in keys)
    Path(path).write_text(header + body, encoding="utf-8")
    return len(keys)
