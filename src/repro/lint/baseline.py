"""Checked-in baseline of grandfathered findings.

The baseline file lets the linter become a CI gate immediately even if
some findings are deliberately exempt: known findings are recorded once
and only *new* findings fail the build.  Format, one entry per line::

    # comments and blank lines are ignored
    src/repro/tools/legacy.py:42:RPR003
    src/repro/tools/legacy.py:*:RPR002     # any line of that file

``*`` in the line field matches every line, which keeps an entry valid
across unrelated edits to the file.  Paths use forward slashes and are
relative to the repository root (the directory the linter runs from).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Set

from .findings import Finding

__all__ = ["load_baseline", "matches_baseline", "write_baseline"]


def load_baseline(path: "Path | str") -> Set[str]:
    """Read *path* and return the set of ``path:line:code`` keys."""
    entries: Set[str] = set()
    text = Path(path).read_text(encoding="utf-8")
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        entries.add(line)
    return entries


def matches_baseline(baseline: Set[str], finding: Finding) -> bool:
    """True if *finding* is covered by an exact or wildcard-line entry."""
    if finding.baseline_key() in baseline:
        return True
    return f"{finding.path}:*:{finding.code}" in baseline


def write_baseline(path: "Path | str", findings: Iterable[Finding]) -> int:
    """Write the baseline for *findings* to *path*; returns entry count.

    Entries are exact ``path:line:code`` keys; hand-edit to ``*`` lines
    (and add an explanatory comment) for entries meant to live long.
    """
    keys = sorted({f.baseline_key() for f in findings})
    header = (
        "# repro.lint baseline - grandfathered findings, one per line.\n"
        "# Format: path:line:code ('*' as line matches any line).\n"
        "# Every entry should carry a comment explaining why it is exempt.\n"
    )
    body = "".join(key + "\n" for key in keys)
    Path(path).write_text(header + body, encoding="utf-8")
    return len(keys)
