"""The :class:`Finding` record emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Ordering is (path, line, code, message) so sorted output groups by
    file and reads top to bottom.
    """

    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        """Render in the conventional ``path:line: CODE message`` shape."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def baseline_key(self) -> str:
        """The ``path:line:code`` key used by the baseline file."""
        return f"{self.path}:{self.line}:{self.code}"
