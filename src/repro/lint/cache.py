"""Incremental lint cache keyed on file content hashes.

Linting is pure: the findings and the :class:`~repro.lint.index.FileFacts`
of a file are functions of nothing but its content, the rule set, and
the fact-extraction version.  The cache exploits that - per display
path it stores ``(content sha256, findings, facts)`` and a warm run
skips parsing and the per-file rule pass entirely for unchanged files.
Cross-file rules still run every time, but they consume cached facts,
so a fully-warm run does no parsing at all.

The cache key is salted with :data:`repro.lint.index.FACTS_VERSION`
and the registered rule codes, so adding or changing a rule invalidates
every entry instead of silently serving stale findings.  A corrupt or
version-mismatched cache file is treated as empty, never as an error:
the cache can only ever make a lint run faster, not wrong.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding
from .index import FACTS_VERSION, FileFacts

__all__ = ["LintCache", "content_key"]

_CACHE_FORMAT = 1


def _salt(select: Optional[Sequence[str]]) -> str:
    """Cache salt covering everything besides file content."""
    from .rules import all_rules

    parts = [f"format={_CACHE_FORMAT}", f"facts={FACTS_VERSION}",
             "rules=" + ",".join(r.code for r in all_rules()),
             "select=" + (",".join(sorted(select)) if select else "*")]
    return "|".join(parts)


def content_key(source: str, select: Optional[Sequence[str]] = None) -> str:
    """Digest identifying (file content, rule configuration)."""
    blob = (_salt(select) + "\x00" + source).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class LintCache:
    """Load/store per-file lint results in one JSON file."""

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self._entries: Dict[str, Dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("format") != _CACHE_FORMAT:
            return
        entries = data.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, display: str, key: str
            ) -> Optional[Tuple[List[Finding], FileFacts]]:
        """Cached (findings, facts) for *display*, or None on miss."""
        entry = self._entries.get(display)
        if not entry or entry.get("key") != key:
            self.misses += 1
            return None
        try:
            findings = [Finding(f[0], f[1], f[2], f[3])
                        for f in entry["findings"]]
            facts = FileFacts.from_dict(entry["facts"])
        except (KeyError, IndexError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, facts

    def put(self, display: str, key: str, findings: Sequence[Finding],
            facts: FileFacts) -> None:
        self._entries[display] = {
            "key": key,
            "findings": [[f.path, f.line, f.code, f.message]
                         for f in findings],
            "facts": facts.to_dict(),
        }
        self._dirty = True

    def prune(self, keep: Sequence[str]) -> None:
        """Drop entries for files that no longer exist in the target."""
        kept = set(keep)
        stale = [name for name in self._entries if name not in kept]
        for name in stale:
            del self._entries[name]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"format": _CACHE_FORMAT, "files": self._entries}
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True),
                       encoding="utf-8")
        tmp.replace(self.path)
        self._dirty = False
