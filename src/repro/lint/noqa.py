"""Per-line suppression directives.

A source line opts out of linting with a trailing comment:

* ``# repro: noqa`` suppresses every rule on that line,
* ``# repro: noqa RPR001`` suppresses one code,
* ``# repro: noqa RPR001,RPR004`` (comma- or space-separated)
  suppresses several.

Directives are deliberately namespaced under ``repro:`` so they never
collide with flake8/ruff ``# noqa`` handling.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional

__all__ = ["NoqaDirectives", "parse_noqa"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b"          # the directive itself
    r"(?::?\s*(?P<codes>[A-Z]{3}\d{3}(?:[,\s]+[A-Z]{3}\d{3})*))?",
)

#: Sentinel meaning "every code is suppressed on this line".
ALL_CODES: FrozenSet[str] = frozenset({"*"})


def parse_noqa(line: str) -> Optional[FrozenSet[str]]:
    """Return the set of codes suppressed by *line*, or ``None``.

    A bare directive returns :data:`ALL_CODES`.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return ALL_CODES
    return frozenset(c for c in re.split(r"[,\s]+", codes) if c)


class NoqaDirectives:
    """All suppression directives of one source file, by line number."""

    def __init__(self, source_lines: List[str]) -> None:
        self._by_line: Dict[int, FrozenSet[str]] = {}
        for idx, text in enumerate(source_lines, start=1):
            codes = parse_noqa(text)
            if codes is not None:
                self._by_line[idx] = codes

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self._by_line.get(line)
        if codes is None:
            return False
        return codes is ALL_CODES or code in codes

    def as_map(self) -> Dict[int, List[str]]:
        """Plain ``{line: [codes]}`` view (``"*"`` = every code).

        This is the serializable shape carried in
        :class:`~repro.lint.index.FileFacts`, so cross-file findings on
        cache-hit files still honor their suppressions.
        """
        return {line: sorted(codes)
                for line, codes in self._by_line.items()}

    def __len__(self) -> int:
        return len(self._by_line)
