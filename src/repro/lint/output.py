"""Machine- and human-readable renderings of a lint run.

Three output shapes besides the default one-line-per-finding text:

* :func:`findings_to_json` - a compact dict for scripting
  (``repro lint --format json | python -m json.tool``),
* :func:`findings_to_sarif` - a SARIF 2.1.0 log so CI systems and
  editors that speak SARIF can ingest findings without a custom parser
  (baselined findings are carried along as external suppressions),
* :func:`render_module_graph` - the project import graph with layers
  and cycle diagnostics (``repro lint --graph``).

Everything here is a pure function of the :class:`~repro.lint.engine.
LintResult`; nothing touches the filesystem.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .findings import Finding
from .index import ProjectIndex
from .rules import all_rules

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "findings_to_json",
           "findings_to_sarif", "render_module_graph"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _finding_dict(finding: Finding) -> Dict[str, Any]:
    return {"path": finding.path, "line": finding.line,
            "code": finding.code, "message": finding.message}


def findings_to_json(findings: Sequence[Finding],
                     baselined: Sequence[Finding] = (),
                     files_checked: int = 0,
                     files_reused: int = 0) -> str:
    """The whole run as one JSON document (stable key order)."""
    payload = {
        "files_checked": files_checked,
        "files_reused": files_reused,
        "findings": [_finding_dict(f) for f in findings],
        "baselined": [_finding_dict(f) for f in baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_to_sarif(findings: Sequence[Finding],
                      baselined: Sequence[Finding] = ()) -> str:
    """The run as a SARIF 2.1.0 log (one run, one driver).

    Every registered rule appears in ``tool.driver.rules`` whether or
    not it fired, so ``ruleIndex`` is stable across runs; baselined
    findings become results carrying an ``external`` suppression.
    """
    rules = all_rules()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}

    def result(finding: Finding, suppressed: bool) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": finding.line},
                },
            }],
        }
        if suppressed:
            entry["suppressions"] = [{"kind": "external"}]
        return entry

    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro.lint",
                "rules": [{
                    "id": rule.code,
                    "name": rule.name,
                    "shortDescription": {"text": rule.summary},
                } for rule in rules],
            }},
            "results": ([result(f, False) for f in findings]
                        + [result(f, True) for f in baselined]),
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def render_module_graph(index: ProjectIndex) -> str:
    """Human-readable import graph: one module per line, with layer
    tags, internal dependencies, and a cycle verdict at the end."""
    graph = index.module_graph()
    lines: List[str] = []
    for module in sorted(graph):
        layer = index.layer_of(module)
        tag = f" [{layer}]" if layer else ""
        lines.append(f"{module}{tag}")
        for target in graph[module]:
            lines.append(f"  -> {target}")
    cycles = index.import_cycles()
    lines.append("")
    if cycles:
        lines.append(f"{len(cycles)} import cycle(s):")
        for cycle in cycles:
            lines.append("  " + " <-> ".join(cycle))
    else:
        lines.append(f"{len(graph)} modules, no import cycles")
    return "\n".join(lines)
