"""Command line for the invariant checker.

``python -m repro.lint [paths] [--select CODES] [--baseline FILE]
[--format text|json|sarif] [--graph]``

Exit status is 0 when every finding is suppressed or baselined, 1 when
actionable findings remain, 2 on usage errors (nonexistent target, a
target with no Python files, unknown rule code), so the command slots
directly into CI.

Runs are incremental by default: per-file results are cached in
``.repro-lint-cache.json`` keyed on content hashes, and unchanged
files skip parsing entirely (``--no-cache`` opts out, ``--cache FILE``
relocates the cache).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ReproError
from .baseline import write_baseline
from .engine import run
from .output import (findings_to_json, findings_to_sarif,
                     render_module_graph)
from .rules import all_rules

__all__ = ["DEFAULT_CACHE", "build_parser", "main"]

#: Where incremental per-file results live unless ``--cache`` says else.
DEFAULT_CACHE = ".repro-lint-cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based invariant checker for the repro codebase.")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="FILE", type=Path,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", metavar="FILE", type=Path,
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--root", metavar="DIR", type=Path,
                        help="directory findings paths are relative to "
                             "(default: current directory)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--graph", action="store_true",
                        help="print the module import graph (with layer "
                             "tags and cycle verdict) instead of findings")
    parser.add_argument("--cache", metavar="FILE", type=Path,
                        default=Path(DEFAULT_CACHE),
                        help=f"incremental result cache "
                             f"(default: {DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding output; summary only")
    return parser


def _print_rules() -> None:
    for rule in all_rules():
        scope = " (cross-file)" if rule.scope == "project" else ""
        print(f"{rule.code}  {rule.name}{scope}")
        print(f"        {rule.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0

    select = ([code.strip() for code in args.select.split(",") if code.strip()]
              if args.select else None)
    cache = None if args.no_cache else args.cache
    try:
        result = run(args.paths, select=select, baseline=args.baseline,
                     root=args.root, cache=cache)
    except ReproError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        count = write_baseline(args.write_baseline,
                               result.findings + result.baselined)
        print(f"wrote {count} baseline entries to {args.write_baseline}")
        return 0

    if args.graph:
        if result.index is None:
            print("repro.lint: error: --graph needs at least one "
                  "cross-file rule selected", file=sys.stderr)
            return 2
        print(render_module_graph(result.index))
        return 0 if result.ok else 1

    if args.fmt == "json":
        print(findings_to_json(result.findings, result.baselined,
                               files_checked=result.files_checked,
                               files_reused=result.files_reused))
        return 0 if result.ok else 1
    if args.fmt == "sarif":
        print(findings_to_sarif(result.findings, result.baselined))
        return 0 if result.ok else 1

    if not args.quiet:
        for finding in result.findings:
            print(finding.format())
    status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    suffix = (f", {len(result.baselined)} baselined"
              if result.baselined else "")
    if result.files_reused:
        suffix += f", {result.files_reused} cached"
    print(f"repro.lint: {status} in {result.files_checked} file(s){suffix}")
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
