"""Whole-program project index for cross-file lint rules.

The per-file rules in :mod:`repro.lint.rules` see one module at a time,
which is blind to exactly the hazards that matter for sharded execution:
shared mutable module state, duplicate :class:`~repro.rng.SeedTree`
labels in different files, and event taxonomies that drift out of sync
with their observers.  This module closes that gap in two stages:

1. :func:`extract_facts` distils one parsed module into a
   :class:`FileFacts` record - imports, module-level bindings, mutation
   sites, set-iteration sites, seed-label call sites, and class shapes.
   Facts are plain data (round-trippable through :meth:`FileFacts.to_dict`
   / :meth:`FileFacts.from_dict`), which is what lets the incremental
   cache skip re-parsing unchanged files entirely.
2. :class:`ProjectIndex` stitches the facts of every file into the
   whole-program view: the internal module graph (with cycle detection;
   ``if TYPE_CHECKING:`` imports are excluded), a symbol table resolving
   imported names back to their defining module, the subclass closure,
   and the seed-label table.

Cross-file rules (``RPR009`` ... ``RPR012`` in :mod:`repro.lint.xrules`)
consume only the index, never raw ASTs, so they run identically from
fresh parses and from cached facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List, Mapping,
                    Optional, Sequence, Set, Tuple)

from .rules import (LAYERS, _import_aliases, _imported_modules,
                    _module_layer, _resolve_relative)

if TYPE_CHECKING:  # pragma: no cover - engine imports index at runtime
    from .engine import ModuleContext

__all__ = [
    "ClassFacts",
    "FileFacts",
    "IterationSite",
    "LabelSite",
    "ProjectIndex",
    "SymbolBinding",
    "extract_facts",
]

#: Bump when the shape of FileFacts (or fact extraction) changes, so
#: stale cache entries are discarded rather than misread.
FACTS_VERSION = 2

#: Constructor calls whose result is a mutable container.
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.Counter",
    "collections.deque", "collections.OrderedDict",
    "Counter", "defaultdict", "deque", "OrderedDict",
})

#: Constructor calls / literals whose result is an (unordered) set.
_SET_CALLS = frozenset({"set", "frozenset"})

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "sort", "reverse",
    "add", "discard", "update", "clear", "pop", "popitem",
    "setdefault", "appendleft", "extendleft", "popleft",
})

#: Set methods whose *result* is a new set (iterating it is unordered).
_SET_PRODUCING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})

#: Calls that consume an iterable order-insensitively, so feeding them
#: a set (directly or via a generator expression) cannot leak ordering.
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all",
    "len", "Counter", "collections.Counter",
})


# --------------------------------------------------------------------------
# fact records
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolBinding:
    """One module-level binding."""

    name: str
    line: int
    #: ``"set"`` / ``"dict"`` / ``"list"`` / ``"bytearray"`` /
    #: ``"other-mutable"`` for mutable containers, ``"class"`` /
    #: ``"function"`` / ``"constant"`` / ``"other"`` otherwise.
    kind: str
    #: String elements when the bound value is a literal collection of
    #: string constants (used by RPR012 for OPAQUE_FIELDS and friends).
    strings: Tuple[str, ...] = ()

    @property
    def mutable(self) -> bool:
        return self.kind in ("set", "dict", "list", "bytearray",
                             "other-mutable")


@dataclass(frozen=True)
class IterationSite:
    """One loop/comprehension that iterates a possibly-unordered value.

    ``symbol`` is ``None`` for inline set expressions (always unordered)
    and a dotted name otherwise, resolved against the index at rule
    time.  ``view`` marks ``.keys()/.values()/.items()`` iteration.
    """

    line: int
    detail: str
    symbol: Optional[str] = None
    view: bool = False


@dataclass(frozen=True)
class LabelSite:
    """One ``SeedTree.generator/stream/seed`` call with a static label.

    ``template`` is the literal label, or the f-string with every
    interpolation collapsed to ``{}`` (``f"story-{name}"`` ->
    ``story-{}``); ``dynamic`` marks templates (vs exact literals).
    """

    line: int
    method: str
    template: str
    dynamic: bool
    allow_reuse: bool


@dataclass(frozen=True)
class ClassFacts:
    """Shape of one class definition: bases, methods, literal attrs."""

    name: str
    line: int
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]
    #: Class-body string constants: ``kind = "test-lost"`` etc.
    str_attrs: Tuple[Tuple[str, str], ...] = ()
    #: Class-body string-collection constants (``IGNORED_EVENTS``).
    str_tuple_attrs: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    #: Dataclass-style fields: (name, annotation source, line).
    fields: Tuple[Tuple[str, str, int], ...] = ()

    def attr(self, name: str) -> Optional[str]:
        for key, value in self.str_attrs:
            if key == name:
                return value
        return None

    def tuple_attr(self, name: str) -> Optional[Tuple[str, ...]]:
        for key, value in self.str_tuple_attrs:
            if key == name:
                return value
        return None


@dataclass
class FileFacts:
    """Everything the cross-file rules need to know about one module."""

    path: str
    module: Optional[str]
    is_package: bool = False
    #: (line, dotted module, typing_only) - every import edge.
    imports: List[Tuple[int, str, bool]] = field(default_factory=list)
    #: Local name -> canonical dotted target (import alias map).
    aliases: Dict[str, str] = field(default_factory=dict)
    bindings: List[SymbolBinding] = field(default_factory=list)
    #: (line, name) - names rebound via ``global`` inside functions.
    global_rebinds: List[Tuple[int, str]] = field(default_factory=list)
    #: (line, dotted target) - in-place mutation sites.
    mutations: List[Tuple[int, str]] = field(default_factory=list)
    iterations: List[IterationSite] = field(default_factory=list)
    labels: List[LabelSite] = field(default_factory=list)
    classes: List[ClassFacts] = field(default_factory=list)
    #: Class names listed in the ``EVENT_KINDS`` registry tuple.
    event_kinds_classes: List[str] = field(default_factory=list)
    #: Class names listed in the ``RULE_KINDS`` registry tuple.
    rule_kinds_classes: List[str] = field(default_factory=list)
    #: line -> suppressed codes ("*" means all) for cross-file findings.
    noqa: Dict[int, List[str]] = field(default_factory=dict)

    # -- serialization (the incremental cache stores facts as JSON) ----

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "imports": [list(edge) for edge in self.imports],
            "aliases": dict(self.aliases),
            "bindings": [[b.name, b.line, b.kind, list(b.strings)]
                         for b in self.bindings],
            "global_rebinds": [list(g) for g in self.global_rebinds],
            "mutations": [list(m) for m in self.mutations],
            "iterations": [[s.line, s.detail, s.symbol, s.view]
                           for s in self.iterations],
            "labels": [[s.line, s.method, s.template, s.dynamic,
                        s.allow_reuse] for s in self.labels],
            "classes": [{
                "name": c.name, "line": c.line, "bases": list(c.bases),
                "methods": list(c.methods),
                "str_attrs": [list(a) for a in c.str_attrs],
                "str_tuple_attrs": [[k, list(v)]
                                    for k, v in c.str_tuple_attrs],
                "fields": [list(f) for f in c.fields],
            } for c in self.classes],
            "event_kinds_classes": list(self.event_kinds_classes),
            "rule_kinds_classes": list(self.rule_kinds_classes),
            "noqa": {str(line): codes for line, codes in self.noqa.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FileFacts":
        return cls(
            path=data["path"],
            module=data["module"],
            is_package=data["is_package"],
            imports=[(e[0], e[1], e[2]) for e in data["imports"]],
            aliases=dict(data["aliases"]),
            bindings=[SymbolBinding(b[0], b[1], b[2], tuple(b[3]))
                      for b in data["bindings"]],
            global_rebinds=[(g[0], g[1]) for g in data["global_rebinds"]],
            mutations=[(m[0], m[1]) for m in data["mutations"]],
            iterations=[IterationSite(s[0], s[1], s[2], s[3])
                        for s in data["iterations"]],
            labels=[LabelSite(s[0], s[1], s[2], s[3], s[4])
                    for s in data["labels"]],
            classes=[ClassFacts(
                name=c["name"], line=c["line"], bases=tuple(c["bases"]),
                methods=tuple(c["methods"]),
                str_attrs=tuple((a[0], a[1]) for a in c["str_attrs"]),
                str_tuple_attrs=tuple((k, tuple(v))
                                      for k, v in c["str_tuple_attrs"]),
                fields=tuple((f[0], f[1], f[2]) for f in c["fields"]),
            ) for c in data["classes"]],
            event_kinds_classes=list(data["event_kinds_classes"]),
            rule_kinds_classes=list(data["rule_kinds_classes"]),
            noqa={int(line): list(codes)
                  for line, codes in data["noqa"].items()},
        )


# --------------------------------------------------------------------------
# extraction helpers
# --------------------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[str]:
    """``Name``/``Attribute`` chain to ``a.b.c``, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _binding_kind(value: Optional[ast.AST],
                  aliases: Mapping[str, str]) -> str:
    """Classify the value expression of a module-level assignment."""
    if value is None:
        return "other"
    if isinstance(value, ast.List):
        return "list"
    if isinstance(value, ast.Dict) or isinstance(value, ast.DictComp):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.ListComp):
        return "list"
    if isinstance(value, ast.Call):
        target = _dotted(value.func)
        if target is None:
            return "other"
        target = aliases.get(target, target)
        if target in _SET_CALLS:
            return "set"
        if target in ("dict", "collections.defaultdict", "defaultdict",
                      "collections.OrderedDict", "OrderedDict",
                      "collections.Counter", "Counter"):
            return "dict"
        if target in ("list", "collections.deque", "deque"):
            return "list"
        if target == "bytearray":
            return "bytearray"
        return "other"
    if isinstance(value, ast.Constant):
        return "constant"
    return "other"


def _string_elements(value: Optional[ast.AST]) -> Tuple[str, ...]:
    """String constants of a literal tuple/list/set/frozenset value."""
    if value is None:
        return ()
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
            and value.func.id in ("frozenset", "set", "tuple", "list") \
            and len(value.args) == 1:
        value = value.args[0]
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        out = []
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return ()
        return tuple(out)
    return ()


def _fstring_template(node: ast.JoinedStr) -> Optional[str]:
    """Collapse an f-string to a template (``f"a-{x}"`` -> ``a-{}``)."""
    parts: List[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            parts.append("{}")
        else:
            return None
    return "".join(parts)


def _typing_only_lines(tree: ast.AST) -> Set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = _dotted(test) if isinstance(
            test, (ast.Name, ast.Attribute)) else None
        if name in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
            for sub in node.body:
                end = getattr(sub, "end_lineno", sub.lineno)
                lines.update(range(sub.lineno, end + 1))
    return lines


class _FactsVisitor(ast.NodeVisitor):
    """Single walk collecting every per-file fact, scope-aware.

    A stack of local-name sets tracks function scopes so that a local
    variable shadowing a module-level binding is never mistaken for a
    mutation of (or unordered iteration over) the module global.
    """

    def __init__(self, facts: FileFacts, parents: Dict[ast.AST, ast.AST]):
        self.facts = facts
        self.parents = parents
        #: Stack of per-scope dicts: local name -> "set" | "other".
        self.scopes: List[Dict[str, str]] = []
        #: Function-nesting depth.  Mutations at depth 0 run at import
        #: time, identically in every shard, so only depth > 0 counts.
        self.fn_depth = 0

    # -- scope management ----------------------------------------------

    def _enter_function(self, node: ast.AST) -> None:
        scope: Dict[str, str] = {}
        for arg in ast.walk(node.args):  # type: ignore[attr-defined]
            if isinstance(arg, ast.arg):
                scope[arg.arg] = "other"
        self.scopes.append(scope)
        self.fn_depth += 1
        for sub in node.body:  # type: ignore[attr-defined]
            self.visit(sub)
        self.fn_depth -= 1
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        scope = {arg.arg: "other" for arg in ast.walk(node.args)
                 if isinstance(arg, ast.arg)}
        self.scopes.append(scope)
        self.fn_depth += 1
        self.visit(node.body)
        self.fn_depth -= 1
        self.scopes.pop()

    def _is_local(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def _local_kind(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _bind_local(self, target: ast.AST, kind: str) -> None:
        if not self.scopes:
            return
        if isinstance(target, ast.Name):
            self.scopes[-1][target.id] = kind
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_local(elt, "other")

    # -- assignments / mutations ---------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = self._expr_kind(node.value)
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_mutation(node.lineno, target)
            self._bind_local(target, kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            self._record_mutation(node.lineno, node.target)
        self._bind_local(node.target, self._expr_kind(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_mutation(node.lineno, node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_mutation(node.lineno, target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._record_iteration(node.iter, in_set_context=False)
        self._bind_local(node.target, "other")
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.facts.global_rebinds.append((node.lineno, name))

    def visit_comprehension_iter(self, comp: ast.AST,
                                 order_free: bool) -> None:
        for gen in comp.generators:  # type: ignore[attr-defined]
            self._record_iteration(gen.iter, in_set_context=order_free)
            self._bind_local(gen.target, "other")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iter(node, order_free=False)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iter(node, order_free=False)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set built from a set stays order-free: no ordering leaks.
        self.visit_comprehension_iter(node, order_free=True)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        parent = self.parents.get(node)
        order_free = False
        if isinstance(parent, ast.Call):
            func = _dotted(parent.func)
            func = self.facts.aliases.get(func, func) if func else None
            order_free = func in _ORDER_FREE_CONSUMERS
        self.visit_comprehension_iter(node, order_free=order_free)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in _MUTATOR_METHODS:
                self._record_mutation(node.lineno, node.func.value)
            if method in ("generator", "stream", "seed") and node.args:
                self._record_label(node, method)
        self.generic_visit(node)

    # -- recording helpers ---------------------------------------------

    def _record_mutation(self, line: int, target: ast.AST) -> None:
        if self.fn_depth == 0:
            return  # import-time mutation: identical in every shard
        # Strip subscripts: d["k"]["j"] mutates d.
        while isinstance(target, ast.Subscript):
            target = target.value
        dotted = _dotted(target)
        if dotted is None:
            return
        root = dotted.split(".", 1)[0]
        if self._is_local(root):
            return
        self.facts.mutations.append((line, dotted))

    def _record_label(self, node: ast.Call, method: str) -> None:
        label = node.args[0]
        allow_reuse = any(kw.arg == "allow_reuse" and
                          isinstance(kw.value, ast.Constant) and
                          kw.value.value is True
                          for kw in node.keywords)
        if isinstance(label, ast.Constant) and isinstance(label.value, str):
            self.facts.labels.append(LabelSite(
                node.lineno, method, label.value, False, allow_reuse))
        elif isinstance(label, ast.JoinedStr):
            template = _fstring_template(label)
            if template is not None:
                self.facts.labels.append(LabelSite(
                    node.lineno, method, template, "{}" in template,
                    allow_reuse))

    def _expr_kind(self, value: Optional[ast.AST]) -> str:
        """``"set"`` when *value* is statically set-shaped, else other."""
        if value is None:
            return "other"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            func = _dotted(value.func)
            if func is not None:
                func = self.facts.aliases.get(func, func)
                if func in _SET_CALLS:
                    return "set"
            if isinstance(value.func, ast.Attribute) and \
                    value.func.attr in _SET_PRODUCING_METHODS:
                receiver = self._iter_symbol_kind(value.func.value)
                if receiver == "set":
                    return "set"
        if isinstance(value, ast.BinOp) and isinstance(
                value.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            if "set" in (self._iter_symbol_kind(value.left),
                         self._iter_symbol_kind(value.right)):
                return "set"
        return "other"

    def _iter_symbol_kind(self, node: ast.AST) -> str:
        """Best-effort static kind of an expression (``set`` or other)."""
        if isinstance(node, ast.Name):
            local = self._local_kind(node.id)
            if local is not None:
                return local
            return "other"
        return self._expr_kind(node)

    def _record_iteration(self, iter_expr: ast.AST,
                          in_set_context: bool) -> None:
        if in_set_context:
            return
        view = False
        expr = iter_expr
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr in ("keys", "values", "items") \
                and not expr.args:
            view = True
            expr = expr.func.value

        # Inline set expressions are unordered, full stop.
        if not view and self._expr_kind(expr) == "set":
            self.facts.iterations.append(IterationSite(
                expr.lineno, ast.unparse(iter_expr)[:60], None, False))
            return

        # Locals: flag set-typed locals; never escalate others.
        if isinstance(expr, ast.Name):
            local = self._local_kind(expr.id)
            if local == "set":
                self.facts.iterations.append(IterationSite(
                    expr.lineno, ast.unparse(iter_expr)[:60], None, view))
                return
            if local is not None:
                return
        # Module-level names / imported symbols: record for the index
        # to resolve (a dotted path rooted outside any local scope).
        dotted = _dotted(expr)
        if dotted is None:
            return
        root = dotted.split(".", 1)[0]
        if self._is_local(root) or root == "self":
            return
        self.facts.iterations.append(IterationSite(
            expr.lineno, ast.unparse(iter_expr)[:60], dotted, view))

    # -- classes --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            dotted = _dotted(base)
            if dotted is not None:
                bases.append(self.facts.aliases.get(dotted, dotted))
        methods: List[str] = []
        str_attrs: List[Tuple[str, str]] = []
        str_tuple_attrs: List[Tuple[str, Tuple[str, ...]]] = []
        fields: List[Tuple[str, str, int]] = []
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(item.name)
            elif isinstance(item, ast.Assign) and len(item.targets) == 1 \
                    and isinstance(item.targets[0], ast.Name):
                name = item.targets[0].id
                if isinstance(item.value, ast.Constant) and \
                        isinstance(item.value.value, str):
                    str_attrs.append((name, item.value.value))
                else:
                    strings = _string_elements(item.value)
                    if strings:
                        str_tuple_attrs.append((name, strings))
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                name = item.target.id
                annotation = ast.unparse(item.annotation)
                if annotation.startswith("ClassVar"):
                    if isinstance(item.value, ast.Constant) and \
                            isinstance(item.value.value, str):
                        str_attrs.append((name, item.value.value))
                    else:
                        strings = _string_elements(item.value)
                        if strings:
                            str_tuple_attrs.append((name, strings))
                else:
                    fields.append((name, annotation, item.lineno))
        self.facts.classes.append(ClassFacts(
            name=node.name, line=node.lineno, bases=tuple(bases),
            methods=tuple(methods), str_attrs=tuple(str_attrs),
            str_tuple_attrs=tuple(str_tuple_attrs), fields=tuple(fields)))
        # Class bodies get their own scope (attrs are not module state).
        self.scopes.append({})
        for item in node.body:
            self.visit(item)
        self.scopes.pop()


def extract_facts(ctx: "ModuleContext",
                  noqa_map: Optional[Mapping[int, Sequence[str]]] = None
                  ) -> FileFacts:
    """Distil one parsed module into its :class:`FileFacts`."""
    facts = FileFacts(path=ctx.path, module=ctx.module,
                      is_package=ctx.is_package)
    facts.aliases = _import_aliases(ctx.tree)
    # Relative imports resolve against the module's own dotted path, so
    # `from .observers import Observer` also lands in the alias map.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.level > 0:
            base = _resolve_relative(ctx, node)
            if base is None:
                continue
            for name in node.names:
                if name.name != "*":
                    facts.aliases.setdefault(
                        name.asname or name.name, f"{base}.{name.name}")
    if noqa_map:
        facts.noqa = {int(line): list(codes)
                      for line, codes in noqa_map.items()}

    typing_lines = _typing_only_lines(ctx.tree)
    for line, imported in _imported_modules(ctx):
        facts.imports.append((line, imported, line in typing_lines))

    # Module-level bindings (direct children of the Module node only).
    assert isinstance(ctx.tree, ast.Module)
    for node in ctx.tree.body:
        targets: List[Tuple[ast.AST, Optional[ast.AST]]] = []
        if isinstance(node, ast.Assign):
            targets = [(t, node.value) for t in node.targets]
        elif isinstance(node, ast.AnnAssign) and node.target is not None:
            targets = [(node.target, node.value)]
        elif isinstance(node, ast.ClassDef):
            facts.bindings.append(SymbolBinding(
                node.name, node.lineno, "class"))
            continue
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.bindings.append(SymbolBinding(
                node.name, node.lineno, "function"))
            continue
        for target, value in targets:
            if not isinstance(target, ast.Name):
                continue
            kind = _binding_kind(value, facts.aliases)
            facts.bindings.append(SymbolBinding(
                target.id, node.lineno, kind, _string_elements(value)))
            if target.id == "EVENT_KINDS":
                facts.event_kinds_classes = _event_kinds_classes(value)
            elif target.id == "RULE_KINDS":
                facts.rule_kinds_classes = _event_kinds_classes(value)

    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(ctx.tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    visitor = _FactsVisitor(facts, parents)
    visitor.visit(ctx.tree)
    return facts


def _event_kinds_classes(value: Optional[ast.AST]) -> List[str]:
    """Class names referenced inside the ``EVENT_KINDS`` expression."""
    if value is None:
        return []
    names: List[str] = []
    for node in ast.walk(value):
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                if isinstance(elt, ast.Name):
                    names.append(elt.id)
    return names


# --------------------------------------------------------------------------
# the project index
# --------------------------------------------------------------------------


class ProjectIndex:
    """Whole-program view stitched together from per-file facts."""

    def __init__(self, facts: Iterable[FileFacts]) -> None:
        self.files: List[FileFacts] = sorted(facts, key=lambda f: f.path)
        #: dotted module name -> facts (last one wins on collisions).
        self.modules: Dict[str, FileFacts] = {
            f.module: f for f in self.files if f.module}

    # -- module graph ---------------------------------------------------

    def _internal_target(self, imported: str) -> Optional[str]:
        """Map an imported dotted path to an indexed module, if any."""
        parts = imported.split(".")
        while parts:
            candidate = ".".join(parts)
            if candidate in self.modules:
                return candidate
            parts.pop()
        return None

    def module_graph(self, include_typing: bool = False
                     ) -> Dict[str, List[str]]:
        """Adjacency of internal imports, deterministically sorted."""
        graph: Dict[str, List[str]] = {}
        for name, facts in sorted(self.modules.items()):
            edges: Set[str] = set()
            for _line, imported, typing_only in facts.imports:
                if typing_only and not include_typing:
                    continue
                target = self._internal_target(imported)
                if target is not None and target != name:
                    edges.add(target)
            graph[name] = sorted(edges)
        return graph

    def import_cycles(self) -> List[List[str]]:
        """Import cycles (Tarjan SCCs of size > 1), typing-only excluded.

        Returns each cycle as a sorted module list; an empty result is
        the precondition the CI gate asserts before sharding work.
        """
        graph = self.module_graph()
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        cycles: List[List[str]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: (node, edge iterator index) frames.
            work = [(node, 0)]
            while work:
                current, edge_idx = work.pop()
                if edge_idx == 0:
                    index_of[current] = low[current] = counter[0]
                    counter[0] += 1
                    stack.append(current)
                    on_stack.add(current)
                recurse = False
                edges = graph.get(current, [])
                for i in range(edge_idx, len(edges)):
                    nxt = edges[i]
                    if nxt not in index_of:
                        work.append((current, i + 1))
                        work.append((nxt, 0))
                        recurse = True
                        break
                    if nxt in on_stack:
                        low[current] = min(low[current], index_of[nxt])
                if recurse:
                    continue
                if low[current] == index_of[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        cycles.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])

        for name in sorted(graph):
            if name not in index_of:
                strongconnect(name)
        return sorted(cycles)

    def layer_of(self, module: str) -> Optional[str]:
        layer = _module_layer(module)
        return LAYERS[layer] if layer is not None else None

    # -- symbol resolution ----------------------------------------------

    def resolve(self, module: str, dotted: str,
                _depth: int = 0) -> Optional[Tuple[str, str]]:
        """Resolve *dotted* (as written in *module*) to its defining
        ``(module, binding)`` pair, following import aliases."""
        if _depth > 8 or module not in self.modules:
            return None
        facts = self.modules[module]
        head, _, rest = dotted.partition(".")
        for binding in facts.bindings:
            if binding.name == head:
                return (module, head)
        alias = facts.aliases.get(head)
        if alias is None:
            return None
        full = f"{alias}.{rest}" if rest else alias
        target_module = self._internal_target(full)
        if target_module is None or full == target_module:
            return None
        remainder = full[len(target_module) + 1:]
        name = remainder.split(".", 1)[0]
        if target_module == module and name == head:
            return None
        return self.resolve(target_module, remainder, _depth + 1)

    def binding(self, module: str, name: str) -> Optional[SymbolBinding]:
        facts = self.modules.get(module)
        if facts is None:
            return None
        for candidate in facts.bindings:
            if candidate.name == name:
                return candidate
        return None

    # -- class closure ---------------------------------------------------

    def subclasses_of(self, base_module: str, base_class: str
                      ) -> List[Tuple[str, ClassFacts]]:
        """Transitive subclasses of one class across the whole tree."""
        known: Set[Tuple[str, str]] = {(base_module, base_class)}
        out: List[Tuple[str, ClassFacts]] = []
        changed = True
        while changed:
            changed = False
            for facts in self.files:
                if facts.module is None:
                    continue
                for cls in facts.classes:
                    key = (facts.module, cls.name)
                    if key in known:
                        continue
                    for base in cls.bases:
                        resolved = self._resolve_class(facts.module, base)
                        if resolved in known:
                            known.add(key)
                            out.append((facts.module, cls))
                            changed = True
                            break
        out.sort(key=lambda pair: (pair[0], pair[1].name))
        return out

    def _resolve_class(self, module: str,
                       base: str) -> Optional[Tuple[str, str]]:
        """Map a (possibly dotted) base-class reference to its home."""
        facts = self.modules.get(module)
        if facts is None:
            return None
        if "." not in base:
            for cls in facts.classes:
                if cls.name == base:
                    return (module, base)
        target = self._internal_target(base)
        if target is not None and target != base:
            return (target, base[len(target) + 1:].split(".", 1)[0])
        resolved = self.resolve(module, base)
        return resolved
