"""Lint engine: discover files, parse, dispatch rules, filter findings.

The pipeline per file is::

    read -> parse (RPR000 on SyntaxError) -> run selected rules
         -> drop `# repro: noqa` suppressed lines
         -> split remaining findings against the baseline

:func:`run` is the single entry point used by both the CLI and the CI
gate test; :func:`lint_text` lints an in-memory snippet, which keeps the
rule test fixtures free of temp files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from ..errors import ConfigError
from .baseline import load_baseline, matches_baseline
from .findings import Finding
from .noqa import NoqaDirectives
from .rules import Rule, all_rules, get_rule

__all__ = ["LintResult", "ModuleContext", "iter_python_files",
           "lint_file", "lint_text", "module_name_for", "run"]


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str                     #: display path (posix, repo-relative)
    module: Optional[str]         #: dotted module name, e.g. ``repro.netsim.tcp``
    tree: ast.AST                 #: parsed AST of the file
    lines: Sequence[str]          #: raw source lines (1-indexed via ``lines[i-1]``)
    is_package: bool = False      #: True for ``__init__.py`` files


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)     #: actionable
    baselined: List[Finding] = field(default_factory=list)    #: grandfathered
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of *path*, anchored at the ``repro`` package.

    ``/repo/src/repro/netsim/tcp.py`` -> ``repro.netsim.tcp``; files not
    under a ``repro`` directory fall back to their stem so rules that
    only need *a* name (fixtures, scratch files) still work.
    """
    parts = list(path.resolve().parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[anchor:])
    else:
        dotted = [path.name]
    dotted[-1] = dotted[-1][:-3] if dotted[-1].endswith(".py") else dotted[-1]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else None


def iter_python_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths*, deterministically sorted."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py" and p.is_file():
            yield p
        else:
            raise ConfigError(f"lint target {p} is neither a .py file "
                              f"nor a directory")


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if not select:
        return all_rules()
    return [get_rule(code) for code in select]


def _apply_rules(ctx: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.func(ctx))
    noqa = NoqaDirectives(list(ctx.lines))
    if len(noqa):
        findings = [f for f in findings
                    if not noqa.is_suppressed(f.line, f.code)]
    return sorted(findings)


def lint_text(source: str, path: str = "<snippet>",
              module: Optional[str] = "snippet",
              select: Optional[Sequence[str]] = None,
              is_package: bool = False) -> List[Finding]:
    """Lint an in-memory *source* snippet (used heavily by the tests)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, "RPR000",
                        f"could not parse: {exc.msg}")]
    ctx = ModuleContext(path=path, module=module, tree=tree,
                        lines=source.splitlines(), is_package=is_package)
    return _apply_rules(ctx, _select_rules(select))


def _display_path(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return str(PurePosixPath(resolved.relative_to(root.resolve())))
        except ValueError:
            pass
    return str(PurePosixPath(path))


def lint_file(path: "Path | str", root: "Path | str | None" = None,
              select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one file; *root* anchors the reported (and baselined) path."""
    p = Path(path)
    display = _display_path(p, Path(root) if root is not None else None)
    source = p.read_text(encoding="utf-8")
    return lint_text(source, path=display, module=module_name_for(p),
                     select=select, is_package=p.name == "__init__.py")


def run(paths: Iterable["Path | str"],
        select: Optional[Sequence[str]] = None,
        baseline: "Path | str | None" = None,
        root: "Path | str | None" = None) -> LintResult:
    """Lint *paths* and split findings against the optional *baseline*.

    Paths in findings are made relative to *root* (default: the current
    working directory), which is also what baseline entries match on.
    """
    anchor = Path(root) if root is not None else Path.cwd()
    baseline_keys: Set[str] = (load_baseline(baseline)
                               if baseline is not None else set())
    result = LintResult()
    for file_path in iter_python_files(paths):
        result.files_checked += 1
        for finding in lint_file(file_path, root=anchor, select=select):
            if baseline_keys and matches_baseline(baseline_keys, finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort()
    result.baselined.sort()
    return result
