"""Lint engine: discover files, parse, dispatch rules, filter findings.

The pipeline is two-phase.  Per file::

    read -> cache lookup (content hash) -> parse (RPR000 on SyntaxError)
         -> run single-file rules -> drop `# repro: noqa` suppressed
         -> extract FileFacts for the project index

then once per run::

    ProjectIndex(all facts) -> cross-file rules (RPR009+)
         -> drop suppressed -> split everything against the baseline

:func:`run` is the single entry point used by both the CLI and the CI
gate test; :func:`lint_text` lints an in-memory snippet and
:func:`lint_sources` a dict of snippets (a whole miniature project),
which keeps the rule test fixtures free of temp files.

When :mod:`repro.obs` is enabled the run reports itself: one
``lint.run`` span plus ``lint.files.*`` / ``lint.findings.*`` counters,
so the analyzer shows up in obs snapshots like any other subsystem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Set, Tuple)

import repro.obs as obs

from ..errors import ConfigError
from .baseline import load_baseline, matches_baseline
from .cache import LintCache, content_key
from .findings import Finding
from .index import FileFacts, ProjectIndex, extract_facts
from .noqa import NoqaDirectives
from .rules import SCOPE_FILE, SCOPE_PROJECT, Rule, all_rules, get_rule

# Importing xrules registers RPR009..RPR012 with the shared registry.
from . import xrules  # noqa: F401  (import-for-side-effect)

__all__ = ["LintResult", "ModuleContext", "iter_python_files",
           "lint_file", "lint_sources", "lint_text", "module_name_for",
           "run"]


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str                     #: display path (posix, repo-relative)
    module: Optional[str]         #: dotted module name, e.g. ``repro.netsim.tcp``
    tree: ast.AST                 #: parsed AST of the file
    lines: Sequence[str]          #: raw source lines (1-indexed via ``lines[i-1]``)
    is_package: bool = False      #: True for ``__init__.py`` files


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)     #: actionable
    baselined: List[Finding] = field(default_factory=list)    #: grandfathered
    files_checked: int = 0
    files_reused: int = 0         #: served from the incremental cache
    #: The whole-program index (None when no project rule ran).
    index: Optional[ProjectIndex] = None

    @property
    def ok(self) -> bool:
        return not self.findings


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of *path*, anchored at the ``repro`` package.

    ``/repo/src/repro/netsim/tcp.py`` -> ``repro.netsim.tcp``; files not
    under a ``repro`` directory fall back to their stem so rules that
    only need *a* name (fixtures, scratch files) still work.
    """
    parts = list(path.resolve().parts)
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[anchor:])
    else:
        dotted = [path.name]
    dotted[-1] = dotted[-1][:-3] if dotted[-1].endswith(".py") else dotted[-1]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else None


def iter_python_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    """Yield every ``.py`` file under *paths*, deterministically sorted."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py" and p.is_file():
            yield p
        elif not p.exists():
            raise ConfigError(f"lint target {p} does not exist")
        else:
            raise ConfigError(f"lint target {p} is neither a .py file "
                              f"nor a directory")


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if not select:
        return all_rules()
    return [get_rule(code) for code in select]


def _split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule], List[Rule]]:
    return ([r for r in rules if r.scope == SCOPE_FILE],
            [r for r in rules if r.scope == SCOPE_PROJECT])


def _lint_module(ctx: ModuleContext, file_rules: Sequence[Rule]
                 ) -> Tuple[List[Finding], FileFacts]:
    """Single-file findings (noqa-filtered) plus extracted facts."""
    findings: List[Finding] = []
    for rule in file_rules:
        findings.extend(rule.func(ctx))
    noqa = NoqaDirectives(list(ctx.lines))
    if len(noqa):
        findings = [f for f in findings
                    if not noqa.is_suppressed(f.line, f.code)]
    facts = extract_facts(ctx, noqa_map=noqa.as_map())
    return sorted(findings), facts


def _parse_error_result(display: str, module: Optional[str],
                        exc: SyntaxError
                        ) -> Tuple[List[Finding], FileFacts]:
    finding = Finding(display, exc.lineno or 1, "RPR000",
                      f"could not parse: {exc.msg}")
    return [finding], FileFacts(path=display, module=module)


def _project_findings(facts: Sequence[FileFacts],
                      project_rules: Sequence[Rule]
                      ) -> Tuple[List[Finding], Optional[ProjectIndex]]:
    """Run cross-file rules once, honoring per-file noqa directives."""
    if not project_rules:
        return [], None
    index = ProjectIndex(facts)
    noqa_by_path: Dict[str, Mapping[int, Sequence[str]]] = {
        f.path: f.noqa for f in facts}
    findings: List[Finding] = []
    for rule in project_rules:
        for finding in rule.func(index):
            suppressed = noqa_by_path.get(finding.path, {}).get(
                finding.line, ())
            if "*" in suppressed or finding.code in suppressed:
                continue
            findings.append(finding)
    return sorted(findings), index


def lint_text(source: str, path: str = "<snippet>",
              module: Optional[str] = "snippet",
              select: Optional[Sequence[str]] = None,
              is_package: bool = False) -> List[Finding]:
    """Lint an in-memory *source* snippet (used heavily by the tests).

    Cross-file rules run too, over a one-module project index, so
    single-file fixtures can exercise RPR009+ as well.
    """
    return lint_sources({path: source}, select=select,
                        modules={path: module},
                        packages={path} if is_package else ())


def lint_sources(sources: Mapping[str, str],
                 select: Optional[Sequence[str]] = None,
                 modules: Optional[Mapping[str, Optional[str]]] = None,
                 packages: Iterable[str] = ()) -> List[Finding]:
    """Lint a ``{path: source}`` mapping as one miniature project.

    Module names are taken from *modules* when given, else derived from
    the path (anchored at a ``repro`` component, mirroring
    :func:`module_name_for`), so cross-file fixtures like
    ``{"src/repro/engine/events.py": ..., "src/repro/core/x.py": ...}``
    behave exactly like the real tree.
    """
    file_rules, project_rules = _split_rules(_select_rules(select))
    findings: List[Finding] = []
    all_facts: List[FileFacts] = []
    for path in sorted(sources):
        source = sources[path]
        module = (modules or {}).get(
            path, module_name_for(Path(path)))
        is_package = path in set(packages) or path.endswith("__init__.py")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            file_findings, facts = _parse_error_result(path, module, exc)
        else:
            ctx = ModuleContext(path=path, module=module, tree=tree,
                                lines=source.splitlines(),
                                is_package=is_package)
            file_findings, facts = _lint_module(ctx, file_rules)
        findings.extend(file_findings)
        all_facts.append(facts)
    project, _index = _project_findings(all_facts, project_rules)
    return sorted(findings + project)


def _display_path(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return str(PurePosixPath(resolved.relative_to(root.resolve())))
        except ValueError:
            pass
    return str(PurePosixPath(path))


def lint_file(path: "Path | str", root: "Path | str | None" = None,
              select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one file; *root* anchors the reported (and baselined) path."""
    p = Path(path)
    display = _display_path(p, Path(root) if root is not None else None)
    source = p.read_text(encoding="utf-8")
    return lint_text(source, path=display, module=module_name_for(p),
                     select=select, is_package=p.name == "__init__.py")


def run(paths: Iterable["Path | str"],
        select: Optional[Sequence[str]] = None,
        baseline: "Path | str | None" = None,
        root: "Path | str | None" = None,
        cache: "Path | str | None" = None) -> LintResult:
    """Lint *paths* and split findings against the optional *baseline*.

    Paths in findings are made relative to *root* (default: the current
    working directory), which is also what baseline entries match on.
    With *cache* set, unchanged files (by content hash, salted with the
    rule configuration) skip parsing and the per-file rule pass.
    """
    anchor = Path(root) if root is not None else Path.cwd()
    file_rules, project_rules = _split_rules(_select_rules(select))
    baseline_keys: Set[str] = (load_baseline(baseline)
                               if baseline is not None else set())
    store = LintCache(cache) if cache is not None else None
    result = LintResult()

    files = list(iter_python_files(paths))
    if not files:
        raise ConfigError(
            "no Python files found under: "
            + ", ".join(str(p) for p in paths)
            + " (nothing to lint)")

    with obs.span("lint.run", layer="lint", files=len(files)):
        all_findings: List[Finding] = []
        all_facts: List[FileFacts] = []
        for file_path in files:
            result.files_checked += 1
            display = _display_path(file_path, anchor)
            source = file_path.read_text(encoding="utf-8")
            key = content_key(source, select)
            cached = store.get(display, key) if store is not None else None
            if cached is not None:
                file_findings, facts = cached
                result.files_reused += 1
            else:
                try:
                    tree = ast.parse(source)
                except SyntaxError as exc:
                    file_findings, facts = _parse_error_result(
                        display, module_name_for(file_path), exc)
                else:
                    ctx = ModuleContext(
                        path=display, module=module_name_for(file_path),
                        tree=tree, lines=source.splitlines(),
                        is_package=file_path.name == "__init__.py")
                    file_findings, facts = _lint_module(ctx, file_rules)
                if store is not None:
                    store.put(display, key, file_findings, facts)
            all_findings.extend(file_findings)
            all_facts.append(facts)

        project, index = _project_findings(all_facts, project_rules)
        all_findings.extend(project)
        result.index = index

        for finding in all_findings:
            if baseline_keys and matches_baseline(baseline_keys, finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
        result.findings.sort()
        result.baselined.sort()

        if store is not None:
            store.prune([_display_path(p, anchor) for p in files])
            store.save()

        obs.inc("lint.files.scanned", result.files_checked)
        obs.inc("lint.files.reused", result.files_reused)
        for finding in result.findings:
            obs.inc(f"lint.findings.{finding.code}")
        for finding in result.baselined:
            obs.inc(f"lint.baselined.{finding.code}")
    return result
