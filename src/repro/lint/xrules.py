"""Whole-program invariant rules (RPR009 ... RPR013).

These rules consume the :class:`~repro.lint.index.ProjectIndex` instead
of one module at a time, so they can see what no per-file pass can:
which module globals are actually mutated at runtime (and from where),
which :class:`~repro.rng.SeedTree` labels collide across files, and
whether the engine's event taxonomy, its registry, and its observers
agree.  Together they are the static precondition for sharding the
campaign engine: a tree that is RPR009-012 clean has no shared mutable
module state, no iteration order that can diverge between workers, no
silently-shared RNG streams, and no event a worker could drop on the
floor unnoticed.

Carve-out policy (RPR009): process-wide registries that are populated
at import time or rebuilt deterministically per process are shard-safe
by construction and are allowlisted *by name* in
:data:`SHARD_SAFE_GLOBALS`, each with a one-line justification that
doubles as documentation.  Anything else needs a fix (freeze it, move
it into an object) or a justified ``# repro: noqa RPR009``.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, Iterator, List, Mapping, Tuple

from .findings import Finding
from .index import ProjectIndex
from .rules import cross_file_rule

__all__ = ["SHARD_SAFE_GLOBALS", "shard_safe_globals"]


# --------------------------------------------------------------------------
# RPR009 shard-unsafe-global
# --------------------------------------------------------------------------

#: Structured carve-outs: (module, binding) -> why it is shard-safe.
#: Every entry must justify itself; tests assert the justification is
#: non-empty and that the binding still exists.
SHARD_SAFE_GLOBALS: Mapping[Tuple[str, str], str] = {
    ("repro.lint.rules", "_REGISTRY"):
        "rule table, populated once at import time by the @rule "
        "decorators and only read afterwards",
    ("repro.obs", "_tracer"):
        "process-wide observability switch; each shard runs its own "
        "tracer and obs never feeds data back into the simulation",
    ("repro.obs", "_registry"):
        "process-wide metrics registry, same per-shard story as the "
        "tracer (merged downstream by exporters, never read back)",
    ("repro.experiments.runner", "_CACHES"):
        "per-process memoization of fully-deterministic scenario "
        "builds; every shard rebuilds identical entries from the seed",
}


def shard_safe_globals() -> Dict[Tuple[str, str], str]:
    """A copy of the RPR009 allowlist (module, name) -> justification."""
    return dict(SHARD_SAFE_GLOBALS)


@cross_file_rule("RPR009", "shard-unsafe-global",
                 "module-level mutable state that is written at runtime; "
                 "shards would diverge - freeze it, scope it to an "
                 "object, or allowlist it with a justification")
def check_shard_unsafe_globals(index: ProjectIndex) -> Iterator[Finding]:
    # Collect every runtime write, resolved to its defining binding.
    writes: Dict[Tuple[str, str], List[str]] = defaultdict(list)
    for facts in index.files:
        if not (facts.module or "").startswith("repro"):
            continue
        for line, dotted in facts.mutations:
            resolved = index.resolve(facts.module, dotted)
            if resolved is not None:
                writes[resolved].append(f"{facts.path}:{line}")
        for line, name in facts.global_rebinds:
            resolved = index.resolve(facts.module, name)
            if resolved is not None:
                writes[resolved].append(
                    f"{facts.path}:{line} (global rebind)")

    for (module, name), sites in sorted(writes.items()):
        binding = index.binding(module, name)
        if binding is None:
            continue
        if binding.kind in ("class", "function"):
            continue  # methods mutate instances, not module state
        if (module, name) in SHARD_SAFE_GLOBALS:
            continue
        facts = index.modules[module]
        where = ", ".join(sorted(set(sites))[:3])
        yield Finding(
            facts.path, binding.line, "RPR009",
            f"module-level binding {name!r} is mutated at runtime "
            f"({where}); shared mutable module state breaks shard "
            f"determinism - freeze it, move it into an object, or add "
            f"it to SHARD_SAFE_GLOBALS with a justification")


# --------------------------------------------------------------------------
# RPR010 unordered-iteration
# --------------------------------------------------------------------------

@cross_file_rule("RPR010", "unordered-iteration",
                 "iteration over a set/frozenset (or a mutable-global "
                 "dict view) without sorted(); iteration order would "
                 "differ between processes and perturb emitted events, "
                 "rows, or RNG draws")
def check_unordered_iteration(index: ProjectIndex) -> Iterator[Finding]:
    for facts in index.files:
        if not (facts.module or "").startswith("repro"):
            continue
        for site in facts.iterations:
            if site.symbol is None:
                # Inline set expression: unordered by construction.
                yield Finding(
                    facts.path, site.line, "RPR010",
                    f"iterating unordered set expression "
                    f"`{site.detail}`; wrap it in sorted() so the "
                    f"order is identical in every process")
                continue
            resolved = index.resolve(facts.module, site.symbol)
            if resolved is None:
                continue
            binding = index.binding(*resolved)
            if binding is None:
                continue
            if binding.kind == "set" and not site.view:
                yield Finding(
                    facts.path, site.line, "RPR010",
                    f"iterating module-level set {resolved[1]!r} "
                    f"(defined in {resolved[0]}) without sorted(); "
                    f"set order differs between processes")
            elif site.view and binding.kind == "dict" \
                    and resolved not in SHARD_SAFE_GLOBALS \
                    and _is_runtime_mutated(index, resolved):
                yield Finding(
                    facts.path, site.line, "RPR010",
                    f"iterating a view of runtime-mutated module dict "
                    f"{resolved[1]!r} (defined in {resolved[0]}) "
                    f"without sorted(); insertion order depends on "
                    f"mutation history")


def _is_runtime_mutated(index: ProjectIndex,
                        target: Tuple[str, str]) -> bool:
    for facts in index.files:
        if facts.module is None:
            continue
        for _line, dotted in facts.mutations:
            if index.resolve(facts.module, dotted) == target:
                return True
    return False


# --------------------------------------------------------------------------
# RPR011 seedtree-label-collision
# --------------------------------------------------------------------------

def _template_regex(template: str) -> "re.Pattern[str]":
    parts = [re.escape(part) for part in template.split("{}")]
    return re.compile("^" + ".+".join(parts) + "$")


@cross_file_rule("RPR011", "seedtree-label-collision",
                 "two call sites derive SeedTree streams from the same "
                 "(or an overlapping) label; they would silently share "
                 "an RNG stream - disambiguate the labels or pass "
                 "allow_reuse=True where re-derivation is intended")
def check_seedtree_label_collisions(index: ProjectIndex) -> Iterator[Finding]:
    # Site tuples: (template, dynamic, path, line, module).
    sites: List[Tuple[str, bool, str, int, str]] = []
    for facts in index.files:
        if not (facts.module or "").startswith("repro"):
            continue
        for label in facts.labels:
            if label.allow_reuse or label.method == "seed":
                continue
            sites.append((label.template, label.dynamic, facts.path,
                          label.line, facts.module or ""))
    sites.sort()

    # Exact duplicates (literal==literal, template==template).
    by_template: Dict[Tuple[str, bool], List[Tuple[str, int]]] = \
        defaultdict(list)
    for template, dynamic, path, line, _module in sites:
        by_template[(template, dynamic)].append((path, line))
    for (template, dynamic), locations in sorted(by_template.items()):
        if len(locations) < 2:
            continue
        shape = "label template" if dynamic else "label"
        others = ", ".join(f"{p}:{n}" for p, n in locations)
        for path, line in locations:
            yield Finding(
                path, line, "RPR011",
                f"SeedTree {shape} {template!r} is requested at "
                f"{len(locations)} call sites ({others}); identical "
                f"labels share one RNG stream")

    # Literal-inside-template overlap: f"story-{name}" swallows the
    # literal "story-cogitant" if a story is ever named "cogitant".
    literals = [(t, p, n) for t, dyn, p, n, _m in sites if not dyn]
    templates = [(t, p, n) for t, dyn, p, n, _m in sites if dyn]
    for template, tpath, tline in templates:
        pattern = _template_regex(template)
        for literal, lpath, lline in literals:
            if (lpath, lline) == (tpath, tline):
                continue
            if pattern.match(literal):
                yield Finding(
                    lpath, lline, "RPR011",
                    f"SeedTree label {literal!r} overlaps the dynamic "
                    f"template {template!r} ({tpath}:{tline}); if the "
                    f"interpolation ever produces the same string the "
                    f"two sites share a stream")


# --------------------------------------------------------------------------
# RPR012 event-exhaustiveness
# --------------------------------------------------------------------------

_EVENTS_MODULE = "repro.engine.events"
_OBSERVER_BASE = ("repro.engine.observers", "Observer")

#: Dataclass field annotations that survive into event_payload().
_SCALAR_ANNOTATIONS = frozenset({
    "str", "int", "float", "bool", "None",
    "Optional[str]", "Optional[int]", "Optional[float]", "Optional[bool]",
})


@cross_file_rule("RPR012", "event-exhaustiveness",
                 "the engine event taxonomy, EVENT_KINDS, event_payload "
                 "opacity declarations, and every Observer subclass "
                 "must agree: each event registered, each field scalar "
                 "or declared opaque, each kind handled or ignored")
def check_event_exhaustiveness(index: ProjectIndex) -> Iterator[Finding]:
    events = index.modules.get(_EVENTS_MODULE)
    if events is None:
        return  # single-file runs / fixtures without the taxonomy

    event_classes = [
        (module, cls)
        for module, cls in index.subclasses_of(_EVENTS_MODULE,
                                               "CampaignEvent")
        if module == _EVENTS_MODULE]
    registered = set(events.event_kinds_classes)
    opaque = set()
    for binding in events.bindings:
        if binding.name == "OPAQUE_FIELDS":
            opaque = set(binding.strings)

    kinds: Dict[str, str] = {}
    for _module, cls in event_classes:
        kind = cls.attr("kind")
        if kind is None:
            yield Finding(events.path, cls.line, "RPR012",
                          f"event class {cls.name} declares no literal "
                          f"`kind` identifier")
            continue
        if kind in kinds:
            yield Finding(events.path, cls.line, "RPR012",
                          f"event classes {kinds[kind]} and {cls.name} "
                          f"share the kind string {kind!r}")
        kinds[kind] = cls.name
        if cls.name not in registered:
            yield Finding(events.path, cls.line, "RPR012",
                          f"event class {cls.name} is missing from the "
                          f"EVENT_KINDS registry tuple")

    # Payload completeness: every field flattens or is declared opaque.
    for _module, cls in event_classes:
        for name, annotation, line in cls.fields:
            if annotation in _SCALAR_ANNOTATIONS:
                continue
            if name not in opaque:
                yield Finding(
                    events.path, line, "RPR012",
                    f"field {cls.name}.{name} ({annotation}) would be "
                    f"silently dropped by event_payload(); make it a "
                    f"scalar or add {name!r} to OPAQUE_FIELDS")

    # Observer exhaustiveness: every kind handled or declared ignored.
    handler_names = {kind: "on_" + kind.replace("-", "_")
                     for kind in kinds}
    valid_handlers = set(handler_names.values()) | {"on_event"}
    for module, cls in index.subclasses_of(*_OBSERVER_BASE):
        facts = index.modules[module]
        if "on_event" in cls.methods:
            continue  # generic handler: sees every kind by definition
        ignored = set(cls.tuple_attr("IGNORED_EVENTS") or ())
        for method in cls.methods:
            if method.startswith("on_") and method not in valid_handlers:
                yield Finding(
                    facts.path, cls.line, "RPR012",
                    f"{cls.name}.{method} matches no engine event kind "
                    f"(known: {', '.join(sorted(kinds))})")
        for kind in sorted(kinds):
            if handler_names[kind] in cls.methods or kind in ignored:
                continue
            yield Finding(
                facts.path, cls.line, "RPR012",
                f"observer {cls.name} neither handles nor ignores "
                f"event kind {kind!r}; add on_"
                f"{kind.replace('-', '_')}() or list it in "
                f"IGNORED_EVENTS")
        for kind in sorted(ignored):
            if kind not in kinds:
                yield Finding(
                    facts.path, cls.line, "RPR012",
                    f"observer {cls.name} ignores unknown event kind "
                    f"{kind!r}")


# --------------------------------------------------------------------------
# RPR013 alert-rule-exhaustiveness
# --------------------------------------------------------------------------

_RULES_MODULE = "repro.alerts.rules"
_EVAL_MODULE = "repro.alerts.engine"
_EVALUATOR_CLASS = "RuleEvaluator"


@cross_file_rule("RPR013", "alert-rule-exhaustiveness",
                 "the alert rule taxonomy, RULE_KINDS, and the "
                 "RuleEvaluator dispatch table must agree: each rule "
                 "class registered with a unique literal kind, each "
                 "kind handled by an _eval_* method, no stray handlers")
def check_alert_rule_exhaustiveness(index: ProjectIndex
                                    ) -> Iterator[Finding]:
    rules = index.modules.get(_RULES_MODULE)
    if rules is None:
        return  # single-file runs / fixtures without the taxonomy

    rule_classes = [
        (module, cls)
        for module, cls in index.subclasses_of(_RULES_MODULE, "AlertRule")
        if module == _RULES_MODULE]
    registered = set(rules.rule_kinds_classes)

    kinds: Dict[str, str] = {}
    for _module, cls in rule_classes:
        kind = cls.attr("kind")
        if kind is None:
            yield Finding(rules.path, cls.line, "RPR013",
                          f"rule class {cls.name} declares no literal "
                          f"`kind` identifier")
            continue
        if kind in kinds:
            yield Finding(rules.path, cls.line, "RPR013",
                          f"rule classes {kinds[kind]} and {cls.name} "
                          f"share the kind string {kind!r}")
        kinds[kind] = cls.name
        if cls.name not in registered:
            yield Finding(rules.path, cls.line, "RPR013",
                          f"rule class {cls.name} is missing from the "
                          f"RULE_KINDS registry tuple")

    # Registry soundness: every RULE_KINDS entry is a real rule class.
    class_names = {cls.name for _module, cls in rule_classes}
    for name in sorted(registered):
        if name not in class_names:
            yield Finding(
                rules.path, 1, "RPR013",
                f"RULE_KINDS references {name}, which is not an "
                f"AlertRule subclass in {_RULES_MODULE}")

    # Evaluator exhaustiveness: one _eval_* handler per kind, no more.
    engine = index.modules.get(_EVAL_MODULE)
    if engine is None:
        return
    evaluator = None
    for cls in engine.classes:
        if cls.name == _EVALUATOR_CLASS:
            evaluator = cls
            break
    if evaluator is None:
        yield Finding(engine.path, 1, "RPR013",
                      f"{_EVAL_MODULE} defines no {_EVALUATOR_CLASS} "
                      f"class to dispatch the rule kinds")
        return
    handler_names = {kind: "_eval_" + kind.replace("-", "_")
                     for kind in kinds}
    for kind in sorted(kinds):
        if handler_names[kind] not in evaluator.methods:
            yield Finding(
                engine.path, evaluator.line, "RPR013",
                f"{_EVALUATOR_CLASS} has no handler for rule kind "
                f"{kind!r}; add {handler_names[kind]}()")
    valid_handlers = set(handler_names.values())
    for method in evaluator.methods:
        if method.startswith("_eval_") and method not in valid_handlers:
            yield Finding(
                engine.path, evaluator.line, "RPR013",
                f"{_EVALUATOR_CLASS}.{method} matches no registered "
                f"rule kind (known: {', '.join(sorted(kinds))})")
