"""Rule registry and the built-in invariant rules.

Codes are stable and documented in README.md:

========  ==========================  =============================================
code      name                        enforces
========  ==========================  =============================================
RPR000    parse-error                 every scanned file must parse
RPR001    nondeterministic-call       all entropy flows through ``repro.rng``
RPR002    magic-unit-literal          all conversions flow through ``repro.units``
RPR003    bare-builtin-raise          all errors derive from ``ReproError``
RPR004    layering-violation          ``netsim -> cloud -> tools -> core ->
                                      experiments`` import order
RPR005    bare-except                 no silent swallowing of every exception
RPR006    unseeded-rng-construction   generators are built only by ``SeedTree``
RPR007    engine-isolation            ``repro.engine`` imports only
                                      units/errors/rng/simclock/obs
RPR008    obs-confinement             wall-clock profiling
                                      (``time.perf_counter`` family) only
                                      inside ``repro.obs``, and ``repro.obs``
                                      imports only units/errors/simclock
RPR009    shard-unsafe-global         no runtime-mutated module-level state
                                      outside the allowlisted registries
RPR010    unordered-iteration         no unsorted iteration over sets (or
                                      mutable-global dict views)
RPR011    seedtree-label-collision    SeedTree stream labels are unique
                                      across the whole tree
RPR012    event-exhaustiveness        every engine event class is registered,
                                      payload-complete, and handled or
                                      explicitly ignored by each observer
========  ==========================  =============================================

Each single-file rule is a plain function ``(ModuleContext) ->
Iterable[Finding]`` registered with the :func:`rule` decorator.
Whole-program rules (RPR009+, in :mod:`repro.lint.xrules`) take a
:class:`~repro.lint.index.ProjectIndex` instead and register with
:func:`cross_file_rule`; the engine runs them once per lint run, after
the per-file pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigError
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import ModuleContext
    from .index import ProjectIndex

__all__ = ["LAYERS", "Rule", "SCOPE_FILE", "SCOPE_PROJECT", "all_rules",
           "cross_file_rule", "get_rule", "rule"]

RuleFunc = Callable[["ModuleContext"], Iterable[Finding]]
CrossFileRuleFunc = Callable[["ProjectIndex"], Iterable[Finding]]

#: Lowest layer first.  A module may import its own layer and lower
#: layers; importing a *higher* layer is a violation (RPR004).
LAYERS: Tuple[str, ...] = ("netsim", "cloud", "tools", "core", "experiments")

#: Rule scopes: per-file rules see one :class:`ModuleContext`;
#: project rules see the whole :class:`~repro.lint.index.ProjectIndex`.
SCOPE_FILE = "file"
SCOPE_PROJECT = "project"


@dataclass(frozen=True)
class Rule:
    """One registered invariant."""

    code: str
    name: str
    summary: str
    func: Callable[..., Iterable[Finding]]
    scope: str = SCOPE_FILE


# RPR009 carve-out: the rule registry is the canonical allowlisted
# registry - populated once at import time by the decorators below and
# only read afterwards (see _SHARD_SAFE_GLOBALS in xrules.py).
_REGISTRY: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register a single-file invariant rule under *code*."""

    def decorate(func: RuleFunc) -> RuleFunc:
        if code in _REGISTRY:
            raise ConfigError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code, name, summary, func, SCOPE_FILE)
        return func

    return decorate


def cross_file_rule(code: str, name: str, summary: str
                    ) -> Callable[[CrossFileRuleFunc], CrossFileRuleFunc]:
    """Register a whole-program invariant rule under *code*.

    The decorated function receives the
    :class:`~repro.lint.index.ProjectIndex` of the entire lint target
    and runs exactly once per lint run, after the per-file pass.
    """

    def decorate(func: CrossFileRuleFunc) -> CrossFileRuleFunc:
        if code in _REGISTRY:
            raise ConfigError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code, name, summary, func, SCOPE_PROJECT)
        return func

    return decorate


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ConfigError(f"unknown rule code {code!r}; "
                          f"known: {', '.join(sorted(_REGISTRY))}") from None


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the canonical dotted module path they denote.

    ``import numpy as np``            -> ``{"np": "numpy"}``
    ``import os.path``                -> ``{"os": "os"}``
    ``from numpy import random``      -> ``{"random": "numpy.random"}``
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``

    Only import-introduced names are mapped, so a local variable that
    happens to be called ``random`` never triggers the determinism rule.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    top = name.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve a ``Name``/``Attribute`` chain to ``a.b.c``, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _canonical_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a call target, resolved through imports.

    Returns ``None`` when the leading name was not introduced by an
    import (attribute access on local objects stays unflagged).
    """
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    target = aliases.get(head)
    if target is None:
        return None
    return f"{target}.{rest}" if rest else target


def _iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# --------------------------------------------------------------------------
# RPR001 nondeterministic-call
# --------------------------------------------------------------------------

#: Exact call targets that read wall clocks or OS entropy.  The
#: duration-only perf-counter family is NOT here: it cannot leak an
#: absolute date, so RPR008 governs it with a repro.obs carve-out.
_NONDET_CALLS = frozenset({
    "time.time", "time.time_ns",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Whole modules whose every call is nondeterministic (or OS entropy).
_NONDET_PREFIXES = ("random.", "secrets.")


@rule("RPR001", "nondeterministic-call",
      "wall-clock / OS-entropy call; all randomness must flow through "
      "repro.rng.SeedTree and all time through repro.simclock")
def check_nondeterministic_calls(ctx: "ModuleContext") -> Iterator[Finding]:
    aliases = _import_aliases(ctx.tree)
    for call in _iter_calls(ctx.tree):
        target = _canonical_call(call, aliases)
        if target is None:
            continue
        if target in _NONDET_CALLS or target.startswith(_NONDET_PREFIXES):
            yield Finding(ctx.path, call.lineno, "RPR001",
                          f"nondeterministic call {target}() - derive "
                          f"randomness from SeedTree and time from simclock")


# --------------------------------------------------------------------------
# RPR002 magic-unit-literal
# --------------------------------------------------------------------------

#: Conversion factors that must come from repro.units (8 = bits/byte,
#: 1000/1e6/1e9 = SI steps between kbit/Mbit/Gbit and KB/MB/GB).
_MAGIC_UNIT_VALUES = frozenset({8, 1000, 1_000_000, 1_000_000_000})

_UNIT_SUFFIXES = ("_mbps", "_bytes", "_ms", "_gb")


def _is_magic_constant(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and float(node.value) in _MAGIC_UNIT_VALUES)


def _is_unit_name(identifier: str) -> bool:
    low = identifier.lower()
    return any(low.endswith(suffix) or (suffix + "_") in low
               for suffix in _UNIT_SUFFIXES)


def _mentions_unit_name(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _is_unit_name(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_unit_name(sub.attr):
            return True
    return False


@rule("RPR002", "magic-unit-literal",
      "inline unit-conversion constant (8 / 1000 / 1e6 / 1e9) next to a "
      "*_mbps/*_bytes/*_ms/*_gb value; use the repro.units helpers")
def check_magic_unit_literals(ctx: "ModuleContext") -> Iterator[Finding]:
    if ctx.module == "repro.units":
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.BinOp):
            continue
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            continue
        left, right = node.left, node.right
        if _is_magic_constant(right):
            const, other = right, left
        elif _is_magic_constant(left):
            const, other = left, right
        else:
            continue
        if _mentions_unit_name(other):
            assert isinstance(const, ast.Constant)
            yield Finding(ctx.path, node.lineno, "RPR002",
                          f"magic unit literal {const.value!r} in "
                          f"arithmetic on a unit-suffixed value; use a "
                          f"repro.units conversion helper")


# --------------------------------------------------------------------------
# RPR003 bare-builtin-raise
# --------------------------------------------------------------------------

_BUILTIN_RAISES = frozenset({"ValueError", "RuntimeError", "KeyError", "Exception"})


@rule("RPR003", "bare-builtin-raise",
      "raise of a builtin exception; raise a ReproError subclass from "
      "repro.errors so callers can catch one hierarchy at the boundary")
def check_bare_builtin_raises(ctx: "ModuleContext") -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in _BUILTIN_RAISES:
            yield Finding(ctx.path, node.lineno, "RPR003",
                          f"raise of builtin {exc.id}; use a ReproError "
                          f"subclass from repro.errors")


# --------------------------------------------------------------------------
# RPR004 layering-violation
# --------------------------------------------------------------------------

def _module_layer(module: Optional[str]) -> Optional[int]:
    """Layer index of a dotted repro module, or None if unlayered."""
    if not module:
        return None
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro" and parts[1] in LAYERS:
        return LAYERS.index(parts[1])
    return None


def _resolve_relative(ctx: "ModuleContext", node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted path of a relative import, or None if unresolvable."""
    if ctx.module is None:
        return None
    package = ctx.module if ctx.is_package else ctx.module.rpartition(".")[0]
    parts = package.split(".") if package else []
    ascend = node.level - 1
    if ascend > len(parts):
        return None
    base = parts[: len(parts) - ascend] if ascend else parts
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _imported_modules(ctx: "ModuleContext") -> Iterator[Tuple[int, str]]:
    """All (line, dotted-module) edges this module imports."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                yield node.lineno, name.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module
            else:
                base = _resolve_relative(ctx, node)
            if base is None:
                continue
            # ``from . import x`` depends on the sibling submodule, not
            # on the importer's own parent package - yielding the bare
            # package there would make every such import a pseudo-cycle
            # with the package __init__.
            if node.module is not None or node.level == 0:
                yield node.lineno, base
            # ``from repro import core`` binds a submodule: also consider
            # each imported name as a module path one level deeper.
            for name in node.names:
                if name.name != "*":
                    yield node.lineno, f"{base}.{name.name}"


#: Provider vocabulary modules must stay leaf data: they may not pull
#: in the orchestration layers (``repro.core`` is already above the
#: cloud layer; ``repro.engine`` is unlayered so it needs this
#: explicit ban).
_PROVIDER_PACKAGE = "repro.cloud.providers"
_PROVIDER_BANNED = ("repro.core", "repro.engine")


def _provider_banned_import(imported: str) -> Optional[str]:
    for banned in _PROVIDER_BANNED:
        if imported == banned or imported.startswith(banned + "."):
            return banned
    return None


@rule("RPR004", "layering-violation",
      "import that points up the layer stack; the declared order is "
      "netsim -> cloud -> tools -> core -> experiments (and "
      "repro.cloud.providers may not import repro.core/repro.engine)")
def check_layering(ctx: "ModuleContext") -> Iterator[Finding]:
    own_layer = _module_layer(ctx.module)
    is_provider = (ctx.module == _PROVIDER_PACKAGE
                   or ctx.module.startswith(_PROVIDER_PACKAGE + "."))
    if own_layer is None and not is_provider:
        return
    seen = set()
    for line, imported in _imported_modules(ctx):
        if is_provider:
            banned = _provider_banned_import(imported)
            if banned is not None and (line, banned) not in seen:
                seen.add((line, banned))
                yield Finding(ctx.path, line, "RPR004",
                              f"provider module imports {imported}; "
                              f"{_PROVIDER_PACKAGE} is leaf vocabulary "
                              f"and may not depend on {banned}")
                continue
        if own_layer is None:
            continue
        other_layer = _module_layer(imported)
        if other_layer is None or other_layer <= own_layer:
            continue
        key = (line, imported.split(".")[1])
        if key in seen:
            continue
        seen.add(key)
        yield Finding(ctx.path, line, "RPR004",
                      f"layer {LAYERS[own_layer]!r} imports higher layer "
                      f"{LAYERS[other_layer]!r} ({imported}); allowed "
                      f"order is {' -> '.join(LAYERS)}")


# --------------------------------------------------------------------------
# RPR005 bare-except
# --------------------------------------------------------------------------

@rule("RPR005", "bare-except",
      "bare `except:` swallows every exception including SystemExit; "
      "catch a ReproError subclass (or at minimum Exception)")
def check_bare_except(ctx: "ModuleContext") -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(ctx.path, node.lineno, "RPR005",
                          "bare except: catches everything including "
                          "KeyboardInterrupt; name the exception type")


# --------------------------------------------------------------------------
# RPR006 unseeded-rng-construction
# --------------------------------------------------------------------------

#: Only repro.rng may talk to numpy.random directly.
_RNG_HOME_MODULE = "repro.rng"


@rule("RPR006", "unseeded-rng-construction",
      "numpy.random generator constructed outside repro.rng; request a "
      "stream from SeedTree.generator(label) instead")
def check_rng_construction(ctx: "ModuleContext") -> Iterator[Finding]:
    if ctx.module == _RNG_HOME_MODULE:
        return
    aliases = _import_aliases(ctx.tree)
    for call in _iter_calls(ctx.tree):
        target = _canonical_call(call, aliases)
        if target is None:
            continue
        if target.startswith("numpy.random."):
            yield Finding(ctx.path, call.lineno, "RPR006",
                          f"direct numpy.random use ({target}); construct "
                          f"generators via SeedTree.generator(label) in "
                          f"repro.rng")


# --------------------------------------------------------------------------
# RPR007 engine-isolation
# --------------------------------------------------------------------------

#: The only repro subpackages/modules repro.engine may import.  Domain
#: objects (VMs, schedules, datasets) reach the engine as opaque duck-
#: typed payloads, never as imports, so the instrumentation seam can
#: never grow an upward dependency on the layers it instruments.
#: ``obs`` is allowed because metrics plumbing (the shared histogram
#: shape, the registry observers feed) lives there, and obs itself sits
#: below the engine in the dependency order (see RPR008).
_ENGINE_ALLOWED = frozenset(
    {"units", "errors", "rng", "simclock", "engine", "obs"})


@rule("RPR007", "engine-isolation",
      "repro.engine imports a domain layer; the engine may import only "
      "repro.units/errors/rng/simclock/obs and itself")
def check_engine_isolation(ctx: "ModuleContext") -> Iterator[Finding]:
    if not (ctx.module or "").startswith("repro.engine"):
        return
    seen = set()
    for line, imported in _imported_modules(ctx):
        parts = imported.split(".")
        if parts[0] != "repro" or len(parts) < 2:
            continue
        if parts[1] in _ENGINE_ALLOWED:
            continue
        key = (line, parts[1])
        if key in seen:
            continue
        seen.add(key)
        yield Finding(ctx.path, line, "RPR007",
                      f"repro.engine imports {imported}; the engine may "
                      f"depend only on repro.units/errors/rng/simclock/obs "
                      f"- pass domain objects in as opaque payloads instead")


# --------------------------------------------------------------------------
# RPR008 obs-confinement
# --------------------------------------------------------------------------

#: Duration-only wall-clock reads.  These are allowed *solely* inside
#: repro.obs, where they become span annotations for profiling - a
#: scoped carve-out from the RPR001 wall-clock ban.
_PERF_COUNTER_CALLS = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
})

#: The only repro subpackages/modules repro.obs may import.  Keeping
#: obs below every simulation layer guarantees instrumentation can
#: observe the stack but never reach into it.
_OBS_ALLOWED = frozenset({"units", "errors", "simclock", "obs"})

#: The one package where wall-clock profiling may live.
_OBS_HOME_PREFIX = "repro.obs"


def _in_obs(module: Optional[str]) -> bool:
    return (module or "").startswith(_OBS_HOME_PREFIX)


@rule("RPR008", "obs-confinement",
      "time.perf_counter-family call outside repro.obs, or repro.obs "
      "importing beyond repro.units/errors/simclock; wall-time is a "
      "span annotation, never simulation data")
def check_obs_confinement(ctx: "ModuleContext") -> Iterator[Finding]:
    if _in_obs(ctx.module):
        # Inside obs the perf-counter family is legal; police imports.
        seen = set()
        for line, imported in _imported_modules(ctx):
            parts = imported.split(".")
            if parts[0] != "repro" or len(parts) < 2:
                continue
            if parts[1] in _OBS_ALLOWED:
                continue
            key = (line, parts[1])
            if key in seen:
                continue
            seen.add(key)
            yield Finding(ctx.path, line, "RPR008",
                          f"repro.obs imports {imported}; obs may depend "
                          f"only on repro.units/errors/simclock so it can "
                          f"observe every layer without joining any")
        return
    aliases = _import_aliases(ctx.tree)
    for call in _iter_calls(ctx.tree):
        target = _canonical_call(call, aliases)
        if target in _PERF_COUNTER_CALLS:
            yield Finding(ctx.path, call.lineno, "RPR008",
                          f"wall-clock profiling call {target}() outside "
                          f"repro.obs; wrap the region in an obs span "
                          f"instead so wall-time stays an annotation")
