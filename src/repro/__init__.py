"""CLASP reproduction: cloud network performance measurement in simulation.

This package reproduces "Measuring the network performance of Google
Cloud Platform" (IMC 2021) end to end: a synthetic Internet and cloud
platform substrate, the speed test infrastructure, the measurement
tooling (traceroute, bdrmap, flow capture), and CLASP itself - server
selection, VM orchestration, longitudinal campaigns, and congestion
analysis.

Quickstart::

    from repro.experiments import build_scenario
    from repro.core import Clasp

    scenario = build_scenario(seed=7, scale=0.1)
    clasp = Clasp(scenario)
    selection = clasp.select_topology_servers("us-west1")
    dataset = clasp.run_campaign(days=3)
    report = clasp.detect_congestion(dataset)
"""

__version__ = "1.0.0"

from .errors import ReproError
from .rng import SeedTree
from .simclock import SimClock

__all__ = ["ReproError", "SeedTree", "SimClock", "__version__"]
