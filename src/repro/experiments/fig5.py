"""Fig. 5 - premium vs standard tier, europe-west1.

CDFs of the relative difference Delta_m = (T_prem - T_std) / T_std for
download throughput (5a), upload throughput (5b), and latency (5c),
with measurements grouped by the preliminary-study latency class of
the target (premium-lower / comparable / standard-lower).

Paper shape: the standard tier's throughput is generally higher
(download deltas skew negative, at least 87 % of measurements negative
for 8 servers), most relative differences are modest, and the premium
tier's latency advantage matches the preliminary classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..core.analysis import TierComparison, tier_comparison
from ..core.selection.differential import DifferentialSelection, LatencyClass
from ..report.figures import FigureSeries
from ..report.tables import TextTable, format_percent
from .runner import ExperimentCache

__all__ = ["Fig5Result", "run", "render"]

REGION = "europe-west1"


@dataclass
class Fig5Result:
    comparison: TierComparison
    selection: DifferentialSelection
    #: metric -> latency class -> concatenated deltas
    deltas_by_class: Dict[str, Dict[LatencyClass, np.ndarray]] = \
        field(default_factory=dict)

    def all_deltas(self, metric: str) -> np.ndarray:
        return self.comparison.all_deltas(metric)

    def standard_faster_fraction(self, metric: str = "download") -> float:
        deltas = self.all_deltas(metric)
        return float((deltas < 0).mean()) if deltas.size else 0.0

    def modest_delta_fraction(self, metric: str = "download",
                              bound: float = 0.5) -> float:
        deltas = self.all_deltas(metric)
        if deltas.size == 0:
            return 0.0
        return float((np.abs(deltas) < bound).mean())

    def consistently_standard_faster(self, cutoff: float = 0.87
                                     ) -> List[str]:
        return [s for s in self.comparison.servers()
                if self.comparison.standard_faster_fraction(s) >= cutoff]

    def figure_series(self) -> List[FigureSeries]:
        out = []
        for metric in ("download", "upload", "latency"):
            for cls, deltas in self.deltas_by_class.get(metric, {}).items():
                if deltas.size:
                    out.append(FigureSeries(
                        label=f"5{'abc'['download upload latency'.split().index(metric)]} "
                              f"{cls.value}",
                        y=list(deltas), kind="cdf"))
        return out


def run(cache: ExperimentCache) -> Fig5Result:
    dataset = cache.differential_dataset()
    selection = cache.differential_selection(REGION)
    comparison = tier_comparison(dataset, REGION)

    class_of: Dict[str, LatencyClass] = {}
    for server, candidate in selection.selected:
        class_of[server.server_id] = candidate.latency_class

    result = Fig5Result(comparison=comparison, selection=selection)
    metric_data = {
        "download": comparison.delta_download,
        "upload": comparison.delta_upload,
        "latency": comparison.delta_latency,
    }
    for metric, per_server in metric_data.items():
        grouped: Dict[LatencyClass, List[np.ndarray]] = {
            c: [] for c in LatencyClass}
        for server_id, deltas in per_server.items():
            cls = class_of.get(server_id)
            if cls is not None:
                grouped[cls].append(deltas)
        result.deltas_by_class[metric] = {
            cls: (np.concatenate(chunks) if chunks else np.array([]))
            for cls, chunks in grouped.items()}
    return result


def render(result: Fig5Result) -> str:
    table = TextTable(
        ["metric", "latency class", "n", "std faster", "median delta",
         "|delta|<0.5"],
        title=f"Fig. 5: tier comparison in {REGION} "
              "(delta = (prem - std) / std)")
    for metric in ("download", "upload", "latency"):
        for cls in LatencyClass:
            deltas = result.deltas_by_class[metric].get(cls,
                                                        np.array([]))
            if deltas.size == 0:
                continue
            table.add_row([
                metric, cls.value, deltas.size,
                format_percent(float((deltas < 0).mean())),
                f"{np.median(deltas):+.3f}",
                format_percent(float((np.abs(deltas) < 0.5).mean())),
            ])
    consistent = result.consistently_standard_faster()
    footer = (
        f"\noverall: std faster downloads in "
        f"{format_percent(result.standard_faster_fraction('download'))} "
        "of matched hours (paper: standard generally higher)"
        f"\nservers with >=87% std-faster downloads: {len(consistent)} "
        "(paper: 8)"
        f"\n|delta| < 0.5 for "
        f"{format_percent(result.modest_delta_fraction('download'))} of "
        "download measurements (paper: >92%)")
    return table.render() + footer
