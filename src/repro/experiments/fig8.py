"""Fig. 8 - congested vs non-congested servers by business type.

Per region, resolve each measured server's business type (ipinfo
analog: ISP / Hosting / Business / Education / Unknown), label servers
"congested" when more than 10 % of their days contain at least one
congestion event, and count both groups.  Paper: most servers are in
ISP networks, and 30-77 % of topology-selected ISP servers show signs
of congestion; the two tiers look similar for differential servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..cloud.tiers import NetworkTier
from ..core.analysis import congested_server_summary
from ..core.congestion import PAPER_THRESHOLD, detect
from ..report.tables import TextTable, format_percent
from .runner import ExperimentCache

__all__ = ["Fig8Result", "run", "render"]


@dataclass
class Fig8Result:
    #: (region, method/tier label) -> business type -> (congested, total)
    summaries: Dict[Tuple[str, str], Dict[str, Tuple[int, int]]] = \
        field(default_factory=dict)

    def isp_congested_fraction(self, region: str,
                               label: str = "topology") -> Optional[float]:
        summary = self.summaries.get((region, label))
        if not summary or "isp" not in summary:
            return None
        congested, total = summary["isp"]
        return congested / total if total else None

    def isp_fraction_range(self, label: str = "topology"
                           ) -> Tuple[float, float]:
        values = [self.isp_congested_fraction(region, label)
                  for (region, lbl) in self.summaries if lbl == label]
        values = [v for v in values if v is not None]
        if not values:
            return (0.0, 0.0)
        return (min(values), max(values))


def _resolve_business_types(cache, dataset) -> None:
    """Replace generator labels with ipinfo lookups (with Unknowns)."""
    ipinfo = cache.scenario.clasp.ipinfo
    catalog = cache.scenario.catalog
    for server_id, meta in list(dataset.servers.items()):
        server = catalog.get(server_id)
        record = ipinfo.lookup(server.ip)
        # ServerMeta is frozen; rebuild with the resolved label.
        from ..core.records import ServerMeta
        dataset.servers[server_id] = ServerMeta(
            server_id=meta.server_id, asn=meta.asn, sponsor=meta.sponsor,
            city_key=meta.city_key, country=meta.country,
            utc_offset_hours=meta.utc_offset_hours, lat=meta.lat,
            lon=meta.lon, business_type=record.business_type.value)


def run(cache: ExperimentCache) -> Fig8Result:
    result = Fig8Result()
    topo_ds = cache.topology_dataset()
    _resolve_business_types(cache, topo_ds)
    topo_report = detect(topo_ds, threshold=PAPER_THRESHOLD)
    for region in cache.scenario.us_regions:
        result.summaries[(region, "topology")] = congested_server_summary(
            topo_ds, topo_report, region)

    diff_ds = cache.differential_dataset()
    _resolve_business_types(cache, diff_ds)
    diff_report = detect(diff_ds, threshold=PAPER_THRESHOLD)
    for region in cache.scenario.differential_regions:
        for tier in NetworkTier:
            result.summaries[(region, tier.value)] = \
                congested_server_summary(diff_ds, diff_report, region,
                                         tier=tier)
    return result


def render(result: Fig8Result) -> str:
    table = TextTable(
        ["region", "method/tier", "type", "congested", "total",
         "fraction"],
        title="Fig. 8: congested / non-congested servers by business type")
    for (region, label), summary in sorted(result.summaries.items()):
        for btype, (congested, total) in sorted(summary.items()):
            table.add_row([region, label, btype, congested, total,
                           format_percent(congested / total)
                           if total else "-"])
    lo, hi = result.isp_fraction_range("topology")
    footer = (f"\nISP servers congested (topology): "
              f"{format_percent(lo)} - {format_percent(hi)} "
              "(paper: 30% - 77%)")
    return table.render() + footer
