"""Fig. 4 - best-performance scatter: p95 download vs p5 latency.

Panel (a): topology-based servers from the U.S. regions (80 % of
servers between 200-600 Mbps; >90 % of points under 150 ms and above
200 Mbps; nothing saturates the 1 Gbps cap).  Panels (b)/(c): the
differential servers over the premium / standard tier (premium shows
the smaller throughput variance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..cloud.tiers import NetworkTier
from ..core.analysis import ScatterPoint, performance_scatter
from ..report.figures import FigureSeries
from ..report.tables import TextTable, format_percent
from .runner import ExperimentCache

__all__ = ["Fig4Panel", "Fig4Result", "run", "render"]


@dataclass
class Fig4Panel:
    name: str
    points: List[ScatterPoint]

    @property
    def downloads(self) -> np.ndarray:
        return np.array([p.p95_download_mbps for p in self.points])

    @property
    def latencies(self) -> np.ndarray:
        return np.array([p.p5_latency_ms for p in self.points])

    def in_band_fraction(self, lo: float = 200.0, hi: float = 600.0) -> float:
        d = self.downloads
        if d.size == 0:
            return 0.0
        return float(((d >= lo) & (d <= hi)).mean())

    def low_latency_fraction(self, cutoff_ms: float = 150.0) -> float:
        lat = self.latencies
        if lat.size == 0:
            return 0.0
        return float((lat < cutoff_ms).mean())

    @property
    def max_download(self) -> float:
        d = self.downloads
        return float(d.max()) if d.size else 0.0

    @property
    def download_std(self) -> float:
        d = self.downloads
        return float(d.std()) if d.size else 0.0

    def figure_series(self) -> List[FigureSeries]:
        return [
            FigureSeries(label=f"{self.name} p95 download (Mbps)",
                         y=list(self.downloads), kind="scatter"),
            FigureSeries(label=f"{self.name} p5 latency (ms)",
                         y=list(self.latencies), kind="scatter"),
        ]


@dataclass
class Fig4Result:
    panels: Dict[str, Fig4Panel]


def run(cache: ExperimentCache) -> Fig4Result:
    topo_ds = cache.topology_dataset()
    diff_ds = cache.differential_dataset()
    min_samples = max(24, cache.scenario.config.scale * 48)
    panels = {
        "4a topology (premium)": Fig4Panel(
            "4a", performance_scatter(topo_ds,
                                      min_samples=int(min_samples))),
        "4b differential premium": Fig4Panel(
            "4b", performance_scatter(diff_ds, tier=NetworkTier.PREMIUM,
                                      min_samples=int(min_samples))),
        "4c differential standard": Fig4Panel(
            "4c", performance_scatter(diff_ds, tier=NetworkTier.STANDARD,
                                      min_samples=int(min_samples))),
    }
    return Fig4Result(panels=panels)


def render(result: Fig4Result) -> str:
    table = TextTable(
        ["panel", "points", "200-600Mbps", "<150ms", "max Mbps",
         "download stddev"],
        title="Fig. 4: p95 download vs p5 latency per (server, month)")
    for name, panel in result.panels.items():
        table.add_row([
            name, len(panel.points),
            format_percent(panel.in_band_fraction()),
            format_percent(panel.low_latency_fraction()),
            f"{panel.max_download:.0f}",
            f"{panel.download_std:.0f}",
        ])
    prem = result.panels["4b differential premium"]
    std = result.panels["4c differential standard"]
    footer = (
        "\npaper: 80% of 4a servers in 200-600 Mbps; premium variance < "
        f"standard variance (measured: {prem.download_std:.0f} vs "
        f"{std.download_std:.0f})")
    return table.render() + footer
