"""Fig. 3 - a two-day download time series with congestion highlighted.

The paper shows Cox (Las Vegas) to us-west1: hourly download throughput
over two days, the normalized intra-day difference V_H, and the hours
where V_H > 0.5 shaded.  We pick the pair with the most congestion
events whose server belongs to the Cox-analog story network (falling
back to the most-congested pair overall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.congestion import PAPER_THRESHOLD, detect, hourly_variability
from ..report.ascii import ascii_series, sparkline
from ..report.figures import FigureSeries
from ..simclock import format_ts
from ..units import DAY
from .runner import ExperimentCache
from ..errors import AnalysisError

__all__ = ["Fig3Result", "run", "render"]


@dataclass
class Fig3Result:
    pair: Tuple[str, str, str]
    label: str
    ts: np.ndarray
    throughput: np.ndarray
    v_h: np.ndarray
    congested_mask: np.ndarray
    threshold: float

    @property
    def n_congested_hours(self) -> int:
        return int(self.congested_mask.sum())

    def figure_series(self) -> List[FigureSeries]:
        return [
            FigureSeries(label=f"download {self.label}",
                         x=list(self.ts), y=list(self.throughput)),
            FigureSeries(label="V_H", x=list(self.ts), y=list(self.v_h)),
        ]


def run(cache: ExperimentCache, window_days: int = 2) -> Fig3Result:
    dataset = cache.topology_dataset()
    report = detect(dataset, threshold=PAPER_THRESHOLD)

    cox_asn = cache.scenario.story_asns.get("cox")
    candidates = {}
    for event in report.events:
        candidates[event.pair] = candidates.get(event.pair, 0) + 1
    chosen = None
    if cox_asn is not None:
        cox_pairs = [p for p in candidates
                     if dataset.server_meta(p[1]).asn == cox_asn]
        if cox_pairs:
            chosen = max(cox_pairs, key=lambda p: candidates[p])
    if chosen is None and candidates:
        chosen = max(candidates, key=lambda p: candidates[p])
    if chosen is None:
        raise AnalysisError("no congestion events found to illustrate")

    series = dataset.table.series(chosen)
    ts_all, vh_all = hourly_variability(dataset, chosen)
    # Find the densest 2-day window of events.
    events_ts = np.array(sorted(
        e.ts for e in report.events_of(chosen)))
    best_start = events_ts[0]
    best_count = 0
    for start in events_ts:
        count = int(((events_ts >= start)
                     & (events_ts < start + window_days * DAY)).sum())
        if count > best_count:
            best_count = count
            best_start = start
    window_start = (best_start // DAY) * DAY
    window_end = window_start + window_days * DAY

    mask = (series["ts"] >= window_start) & (series["ts"] < window_end)
    vh_mask = (ts_all >= window_start) & (ts_all < window_end)
    ts = series["ts"][mask]
    vh_ts = ts_all[vh_mask]
    vh = vh_all[vh_mask]
    # Align V_H onto the throughput timestamps.
    vh_aligned = np.interp(ts, vh_ts, vh) if vh_ts.size else np.zeros(ts.size)

    meta = dataset.server_meta(chosen[1])
    return Fig3Result(
        pair=chosen,
        label=f"{meta.label} -> {chosen[0]}",
        ts=ts,
        throughput=series["download"][mask],
        v_h=vh_aligned,
        congested_mask=vh_aligned > PAPER_THRESHOLD,
        threshold=PAPER_THRESHOLD,
    )


def render(result: Fig3Result) -> str:
    shade = "".join("^" if c else " " for c in result.congested_mask)
    lines = [
        f"Fig. 3: two-day download throughput, {result.label}",
        f"window starts {format_ts(result.ts[0]) if result.ts.size else '-'} UTC",
        ascii_series(result.throughput, width=max(8, result.ts.size)),
        f"congested  {shade}",
        f"V_H        {sparkline(result.v_h)}",
        f"{result.n_congested_hours} congested hours "
        f"(V_H > {result.threshold}) in the window",
    ]
    return "\n".join(lines)
