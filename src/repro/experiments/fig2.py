"""Fig. 2 - fraction of congested s-days / s-hours vs threshold H.

Per U.S. region, sweep the variability threshold over [0, 1] on the
ingress (download) direction and report the fraction of pair-days with
``V(s,d) > H`` (Fig. 2a) and pair-hours with ``V_H(s,t) > H``
(Fig. 2b).  The paper picks H = 0.5 via the elbow method, landing at
11-30 % of s-days and 1.3-3 % of s-hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.congestion import choose_threshold_elbow, threshold_sweep
from ..report.figures import FigureSeries
from ..report.tables import TextTable, format_percent
from .runner import ExperimentCache

__all__ = ["Fig2Result", "run", "render"]

THRESHOLDS = np.round(np.arange(0.05, 1.0, 0.05), 2)


@dataclass
class Fig2Result:
    thresholds: np.ndarray
    #: region -> congested s-day fraction per threshold
    day_fractions: Dict[str, np.ndarray]
    #: region -> congested s-hour fraction per threshold
    hour_fractions: Dict[str, np.ndarray]
    chosen_threshold: float

    def at(self, region: str, h: float) -> Tuple[float, float]:
        idx = int(np.argmin(np.abs(self.thresholds - h)))
        return (float(self.day_fractions[region][idx]),
                float(self.hour_fractions[region][idx]))

    def day_range_at(self, h: float) -> Tuple[float, float]:
        values = [self.at(r, h)[0] for r in self.day_fractions]
        return (min(values), max(values))

    def hour_range_at(self, h: float) -> Tuple[float, float]:
        values = [self.at(r, h)[1] for r in self.hour_fractions]
        return (min(values), max(values))

    def figure_series(self) -> List[FigureSeries]:
        out = []
        for region, fractions in sorted(self.day_fractions.items()):
            out.append(FigureSeries(
                label=f"2a {region}", x=list(self.thresholds),
                y=list(fractions), kind="line"))
        for region, fractions in sorted(self.hour_fractions.items()):
            out.append(FigureSeries(
                label=f"2b {region}", x=list(self.thresholds),
                y=list(fractions), kind="line"))
        return out


def run(cache: ExperimentCache) -> Fig2Result:
    dataset = cache.topology_dataset()
    day_fractions: Dict[str, np.ndarray] = {}
    hour_fractions: Dict[str, np.ndarray] = {}
    all_days: List[np.ndarray] = []
    for region in cache.scenario.us_regions:
        hs, day_frac, hour_frac = threshold_sweep(
            dataset, THRESHOLDS, region=region)
        day_fractions[region] = day_frac
        hour_fractions[region] = hour_frac
        all_days.append(day_frac)
    mean_curve = np.mean(all_days, axis=0)
    chosen = choose_threshold_elbow(THRESHOLDS, mean_curve)
    return Fig2Result(thresholds=THRESHOLDS,
                      day_fractions=day_fractions,
                      hour_fractions=hour_fractions,
                      chosen_threshold=chosen)


def render(result: Fig2Result) -> str:
    table = TextTable(
        ["region", "s-days>H @0.25", "s-days>H @0.5", "s-hours>H @0.5"],
        title="Fig. 2: congested s-days / s-hours vs threshold H")
    for region in sorted(result.day_fractions):
        d25, _h25 = result.at(region, 0.25)
        d50, h50 = result.at(region, 0.5)
        table.add_row([region, format_percent(d25), format_percent(d50),
                       format_percent(h50, 2)])
    dlo, dhi = result.day_range_at(0.5)
    hlo, hhi = result.hour_range_at(0.5)
    footer = (
        f"\nelbow-chosen threshold H = {result.chosen_threshold:.2f} "
        f"(paper: 0.5)"
        f"\ns-days at H=0.5: {format_percent(dlo)} - {format_percent(dhi)} "
        f"(paper: 11% - 30%)"
        f"\ns-hours at H=0.5: {format_percent(hlo, 2)} - "
        f"{format_percent(hhi, 2)} (paper: 1.3% - 3%)")
    return table.render() + footer
