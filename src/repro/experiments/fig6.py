"""Fig. 6 - hourly congestion probability of the most-congested servers.

Panels (a)/(b): top-10 congested servers in us-east1 / us-west1, with
the probability of a congestion event per local hour of day (converted
to the *server's* timezone).  Panel (c): europe-west1 premium vs
standard tier per paired server.

Paper shape: probabilities mostly below 0.1; Cox-analog servers show
daytime congestion; Cogent-analog paths peak 7-11 pm; some
standard-tier pairs congest more than their premium twins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


from ..cloud.tiers import NetworkTier
from ..core.analysis import (
    HourlyProbability,
    congestion_probability,
    top_congested_pairs,
)
from ..core.congestion import PAPER_THRESHOLD, detect
from ..report.ascii import sparkline
from ..report.figures import FigureSeries
from .runner import ExperimentCache

__all__ = ["Fig6Result", "run", "render"]


@dataclass
class Fig6Result:
    #: region -> top-k hourly probability profiles
    panels: Dict[str, List[HourlyProbability]]
    #: europe-west1 paired (premium profile, standard profile) per server
    tier_pairs: List[Tuple[HourlyProbability, HourlyProbability]] = \
        field(default_factory=list)

    def peak_probability(self, region: str) -> float:
        profiles = self.panels.get(region, [])
        if not profiles:
            return 0.0
        return max(max(p.probability) for p in profiles)

    def standard_more_congested_count(self) -> int:
        """Pairs whose standard tier shows more events than premium."""
        return sum(1 for prem, std in self.tier_pairs
                   if std.n_events > prem.n_events)

    def figure_series(self) -> List[FigureSeries]:
        out = []
        for region, profiles in self.panels.items():
            for p in profiles:
                out.append(FigureSeries(
                    label=f"{region} {p.label}",
                    x=list(range(24)), y=list(p.probability)))
        return out


def run(cache: ExperimentCache, k: int = 10) -> Fig6Result:
    topo_ds = cache.topology_dataset()
    topo_report = detect(topo_ds, threshold=PAPER_THRESHOLD)
    panels: Dict[str, List[HourlyProbability]] = {}
    for region in ("us-east1", "us-west1"):
        profiles = []
        for pair in top_congested_pairs(topo_report, region, k=k):
            profiles.append(congestion_probability(
                topo_ds, topo_report, pair))
        panels[region] = profiles

    diff_ds = cache.differential_dataset()
    diff_report = detect(diff_ds, threshold=PAPER_THRESHOLD,
                         region="europe-west1")
    tier_pairs = []
    prem_pairs = {p[1]: p for p in diff_ds.pairs(
        region="europe-west1", tier=NetworkTier.PREMIUM)}
    std_pairs = {p[1]: p for p in diff_ds.pairs(
        region="europe-west1", tier=NetworkTier.STANDARD)}
    for server_id in sorted(set(prem_pairs) & set(std_pairs)):
        prem = congestion_probability(diff_ds, diff_report,
                                      prem_pairs[server_id])
        std = congestion_probability(diff_ds, diff_report,
                                     std_pairs[server_id])
        if prem.n_events or std.n_events:
            tier_pairs.append((prem, std))
    return Fig6Result(panels=panels, tier_pairs=tier_pairs)


def render(result: Fig6Result) -> str:
    lines = ["Fig. 6: hourly congestion probability (server-local time)"]
    for region, profiles in result.panels.items():
        lines.append(f"\n[{region}] top congested servers "
                     "(hour 0 -> 23):")
        for p in profiles:
            lines.append(
                f"  {p.label[:44]:44s} {sparkline(p.probability)} "
                f"peak={max(p.probability):.2f}@{p.peak_hour:02d}h "
                f"events={p.n_events}")
    lines.append("\n[europe-west1] premium (P) vs standard (S):")
    for prem, std in result.tier_pairs:
        lines.append(f"  {prem.label[:40]:40s} "
                     f"P {sparkline(prem.probability)} ({prem.n_events})  "
                     f"S {sparkline(std.probability)} ({std.n_events})")
    lines.append(
        f"\npairs with more standard-tier congestion: "
        f"{result.standard_more_congested_count()} of "
        f"{len(result.tier_pairs)} (paper: 3 of 6)")
    return "\n".join(lines)
