"""Fig. 7 - locations of cloud regions and selected servers.

The paper's appendix maps each region's selected servers
(topology-based servers are all U.S.; differential-based servers span
the globe).  We reproduce the underlying data - coordinates per region
and method - and render a coarse ASCII world map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..report.tables import TextTable
from .runner import ExperimentCache

__all__ = ["Fig7Result", "run", "render", "ascii_map"]


@dataclass
class Fig7Result:
    #: region -> list of (lat, lon) of topology-selected servers
    topology_points: Dict[str, List[Tuple[float, float]]] = \
        field(default_factory=dict)
    #: region -> list of (lat, lon) of differential-selected servers
    differential_points: Dict[str, List[Tuple[float, float]]] = \
        field(default_factory=dict)
    #: region -> (lat, lon) of the region itself
    region_points: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def all_us(self, region: str) -> bool:
        """Topology-based selections must be U.S.-only (paper check)."""
        pts = self.topology_points.get(region, [])
        return all(18.0 <= lat <= 72.0 and -170.0 <= lon <= -60.0
                   for lat, lon in pts)

    def countries_spanned(self, region: str) -> int:
        """Rough spread metric for differential selections."""
        return len({(round(lat / 10), round(lon / 10))
                    for lat, lon in self.differential_points.get(region, [])})


def run(cache: ExperimentCache) -> Fig7Result:
    scenario = cache.scenario
    topo = scenario.internet.topology
    result = Fig7Result()
    for region in scenario.us_regions:
        plan = cache.topology_plan(region)
        pts = []
        for server_id in plan.server_ids:
            server = scenario.catalog.get(server_id)
            pts.append((server.lat, server.lon))
        result.topology_points[region] = pts
        city = topo.cities[
            scenario.clasp.platform.region_pop(region).city_key]
        result.region_points[region] = (city.point.lat, city.point.lon)
    for region in scenario.differential_regions:
        selection = cache.differential_selection(region)
        result.differential_points[region] = [
            (server.lat, server.lon) for server, _c in selection.selected]
        city = topo.cities[
            scenario.clasp.platform.region_pop(region).city_key]
        result.region_points[region] = (city.point.lat, city.point.lon)
    return result


def ascii_map(points: List[Tuple[float, float]],
              marker: str = "o",
              region: Tuple[float, float] = None,
              width: int = 72, height: int = 20) -> str:
    """Plot lat/lon points on a coarse equirectangular grid."""
    grid = [[" "] * width for _ in range(height)]

    def place(lat: float, lon: float, ch: str) -> None:
        col = int(round((lon + 180.0) / 360.0 * (width - 1)))
        row = int(round((90.0 - lat) / 180.0 * (height - 1)))
        grid[max(0, min(height - 1, row))][max(0, min(width - 1, col))] = ch

    for lat, lon in points:
        place(lat, lon, marker)
    if region is not None:
        place(region[0], region[1], "R")
    return "\n".join("".join(row) for row in grid)


def render(result: Fig7Result) -> str:
    lines = ["Fig. 7: cloud regions (R) and selected servers (o / d)"]
    table = TextTable(["region", "topology servers", "differential servers",
                       "topology all-US"])
    for region in sorted(result.region_points):
        table.add_row([
            region,
            len(result.topology_points.get(region, [])),
            len(result.differential_points.get(region, [])),
            "yes" if result.all_us(region) else
            ("n/a" if region not in result.topology_points else "NO"),
        ])
    lines.append(table.render())
    # One combined map: topology servers 'o', differential 'd'.
    topo_pts = [p for pts in result.topology_points.values() for p in pts]
    diff_pts = [p for pts in result.differential_points.values()
                for p in pts]
    base = ascii_map(topo_pts, "o").splitlines()
    overlay = ascii_map(diff_pts, "d").splitlines()
    merged = []
    for row_a, row_b in zip(base, overlay):
        merged.append("".join(b if b != " " else a
                              for a, b in zip(row_a, row_b)))
    lines.append("\n".join(merged))
    return "\n".join(lines)
