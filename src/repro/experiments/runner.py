"""Shared experiment state for the benchmark harness.

Regenerating a world and re-running a multi-week campaign for every
figure would repeat minutes of identical work, so benchmarks share one
:class:`ExperimentCache` keyed by (seed, scale): the scenario, the
pilot selections, and the campaign datasets are computed once and
reused by every table/figure module.

Environment knobs (read once, at first use):

* ``REPRO_SCALE``  - world scale (default 0.35 for benches; 1.0 is the
  paper's full size),
* ``REPRO_DAYS``   - campaign length in days (default 28; the paper
  ran 153),
* ``REPRO_SEED``   - root seed (default 7).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from ..core.campaign import CampaignDataset
from ..core.orchestrator import DeploymentPlan
from ..engine import MetricsObserver
from ..errors import MissingEntryError
from ..core.selection.differential import DifferentialSelection
from ..core.selection.topology_based import TopologySelection
from .scenario import Scenario, apply_differential_story, build_scenario

__all__ = ["ExperimentCache", "shared_scenario", "env_days"]

#: The paper's budget caps, expressed as the ratio of measured servers
#: to links traversed (Table 1 col. 3 / col. 2), so the caps scale
#: with the scenario instead of being absolute counts.  ``None`` means
#: every selected server was deployed (us-west1, us-east1).
PAPER_BUDGET_RATIOS: Dict[str, Optional[float]] = {
    "us-west1": None,
    "us-west2": 25 / 121,
    "us-west4": 40 / 111,
    "us-east1": None,
    "us-east4": 40 / 111,
    "us-central1": 56 / 144,
}


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return default if value is None else int(value)


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return default if value is None else float(value)


def env_days(default: int = 28) -> int:
    """Campaign length for benches, from ``REPRO_DAYS``."""
    return _env_int("REPRO_DAYS", default)


class ExperimentCache:
    """Lazily computed, shared experiment state."""

    def __init__(self, seed: int, scale: float) -> None:
        self.seed = seed
        self.scale = scale
        self._scenario: Optional[Scenario] = None
        self._topology_plans: Dict[str, DeploymentPlan] = {}
        self._differential_selections: Dict[str, DifferentialSelection] = {}
        self._differential_plans: Dict[str, DeploymentPlan] = {}
        self._topology_dataset: Optional[CampaignDataset] = None
        self._differential_dataset: Optional[CampaignDataset] = None
        self._campaign_metrics: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------

    @property
    def scenario(self) -> Scenario:
        if self._scenario is None:
            self._scenario = build_scenario(seed=self.seed, scale=self.scale)
        return self._scenario

    def topology_selection(self, region: str) -> TopologySelection:
        return self.scenario.clasp.select_topology_servers(region)

    def budget_for(self, region: str) -> Optional[int]:
        """The paper's budget cap, scaled to this scenario's link count."""
        ratio = PAPER_BUDGET_RATIOS.get(region)
        if ratio is None:
            return None
        selection = self.topology_selection(region)
        return max(5, int(round(ratio * selection.n_links_traversed)))

    def topology_plan(self, region: str) -> DeploymentPlan:
        plan = self._topology_plans.get(region)
        if plan is None:
            selection = self.topology_selection(region)
            plan = self.scenario.clasp.deploy_topology(
                region, selection, budget_servers=self.budget_for(region))
            self._topology_plans[region] = plan
        return plan

    def differential_selection(self, region: str) -> DifferentialSelection:
        selection = self._differential_selections.get(region)
        if selection is None:
            scenario = self.scenario
            # The paper used 15 servers (us-central1/us-east1) and 17
            # (europe-west1); a differential deployment is only two VMs
            # per region, so the count does not scale down with the
            # world (small catalogs simply yield fewer candidates).
            target = 17 if region == "europe-west1" else 15
            selection = scenario.clasp.select_differential_servers(
                region,
                regions_for_study=list(scenario.differential_regions),
                target_count=target)
            apply_differential_story(scenario, selection)
            self._differential_selections[region] = selection
        return selection

    def differential_plan(self, region: str) -> DeploymentPlan:
        plan = self._differential_plans.get(region)
        if plan is None:
            selection = self.differential_selection(region)
            plan = self.scenario.clasp.deploy_differential(region, selection)
            self._differential_plans[region] = plan
        return plan

    # ------------------------------------------------------------------

    def topology_dataset(self, days: Optional[int] = None
                         ) -> CampaignDataset:
        """The U.S.-regions topology-based campaign (shared)."""
        if self._topology_dataset is None:
            plans = [self.topology_plan(r)
                     for r in self.scenario.us_regions]
            metrics = MetricsObserver()
            self._topology_dataset = self.scenario.clasp.run_campaign(
                plans, days=days or env_days(), observers=(metrics,))
            self._campaign_metrics["topology"] = metrics.snapshot()
        return self._topology_dataset

    def differential_dataset(self, days: Optional[int] = None
                             ) -> CampaignDataset:
        """The three-region differential campaign (shared)."""
        if self._differential_dataset is None:
            plans = [self.differential_plan(r)
                     for r in self.scenario.differential_regions]
            metrics = MetricsObserver()
            self._differential_dataset = self.scenario.clasp.run_campaign(
                plans, days=days or env_days(), observers=(metrics,))
            self._campaign_metrics["differential"] = metrics.snapshot()
        return self._differential_dataset

    def campaign_metrics(self, campaign: str) -> Dict[str, Any]:
        """The metrics snapshot for ``"topology"`` / ``"differential"``.

        Runs the corresponding campaign on first use; the snapshot
        shape is :meth:`repro.engine.observers.MetricsObserver.snapshot`.
        """
        if campaign not in ("topology", "differential"):
            raise MissingEntryError(
                f"unknown campaign {campaign!r}; expected "
                f"'topology' or 'differential'")
        if campaign not in self._campaign_metrics:
            if campaign == "topology":
                self.topology_dataset()
            else:
                self.differential_dataset()
        if campaign not in self._campaign_metrics:
            # The dataset existed before metrics collection was wired
            # in (e.g. injected by a test), so running it again cannot
            # produce a snapshot - name what *is* available.
            raise MissingEntryError(
                f"no metrics were collected for the {campaign!r} "
                f"campaign (its dataset was built without a metrics "
                f"observer); available campaign metrics: "
                f"{sorted(self._campaign_metrics) or 'none'}")
        return self._campaign_metrics[campaign]


_CACHES: Dict[Tuple[int, float], ExperimentCache] = {}


def shared_scenario(seed: Optional[int] = None,
                    scale: Optional[float] = None) -> ExperimentCache:
    """The process-wide cache for (seed, scale), env-derived defaults."""
    seed = seed if seed is not None else _env_int("REPRO_SEED", 7)
    scale = scale if scale is not None else _env_float("REPRO_SCALE", 0.35)
    key = (seed, scale)
    cache = _CACHES.get(key)
    if cache is None:
        cache = ExperimentCache(seed, scale)
        _CACHES[key] = cache
    return cache
