"""Paper experiments: the calibrated scenario plus one module per
table/figure of the evaluation section."""

from .scenario import (
    Scenario,
    ScenarioConfig,
    apply_differential_story,
    build_scenario,
)
from .runner import ExperimentCache, shared_scenario
from . import table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8

__all__ = [
    "Scenario", "ScenarioConfig", "build_scenario",
    "apply_differential_story",
    "ExperimentCache", "shared_scenario",
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
]
