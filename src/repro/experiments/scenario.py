"""The paper scenario: a calibrated world + CLASP stack.

Builds the synthetic Internet at (a scale of) the paper's dimensions,
installs the named "story" networks behind the paper's Section 4
anecdotes, deploys the speed test catalogs, and assembles the CLASP
facade.  The differential-tier story (premium-tier loss to a subset of
targets, standard-tier congestion for some) is applied *after* the
differential selection, via :func:`apply_differential_story`.

Story networks (all fictional names; the paper's originals in
parentheses):

* ``Coxcast Cable`` (Cox) - Southern California / Nevada ISP whose
  interconnects congest during the daytime.
* ``Smarterbroadband Rural`` (Smarterbroadband) - small ISP congested
  essentially all day.
* ``unWired Plains Broadband`` / ``Suddenlink Valley`` - western ISPs
  with classic evening peaks.
* ``Cogitant Communications`` (Cogent) - a tier-1 transit whose
  interconnection with the cloud congests in FCC peak hours; hosting
  networks reached through it inherit the evening congestion.
* ``Vortex Netsol`` / ``Joister Broadband`` (India) and ``Telstar
  Pacific`` (Australia) - differential-based targets with higher
  congestion on the standard tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple


from ..cloud.fleet import CloudFleet
from ..cloud.providers import get_provider
from ..cloud.regions import (
    PAPER_DIFFERENTIAL_REGIONS,
    PAPER_TABLE1_REGIONS,
    PAPER_US_REGIONS,
)
from ..core.clasp import Clasp
from ..core.selection.differential import DifferentialSelection
from ..faults import FaultPlan
from ..netsim.generator import (
    GeneratedInternet,
    GeneratorConfig,
    TopologyGenerator,
)
from ..netsim.traffic import DiurnalBump, DiurnalProfile
from ..rng import SeedTree
from ..speedtest.catalog import CatalogConfig, ServerCatalog, build_catalog
from ..speedtest.protocol import SpeedTestConfig
from ..errors import ValidationError

__all__ = [
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "apply_differential_story",
]


@dataclass
class ScenarioConfig:
    """Size and realism knobs for the scenario."""

    seed: int = 7
    #: Scales AS and server counts; 1.0 is the paper's dimensions.
    scale: float = 1.0
    #: Install the named story networks.
    stories: bool = True
    #: Monetary budget for the cost tracker (None = unlimited).
    budget_usd: Optional[float] = None
    #: Fault-injection schedule (None = the fault-free world).
    faults: Optional[FaultPlan] = None
    #: The provider the main campaign runs on.
    provider: str = "gcp"
    #: Extra providers to add to the fleet (their WANs are grown into
    #: the topology); the primary is always included.
    providers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0.02 <= self.scale <= 4.0:
            raise ValidationError(f"scale out of range: {self.scale}")
        # Resolve eagerly so a bad name fails at config time.
        get_provider(self.provider)
        for name in self.providers:
            get_provider(name)

    @property
    def fleet_providers(self) -> Tuple[str, ...]:
        """Primary first, then the extras in order, de-duplicated."""
        out = [self.provider]
        for name in self.providers:
            if name not in out:
                out.append(name)
        return tuple(out)


@dataclass
class Scenario:
    """Everything an experiment needs."""

    config: ScenarioConfig
    seeds: SeedTree
    internet: GeneratedInternet
    catalog: ServerCatalog
    clasp: Clasp
    #: story label -> ASN
    story_asns: Dict[str, int] = field(default_factory=dict)
    #: One platform per fleet provider (primary first); always at
    #: least the primary platform, shared with ``clasp.platform``.
    fleet: Optional[CloudFleet] = None
    #: provider name -> WAN ASN in the topology (includes the primary).
    wan_asns: Dict[str, int] = field(default_factory=dict)

    # Paper region groups, re-exported for experiment code.
    us_regions: Tuple[str, ...] = PAPER_US_REGIONS
    table1_regions: Tuple[str, ...] = PAPER_TABLE1_REGIONS
    differential_regions: Tuple[str, ...] = PAPER_DIFFERENTIAL_REGIONS


def _scaled_generator_config(scale: float) -> GeneratorConfig:
    base = GeneratorConfig()
    if scale == 1.0:
        return base

    def s(n: int, minimum: int) -> int:
        return max(minimum, int(round(n * scale)))

    return GeneratorConfig(
        n_tier1=s(base.n_tier1, 4),
        n_transit=s(base.n_transit, 6),
        n_access_isp=s(base.n_access_isp, 24),
        n_big_isp=s(base.n_big_isp, 3),
        n_hosting=s(base.n_hosting, 8),
        n_education=s(base.n_education, 3),
        n_business=s(base.n_business, 4),
    )


def _scaled_catalog_config(scale: float) -> CatalogConfig:
    base = CatalogConfig()
    if scale == 1.0:
        return base
    return CatalogConfig(
        n_us_servers=max(40, int(round(base.n_us_servers * scale))),
        n_global_servers=max(20, int(round(base.n_global_servers * scale))),
    )


def _install_stories(gen: TopologyGenerator,
                     net: GeneratedInternet) -> Dict[str, int]:
    """Create the named networks and their congestion shapes."""
    topo = net.topology
    stories: Dict[str, int] = {}

    cox = gen.add_story_isp(
        net, "Coxcast Cable",
        home_city_keys=["San Diego, US", "Los Angeles, US", "Las Vegas, US"],
        congestion="daytime", parallel=(3, 5))
    stories["cox"] = cox.asn

    smarter = gen.add_story_isp(
        net, "Smarterbroadband Rural",
        home_city_keys=["Sacramento, US"],
        peering_city_keys=["San Jose, US"],
        congestion="allday", parallel=(2, 3))
    stories["smarterbroadband"] = smarter.asn

    unwired = gen.add_story_isp(
        net, "unWired Plains Broadband",
        home_city_keys=["Fresno, US"],
        congestion="evening", parallel=(2, 4))
    stories["unwired"] = unwired.asn

    suddenlink = gen.add_story_isp(
        net, "Suddenlink Valley",
        home_city_keys=["Reno, US", "Phoenix, US"],
        congestion="evening", parallel=(2, 4))
    stories["suddenlink"] = suddenlink.asn

    # The Cogent analog: rename one of the cloud's transit providers
    # and congest the transit-to-cloud interconnect in FCC peak hours.
    cogitant_asn = net.cloud_transit_asns[0]
    topo.as_of(cogitant_asn).name = "Cogitant Communications"
    topo.as_of(cogitant_asn).org = "Cogitant Communications"
    # The label overlaps generator.py's f"story-{name}" template, but
    # story ISPs are named after real providers ("Unwired", ...), never
    # "cogitant", so the streams cannot collide - and renaming the
    # label would change every golden digest.
    draw = gen.seeds.generator("story-cogitant")  # repro: noqa RPR011
    for record in topo.interdomain_between(net.cloud_asn, cogitant_asn):
        # Only the U.S. interconnects congest (the paper's Cogent
        # story is a U.S. peak-hour phenomenon); the European gateways
        # that carry europe-west1's standard-tier ingress stay clean.
        if not record.city_key.endswith(", US"):
            continue
        city = topo.cities[record.city_key]
        net.utilization.set_profile(record.link_id, 1, DiurnalProfile(
            base=float(draw.uniform(0.5, 0.6)),
            bumps=(DiurnalBump(21.0, 3.5, float(draw.uniform(0.5, 0.7))),),
            utc_offset_hours=city.utc_offset_hours,
            noise_sigma=0.05))
    stories["cogitant"] = cogitant_asn

    # Differential-story eyeballs: India and Australia.
    vortex = gen.add_story_isp(
        net, "Vortex Netsol", home_city_keys=["Mumbai, IN"],
        congestion=None, parallel=(2, 3))
    stories["vortex"] = vortex.asn
    joister = gen.add_story_isp(
        net, "Joister Broadband", home_city_keys=["Delhi, IN"],
        peering_city_keys=["Mumbai, IN"],
        congestion=None, parallel=(2, 3))
    stories["joister"] = joister.asn
    # Telstar's only cloud interconnect is pinned to the U.S. west
    # coast: the premium path detours badly, producing the
    # "standard tier latency lower" class.
    telstar = gen.add_story_isp(
        net, "Telstar Pacific",
        home_city_keys=["Sydney, AU", "Melbourne, AU"],
        peering_city_keys=["Los Angeles, US"],
        congestion=None, parallel=(2, 3))
    stories["telstar"] = telstar.asn
    return stories


def build_scenario(seed: int = 7, scale: float = 1.0,
                   stories: bool = True,
                   budget_usd: Optional[float] = None,
                   speedtest_config: Optional[SpeedTestConfig] = None,
                   faults: Optional[FaultPlan] = None,
                   provider: str = "gcp",
                   providers: Sequence[str] = ()
                   ) -> Scenario:
    """Build the full calibrated scenario.

    *faults* enables deterministic fault injection for the campaign:
    the schedule derives entirely from *seed*, so a scenario built
    twice with the same arguments reproduces the same faults (and the
    same dataset digest).

    *provider* picks the cloud the main campaign measures from;
    *providers* adds more clouds to the scenario's fleet for
    cross-cloud workloads.  Non-GCP providers get their WAN grown into
    the topology (after the catalogs are built, so server populations
    and every GCP-only digest are unchanged); each fleet member's
    platform shares the one simulated Internet.
    """
    config = ScenarioConfig(seed=seed, scale=scale, stories=stories,
                            budget_usd=budget_usd, faults=faults,
                            provider=provider, providers=tuple(providers))
    seeds = SeedTree(seed)
    gen = TopologyGenerator(_scaled_generator_config(scale),
                            seeds.child("net"))
    net = gen.generate()
    story_asns: Dict[str, int] = {}
    ensure: Dict[int, int] = {}
    if stories:
        story_asns = _install_stories(gen, net)
        ensure = {asn: 3 if label == "cox" else 1
                  for label, asn in story_asns.items()
                  if label != "cogitant"}
    catalog = build_catalog(net, _scaled_catalog_config(scale),
                            seeds.child("catalog"), ensure_asns=ensure)

    # Grow non-native WANs *after* the catalogs: provider WANs join no
    # edge-AS list, so server populations are identical either way, and
    # a gcp-only scenario draws zero extra RNG values here.
    wan_asns: Dict[str, int] = {}
    for name in config.fleet_providers:
        prov = get_provider(name)
        if prov.wan is None:
            wan_asns[name] = net.cloud_asn
            continue
        wan = prov.wan
        as_obj = gen.add_cloud_wan(
            net, wan.as_name, wan.city_keys, asn=wan.asn,
            backbone_gbps=wan.backbone_gbps, n_transits=wan.n_transits,
            transit_parallel=wan.transit_parallel,
            mesh_degree=wan.mesh_degree)
        wan_asns[name] = as_obj.asn

    clasp = Clasp.build(net, catalog, seeds.child("clasp"),
                        budget_usd=budget_usd,
                        speedtest_config=speedtest_config,
                        fault_plan=faults,
                        provider=provider,
                        cloud_asn=wan_asns[provider])
    fleet = CloudFleet.build(
        net, config.fleet_providers, cloud_asns=wan_asns,
        platforms={provider: clasp.platform})
    return Scenario(config=config, seeds=seeds, internet=net,
                    catalog=catalog, clasp=clasp, story_asns=story_asns,
                    fleet=fleet, wan_asns=wan_asns)


def apply_differential_story(scenario: Scenario,
                             selection: DifferentialSelection,
                             lossy_targets: int = 8,
                             standard_congested: int = 3) -> None:
    """Shape the tier behaviour of the selected differential targets.

    * Every selected target's cloud-peering ingress runs warm (the
    premium path carries a mild extra loss), which is what made the
    standard tier's throughput generally higher in the paper.
    * *lossy_targets* of them run the peering interconnect at or above
    capacity around the clock: premium-tier loss above 10 %.
    * *standard_congested* of them get an overloaded evening profile on
    their transit interconnects instead - congestion that only the
    standard tier path crosses (Fig. 6c).
    """
    net = scenario.internet
    topo = net.topology
    # One stream per region: the story is applied once per study region,
    # and a shared label would hand every region the same draw sequence
    # (the exact collision SeedTree.generator now rejects).
    draw = scenario.seeds.generator(f"differential-story-{selection.region}")
    targets = [server for server, _cand in selection.selected]

    lossy_assigned = 0
    for index, server in enumerate(targets):
        offset = topo.cities[server.city_key].utc_offset_hours
        peering = topo.interdomain_between(net.cloud_asn, server.asn)
        make_lossy = bool(peering) and lossy_assigned < lossy_targets
        if make_lossy:
            lossy_assigned += 1
        # Thin, warm PNI: the premium path is squeezed by the
        # interconnect's residual capacity around the clock - an
        # RTT-neutral penalty the standard (transit) path avoids.  The
        # residual is drawn relative to the server's own per-client
        # cap, so the premium tier lands consistently (but mildly)
        # below the standard tier, as the paper observed.  The bursty
        # targets additionally run much thinner pipes: they are the
        # servers whose standard tier wins nearly every hour.
        if make_lossy:
            squeeze = float(draw.uniform(0.58, 0.68))
        else:
            squeeze = float(draw.uniform(0.60, 0.85))
        base = float(draw.uniform(0.80, 0.86))
        for record in peering:
            link = topo.link(record.link_id)
            link.capacity_mbps = max(
                200.0, server.effective_cap_mbps * squeeze / (1.0 - base))
            net.utilization.set_profile(record.link_id, 1, DiurnalProfile(
                base=base,
                bumps=(DiurnalBump(14.0, 8.0,
                                   float(draw.uniform(0.01, 0.04))),),
                utc_offset_hours=offset,
                noise_sigma=0.015))
            if make_lossy:
                # Micro-burst drops: measured premium-tier loss goes
                # above 10 % while multi-flow throughput only sags.
                link.burst_loss = float(draw.uniform(0.09, 0.16))
        if index >= len(targets) - standard_congested:
            # Congest the server's transit interconnects in the evening:
            # only the standard tier crosses them.
            for provider in topo.providers_of(server.asn):
                for record in topo.interdomain_between(server.asn,
                                                       provider):
                    net.utilization.set_profile(
                        record.link_id, 0, DiurnalProfile(
                            base=float(draw.uniform(0.5, 0.6)),
                            bumps=(DiurnalBump(
                                21.0, 4.0,
                                float(draw.uniform(0.5, 0.7))),),
                            utc_offset_hours=offset,
                            noise_sigma=0.05))
