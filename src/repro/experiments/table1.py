"""Table 1 - coverage of topology-based server selection.

Columns per region: interdomain links bdrmap found in the pilot scan,
distinct links all U.S. test servers traversed, links covered by the
(budget-capped) servers CLASP measured, and the resulting coverage
fraction (the paper reports 20.7 % - 69.4 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..report.tables import TextTable, format_percent
from .runner import ExperimentCache

__all__ = ["Table1Row", "Table1Result", "run", "render"]

#: Paper values for side-by-side comparison in the rendered table.
PAPER_ROWS = {
    "us-west1": (5293, 325, 106),
    "us-west2": (6609, 121, 25),
    "us-east1": (6217, 265, 184),
    "us-east4": (5255, 111, 40),
    "us-central1": (6582, 144, 56),
}


@dataclass(frozen=True)
class Table1Row:
    region: str
    n_interdomain_links: int
    n_links_traversed: int
    n_servers_measured: int
    n_links_covered: int
    coverage: float
    shared_fraction: float


@dataclass
class Table1Result:
    rows: List[Table1Row]

    def by_region(self) -> Dict[str, Table1Row]:
        return {r.region: r for r in self.rows}

    @property
    def coverage_range(self) -> tuple:
        values = [r.coverage for r in self.rows]
        return (min(values), max(values))


def run(cache: ExperimentCache) -> Table1Result:
    """Run the pilot scans and compute the coverage table."""
    rows: List[Table1Row] = []
    for region in cache.scenario.table1_regions:
        selection = cache.topology_selection(region)
        plan = cache.topology_plan(region)
        measured_ids = plan.server_ids
        rows.append(Table1Row(
            region=region,
            n_interdomain_links=selection.n_interdomain_links,
            n_links_traversed=selection.n_links_traversed,
            n_servers_measured=len(measured_ids),
            n_links_covered=selection.links_covered_by(measured_ids),
            coverage=selection.coverage(measured_ids),
            shared_fraction=selection.shared_interconnection_fraction,
        ))
    return Table1Result(rows=rows)


def render(result: Table1Result) -> str:
    table = TextTable(
        ["region", "bdrmap links", "links traversed",
         "servers measured", "links covered", "coverage",
         "servers sharing", "paper(links/trav/meas)"],
        title="Table 1: coverage of topology-based server selection")
    for row in result.rows:
        paper = PAPER_ROWS.get(row.region)
        paper_text = (f"{paper[0]}/{paper[1]}/{paper[2]}"
                      if paper else "-")
        table.add_row([
            row.region, row.n_interdomain_links, row.n_links_traversed,
            row.n_servers_measured, row.n_links_covered,
            format_percent(row.coverage),
            format_percent(row.shared_fraction),
            paper_text,
        ])
    lo, hi = result.coverage_range
    footer = (f"\ncoverage range: {format_percent(lo)} - "
              f"{format_percent(hi)} (paper: 20.7% - 69.4%)")
    return table.render() + footer
