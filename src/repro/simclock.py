"""Simulated time.

The paper's campaign ran hourly cron jobs from May through September
2020.  Re-running five months in wall-clock time is obviously not an
option, so all components take time as an explicit simulated timestamp
(UTC epoch seconds) and the :class:`SimClock` advances that timestamp as
fast as the simulation can compute.

Local time matters for the analysis: congestion probability is studied
in the *test server's* timezone ("we converted the timezone to the
location of the test servers").  :func:`local_hour` and
:func:`local_day_index` perform that conversion from a UTC offset.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from .units import DAY, HOUR
from .errors import ValidationError

__all__ = [
    "CAMPAIGN_START",
    "CAMPAIGN_END",
    "SimClock",
    "utc_datetime",
    "from_utc_datetime",
    "hour_of_day",
    "day_index",
    "local_hour",
    "local_day_index",
    "is_weekend",
    "format_ts",
]

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)

#: Start of the paper's measurement campaign: 2020-05-01 00:00 UTC.
CAMPAIGN_START = int((_dt.datetime(2020, 5, 1, tzinfo=_dt.timezone.utc) - _EPOCH).total_seconds())

#: End of the campaign: 2020-10-01 00:00 UTC (exclusive), i.e. 153 days.
CAMPAIGN_END = int((_dt.datetime(2020, 10, 1, tzinfo=_dt.timezone.utc) - _EPOCH).total_seconds())


def utc_datetime(ts: float) -> _dt.datetime:
    """Return the aware UTC datetime for simulated epoch second *ts*."""
    return _EPOCH + _dt.timedelta(seconds=ts)


def from_utc_datetime(when: _dt.datetime) -> int:
    """Return simulated epoch seconds for an aware UTC datetime."""
    if when.tzinfo is None:
        raise ValidationError("datetime must be timezone-aware")
    return int((when - _EPOCH).total_seconds())


def hour_of_day(ts: float, utc_offset_hours: float = 0.0) -> int:
    """Hour of day (0-23) at *ts*, shifted by a UTC offset in hours."""
    shifted = ts + utc_offset_hours * HOUR
    return int(shifted // HOUR) % 24


def day_index(ts: float, origin: float = CAMPAIGN_START) -> int:
    """Whole days elapsed since *origin* (may be negative before it)."""
    return int((ts - origin) // DAY)


def local_hour(ts: float, utc_offset_hours: float) -> int:
    """Local hour of day for a vantage point at the given UTC offset."""
    return hour_of_day(ts, utc_offset_hours)


def local_day_index(ts: float, utc_offset_hours: float,
                    origin: float = CAMPAIGN_START) -> int:
    """Local calendar-day index for a vantage point at a UTC offset."""
    return day_index(ts + utc_offset_hours * HOUR, origin)


def is_weekend(ts: float, utc_offset_hours: float = 0.0) -> bool:
    """True when *ts* falls on Saturday/Sunday in the given local zone."""
    when = utc_datetime(ts + utc_offset_hours * HOUR)
    return when.weekday() >= 5


def format_ts(ts: float, utc_offset_hours: float = 0.0) -> str:
    """Human-readable ``YYYY-MM-DD HH:MM`` rendering of *ts*."""
    when = utc_datetime(ts + utc_offset_hours * HOUR)
    return when.strftime("%Y-%m-%d %H:%M")


@dataclass
class SimClock:
    """A monotonically advancing simulated clock.

    The clock never goes backwards; :meth:`advance` and :meth:`advance_to`
    enforce that, because schedule code that accidentally rewinds time
    produces silently corrupt longitudinal data.
    """

    now: float = field(default=float(CAMPAIGN_START))

    def advance(self, seconds: float) -> float:
        """Move the clock forward by *seconds* and return the new time."""
        if seconds < 0:
            raise ValidationError(f"cannot advance by negative time: {seconds}")
        self.now += seconds
        return self.now

    def advance_to(self, ts: float) -> float:
        """Move the clock forward to absolute time *ts*."""
        if ts < self.now:
            raise ValidationError(
                f"cannot rewind clock from {self.now} to {ts}"
            )
        self.now = float(ts)
        return self.now

    def next_hour_boundary(self) -> float:
        """The first exact hour boundary strictly after ``now``."""
        return (int(self.now // HOUR) + 1) * HOUR

    def datetime(self) -> _dt.datetime:
        """Aware UTC datetime of the current simulated instant."""
        return utc_datetime(self.now)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SimClock({format_ts(self.now)} UTC)"
