"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``experiment <id>`` - run one paper experiment (``table1``, ``fig2``
  ... ``fig8``) and print its rendered block.
* ``quickloop`` - the quickstart loop (pilot scan, campaign, detection)
  with a compact report.
* ``campaign`` - run one regional campaign, optionally under the
  deterministic fault-injection plan (``--faults``), print the
  completed/retried/lost accounting and the dataset digest, and
  optionally export the dataset (``--export DIR``), write the engine
  event stream as JSON lines (``--trace PATH``), or print event/billing
  totals (``--metrics``).  ``--provider`` picks the cloud (gcp is the
  default and reproduces the paper), ``--providers A,B`` adds more
  clouds to the fleet, and ``--matrix`` runs the cross-cloud VM-pair
  matrix plus the provider-choice analysis instead of a campaign.
* ``serve`` - run a campaign as an always-on monitor: the incremental
  streaming detector rides the event bus, a TTL-cached
  :class:`~repro.serve.MonitorService` answers simulated dashboard
  traffic (``--consumers`` queries per hour), and the final state /
  serving metrics print as a summary table, Prometheus text, or JSON
  lines (``--format state|prom|jsonl``).
* ``daemon`` - replay N successive campaigns into one long-lived
  :class:`~repro.alerts.Collector` (one streaming detector, metrics
  registry, tsdb-backed history, and rule engine across all runs),
  verify watermark continuity and the cross-run batch-equivalence
  contract, and print the alert notification log; ``--state PATH``
  saves/resumes the collector between invocations.
* ``alerts`` - run one campaign with the alerting collector attached
  and print the notification log / firing state (``--format
  summary|jsonl|prom``).  ``campaign``, ``serve``, and ``daemon`` all
  accept ``--rules FILE`` (JSON; see ``examples/rules_default.json``),
  defaulting to the shipped rule set.
* ``world`` - generate a scenario and print its inventory.
* ``cost`` - estimate the cloud bill for a campaign shape.
* ``obs`` - run an instrumented campaign with :mod:`repro.obs` enabled
  and dump the cross-layer span tree or metrics (``--format
  tree|jsonl|prom``).
* ``lint`` - run the :mod:`repro.lint` invariant checker over the
  source tree (determinism, unit-safety, error hierarchy, layering,
  plus the cross-file shard-safety rules); ``--graph`` prints the
  module import graph, ``--format json|sarif`` emits machine-readable
  findings.

``campaign`` and ``experiment`` also accept ``--profile DIR``: the run
executes with observability enabled and writes a profile directory
(``spans.jsonl``, ``metrics.jsonl``, ``metrics.prom``,
``profile.txt``).

Every command accepts ``--seed`` / ``--scale`` (and ``--days`` where a
campaign runs), mirroring the ``REPRO_*`` environment knobs the
benchmark harness uses.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

__all__ = ["main", "build_parser"]

EXPERIMENTS = ("table1", "fig2", "fig3", "fig4", "fig5", "fig6",
               "fig7", "fig8")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, days: bool = True) -> None:
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--scale", type=float, default=0.2)
        if days:
            p.add_argument("--days", type=int, default=7)

    def profile_opt(p: argparse.ArgumentParser) -> None:
        p.add_argument("--profile", metavar="DIR",
                       help="run with repro.obs enabled and write a "
                            "profile directory (spans + metrics)")

    p_exp = sub.add_parser("experiment",
                           help="run one paper table/figure experiment")
    p_exp.add_argument("id", choices=EXPERIMENTS)
    profile_opt(p_exp)
    common(p_exp)

    p_loop = sub.add_parser("quickloop",
                            help="pilot scan + campaign + detection")
    p_loop.add_argument("--region", default="us-west1")
    common(p_loop)

    p_camp = sub.add_parser("campaign",
                            help="run one campaign, optionally with "
                                 "deterministic fault injection")
    p_camp.add_argument("--region", default=None,
                        help="deployment region (default: the "
                             "provider's default region)")
    p_camp.add_argument("--servers", type=int, default=8,
                        help="server budget for the deployment")
    p_camp.add_argument("--faults", choices=("off", "default", "heavy"),
                        default="off",
                        help="fault-injection plan (seed-deterministic)")
    p_camp.add_argument("--export", metavar="DIR",
                        help="export the dataset to this directory")
    p_camp.add_argument("--trace", metavar="PATH",
                        help="write the campaign event stream to PATH "
                             "as JSON lines")
    p_camp.add_argument("--metrics", action="store_true",
                        help="print engine event counts and billing "
                             "totals after the campaign")
    p_camp.add_argument("--shards", type=int, default=1,
                        help="partition lanes across N sharded "
                             "executors (byte-identical dataset)")
    p_camp.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="vectorize each hour's tests as numpy "
                             "batches (byte-identical dataset)")
    p_camp.add_argument("--shard-processes", action="store_true",
                        help="run each shard in a forked worker process")
    p_camp.add_argument("--provider", default="gcp",
                        help="cloud provider to run the campaign on "
                             "(gcp | aws | openstack); gcp reproduces "
                             "the paper's digests byte-for-byte")
    p_camp.add_argument("--providers", metavar="A,B",
                        help="comma-separated extra providers to add "
                             "to the fleet for cross-cloud workloads")
    p_camp.add_argument("--matrix", action="store_true",
                        help="skip the campaign; run the cross-cloud "
                             "VM-pair matrix and the provider-choice "
                             "analysis over the fleet instead")
    p_camp.add_argument("--stream", action="store_true",
                        help="attach the incremental streaming detector "
                             "to the event bus and verify its finalized "
                             "report equals batch detection")
    p_camp.add_argument("--rules", metavar="FILE",
                        help="attach the alerting collector with this "
                             "JSON rules file and print the "
                             "notification log after the campaign")
    profile_opt(p_camp)
    common(p_camp)

    p_serve = sub.add_parser("serve",
                             help="run a campaign as an always-on "
                                  "monitor with cached query serving")
    p_serve.add_argument("--region", default="us-west1")
    p_serve.add_argument("--servers", type=int, default=8,
                         help="server budget for the deployment")
    p_serve.add_argument("--faults", choices=("off", "default", "heavy"),
                         default="off",
                         help="fault-injection plan (seed-deterministic)")
    p_serve.add_argument("--window-days", type=int, default=None,
                         help="sliding window for the live congested "
                              "label (default: all sealed days)")
    p_serve.add_argument("--consumers", type=int, default=100_000,
                         help="simulated dashboard queries per hour")
    p_serve.add_argument("--ttl-hours", type=float, default=1.0,
                         help="snapshot cache TTL in simulated hours")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="partition lanes across N sharded "
                              "executors")
    p_serve.add_argument("--format",
                         choices=("summary", "state", "prom", "jsonl"),
                         default="summary", dest="fmt",
                         help="summary = text table + congested list, "
                              "state = live-state JSON document, "
                              "prom = Prometheus text, jsonl = JSON "
                              "lines")
    p_serve.add_argument("--rules", metavar="FILE",
                         help="evaluate this JSON rules file on the "
                              "live state; alert state joins the "
                              "snapshot/prom exports")
    common(p_serve)

    p_daemon = sub.add_parser("daemon",
                              help="keep one collector alive across N "
                                   "successive campaign runs")
    p_daemon.add_argument("--runs", type=int, default=3,
                          help="number of successive campaigns to "
                               "replay into the collector")
    p_daemon.add_argument("--region", default="us-west1")
    p_daemon.add_argument("--servers", type=int, default=8,
                          help="server budget for each deployment")
    p_daemon.add_argument("--shards", type=int, default=1,
                          help="partition lanes across N sharded "
                               "executors (byte-identical alerts)")
    p_daemon.add_argument("--rules", metavar="FILE",
                          help="JSON rules file (default: the shipped "
                               "rule set)")
    p_daemon.add_argument("--state", metavar="PATH",
                          help="resume the collector from PATH when it "
                               "exists and save it back afterwards "
                               "(skips finalize so the daemon can keep "
                               "going)")
    p_daemon.add_argument("--format", choices=("summary", "jsonl"),
                          default="summary", dest="fmt",
                          help="summary = continuity table + log, "
                               "jsonl = notification log only")
    common(p_daemon)

    p_alerts = sub.add_parser("alerts",
                              help="run one campaign with the alerting "
                                   "collector and print the "
                                   "notification log")
    p_alerts.add_argument("--region", default="us-west1")
    p_alerts.add_argument("--servers", type=int, default=8,
                          help="server budget for the deployment")
    p_alerts.add_argument("--faults",
                          choices=("off", "default", "heavy"),
                          default="off",
                          help="fault-injection plan "
                               "(seed-deterministic)")
    p_alerts.add_argument("--rules", metavar="FILE",
                          help="JSON rules file (default: the shipped "
                               "rule set)")
    p_alerts.add_argument("--format",
                          choices=("summary", "jsonl", "prom"),
                          default="summary", dest="fmt",
                          help="summary = table + log, jsonl = "
                               "notification log, prom = ALERTS "
                               "series + collector metrics")
    common(p_alerts)

    p_obs = sub.add_parser("obs",
                           help="run an instrumented campaign and dump "
                                "the span tree / metrics")
    p_obs.add_argument("--region", default="us-west1")
    p_obs.add_argument("--servers", type=int, default=8,
                       help="server budget for the deployment")
    p_obs.add_argument("--faults", choices=("off", "default", "heavy"),
                       default="off",
                       help="fault-injection plan (seed-deterministic)")
    p_obs.add_argument("--format", choices=("tree", "jsonl", "prom"),
                       default="tree", dest="fmt",
                       help="tree = span tree + metric summary, jsonl = "
                            "spans and metrics as JSON lines, prom = "
                            "Prometheus text format")
    p_obs.add_argument("--capacity", type=int, default=4096,
                       help="flight recorder capacity (spans retained)")
    common(p_obs)

    p_world = sub.add_parser("world",
                             help="generate a world and print inventory")
    common(p_world, days=False)

    p_cost = sub.add_parser("cost",
                            help="estimate the cloud bill for a campaign")
    p_cost.add_argument("--servers", type=int, default=450)
    p_cost.add_argument("--days", type=int, default=30)
    p_cost.add_argument("--tier", choices=("premium", "standard"),
                        default="premium")

    p_lint = sub.add_parser("lint",
                            help="run the invariant checker "
                                 "(python -m repro.lint)")
    p_lint.add_argument("paths", nargs="*", default=["src/repro"])
    p_lint.add_argument("--select", metavar="CODES")
    p_lint.add_argument("--baseline", metavar="FILE")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        dest="fmt", default="text")
    p_lint.add_argument("--graph", action="store_true")
    p_lint.add_argument("--no-cache", action="store_true")
    p_lint.add_argument("--list-rules", action="store_true")
    return parser


def _write_profile(profile_dir: str) -> None:
    """Dump the enabled obs state as a profile directory and say so."""
    import repro.obs as obs
    from repro.obs.exporters import write_profile

    files = write_profile(profile_dir, obs.tracer(), obs.registry())
    print(f"profile: {len(files)} files -> {profile_dir}")


def _cmd_experiment(args: argparse.Namespace) -> int:
    import os
    os.environ.setdefault("REPRO_SEED", str(args.seed))
    os.environ.setdefault("REPRO_SCALE", str(args.scale))
    os.environ.setdefault("REPRO_DAYS", str(args.days))
    import repro.obs as obs
    from repro import experiments
    from repro.experiments import shared_scenario
    module = getattr(experiments, args.id)
    if args.profile:
        obs.enable()
    try:
        cache = shared_scenario(seed=args.seed, scale=args.scale)
        result = module.run(cache)
        print(module.render(result))
        if args.profile:
            _write_profile(args.profile)
    finally:
        if args.profile:
            obs.disable()
    return 0


def _cmd_quickloop(args: argparse.Namespace) -> int:
    from repro.core.congestion import detect
    from repro.experiments import build_scenario
    from repro.report.tables import TextTable, format_percent

    scenario = build_scenario(seed=args.seed, scale=args.scale)
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(args.region)
    plan = clasp.deploy_topology(args.region, selection)
    dataset = clasp.run_campaign([plan], days=args.days)
    report = detect(dataset)
    table = TextTable(["metric", "value"],
                      title=f"{args.region}: {args.days}-day campaign")
    table.add_row(["servers measured", len(plan.server_ids)])
    table.add_row(["tests completed", dataset.completed_tests])
    table.add_row(["congested s-days",
                   format_percent(report.congested_day_fraction)])
    table.add_row(["congested s-hours",
                   format_percent(report.congested_hour_fraction, 2)])
    table.add_row(["congested servers", len(report.congested_pairs())])
    table.add_row(["cloud bill", f"${clasp.total_cost_usd():,.2f}"])
    print(table.render())
    return 0


def _parse_extra_providers(spec) -> tuple:
    return tuple(p.strip() for p in (spec or "").split(",") if p.strip())


def _cmd_campaign(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.cloud.providers import get_provider
    from repro.core.export import dataset_digest, export_dataset
    from repro.engine import MetricsObserver, TraceObserver
    from repro.experiments import build_scenario
    from repro.faults import FaultPlan
    from repro.report.tables import TextTable

    plans = {"off": None, "default": FaultPlan.default(),
             "heavy": FaultPlan.heavy()}
    fault_plan = plans[args.faults]
    provider = get_provider(args.provider)
    extras = _parse_extra_providers(args.providers)
    region = args.region or provider.default_region
    if args.matrix:
        return _cmd_matrix(args, extras)
    if args.profile:
        # Before scenario build so deployment/selection spans land in
        # the profile too, not just the campaign hours.
        obs.enable()
    try:
        scenario = build_scenario(seed=args.seed, scale=args.scale,
                                  faults=fault_plan,
                                  provider=provider.name,
                                  providers=extras)
        clasp = scenario.clasp
        selection = clasp.select_topology_servers(region)
        plan = clasp.deploy_topology(region, selection,
                                     budget_servers=args.servers)
        observers = []
        metrics = None
        if args.metrics:
            metrics = MetricsObserver()
            observers.append(metrics)
        trace = None
        if args.trace:
            trace = TraceObserver(args.trace)
            observers.append(trace)
        stream_detector = None
        if args.stream:
            stream_detector, stream_observer = clasp.streaming_detector()
            observers.append(stream_observer)
        alerts_collector = None
        if args.rules:
            from repro.alerts import load_rules
            alerts_collector, alerts_observer = clasp.collector(
                rules=load_rules(args.rules))
            observers.append(alerts_observer)
        try:
            dataset = clasp.run_campaign([plan], days=args.days,
                                         observers=observers,
                                         shards=args.shards,
                                         batch=args.batch,
                                         shard_processes=args.shard_processes)
        finally:
            if trace is not None:
                trace.close()
        if args.profile:
            _write_profile(args.profile)
    finally:
        if args.profile:
            obs.disable()
    table = TextTable(["metric", "value"],
                      title=f"{provider.name}/{region}: {args.days}-day "
                            f"campaign (faults={args.faults})")
    table.add_row(["servers measured", len(plan.server_ids)])
    if args.shards > 1 or args.batch or args.shard_processes:
        table.add_row(["execution",
                       f"shards={args.shards} "
                       f"batch={'on' if args.batch else 'off'}"
                       + (" processes" if args.shard_processes else "")])
    table.add_row(["tests completed", dataset.completed_tests])
    table.add_row(["tests failed", dataset.failed_tests])
    table.add_row(["tests retried", dataset.retried_tests])
    table.add_row(["slots lost", dataset.lost_tests])
    for reason, count in sorted(dataset.lost_by_reason().items()):
        table.add_row([f"  lost to {reason}", count])
    injector = clasp.fault_injector
    if injector is not None:
        for kind, count in sorted(injector.summary().items()):
            table.add_row([f"  injected {kind}", count])
    table.add_row(["dataset digest", dataset_digest(dataset)[:16]])
    table.add_row(["cloud bill", f"${clasp.total_cost_usd():,.2f}"])
    if stream_detector is not None:
        from repro.core.congestion import detect
        streamed = stream_detector.finalize()
        batch = detect(dataset)
        table.add_row(["stream V_H events", len(streamed.events)])
        table.add_row(["stream congested servers",
                       len(streamed.congested_pairs())])
        table.add_row(["stream late-dropped",
                       stream_detector.late_dropped])
        table.add_row(["stream == batch detect",
                       "yes" if streamed == batch else "NO"])
    if alerts_collector is not None:
        alerts_collector.finalize()
        evaluator = alerts_collector.evaluator
        table.add_row(["alert rules", len(evaluator.rules)])
        table.add_row(["alert notifications",
                       len(evaluator.notifications)])
        table.add_row(["alerts firing now", evaluator.active_count])
    print(table.render())
    if alerts_collector is not None:
        from repro.alerts import notifications_to_jsonlines
        print(notifications_to_jsonlines(
            alerts_collector.evaluator.notifications), end="")
    if metrics is not None:
        snapshot = metrics.snapshot()
        events = TextTable(["event", "count"], title="engine events")
        for kind, count in snapshot["events"].items():
            events.add_row([kind, count])
        for category, usd in snapshot["usd_by_category"].items():
            events.add_row([f"  billed {category}", f"${usd:,.2f}"])
        print(events.render())
    if trace is not None:
        print(f"trace: {trace.n_written} events -> {args.trace}")
    if args.export:
        manifest = export_dataset(dataset, args.export)
        print(f"exported to {manifest.parent}")
    return 0


def _cmd_matrix(args: argparse.Namespace, extras: tuple) -> int:
    from repro.core.crosscloud import provider_choice, run_matrix
    from repro.experiments import build_scenario
    from repro.report.crosscloud import (render_matrix,
                                         render_provider_choice)

    scenario = build_scenario(seed=args.seed, scale=args.scale,
                              provider=args.provider, providers=extras)
    fleet = scenario.fleet
    if len(fleet) < 2:
        print("--matrix needs at least two providers; add some with "
              "--providers, e.g. --providers aws,openstack",
              file=sys.stderr)
        return 2
    matrix = run_matrix(fleet, shards=args.shards)
    print(render_matrix(matrix))
    primary = fleet.names()[0]
    for other in fleet.names()[1:]:
        choice = provider_choice(fleet, scenario.catalog,
                                 scenario.clasp.prefix2as,
                                 primary, other, seed=args.seed)
        print()
        print(render_provider_choice(choice))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments import build_scenario
    from repro.faults import FaultPlan
    from repro.report.tables import TextTable
    from repro.rng import SeedTree
    from repro.serve import ConsumerLoadObserver, MonitorService
    from repro.units import HOUR

    plans = {"off": None, "default": FaultPlan.default(),
             "heavy": FaultPlan.heavy()}
    scenario = build_scenario(seed=args.seed, scale=args.scale,
                              faults=plans[args.faults])
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(args.region)
    plan = clasp.deploy_topology(args.region, selection,
                                 budget_servers=args.servers)
    evaluator = None
    if args.rules:
        from repro.alerts import load_rules
        collector, observer = clasp.collector(
            rules=load_rules(args.rules), window_days=args.window_days)
        detector = collector.detector
        evaluator = collector.evaluator
    else:
        detector, observer = clasp.streaming_detector(
            window_days=args.window_days)
    service = MonitorService(detector, ttl_s=args.ttl_hours * HOUR,
                             evaluator=evaluator)
    load = ConsumerLoadObserver(service,
                                SeedTree(args.seed).child("serve"),
                                consumers_per_hour=args.consumers)
    clasp.run_campaign([plan], days=args.days,
                       observers=[observer, load], shards=args.shards)
    if args.fmt == "state":
        print(service.state_json(now_ts=detector.watermark))
        return 0
    if args.fmt == "prom":
        print(service.prometheus(), end="")
        return 0
    if args.fmt == "jsonl":
        print(service.json_lines(), end="")
        return 0
    report = service.load_report()
    table = TextTable(["metric", "value"],
                      title=f"monitor service: {args.region}, "
                            f"{args.days} days, {args.consumers:,} "
                            f"consumers/hour")
    table.add_row(["pairs tracked", len(detector.pairs())])
    table.add_row(["congested now", len(detector.congested_pairs())])
    table.add_row(["sealed pair-days", detector.sealed_days])
    table.add_row(["observations", detector.observed])
    table.add_row(["late dropped", detector.late_dropped])
    table.add_row(["snapshot version", detector.version])
    table.add_row(["queries served", f"{report.queries:,}"])
    table.add_row(["cache hit rate", f"{report.hit_rate:.4f}"])
    table.add_row(["mean staleness", f"{report.mean_staleness_s:.0f} s"])
    if evaluator is not None:
        table.add_row(["alert rules", len(evaluator.rules)])
        table.add_row(["alert notifications",
                       len(evaluator.notifications)])
        table.add_row(["alerts firing now", evaluator.active_count])
    print(table.render())
    for pair in detector.congested_pairs():
        print(f"congested: {'/'.join(pair)}")
    if evaluator is not None:
        for rule, since_ts in evaluator.firing():
            print(f"firing: {rule.name} ({rule.severity}) "
                  f"since sim ts {since_ts:.0f}")
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.alerts import (Collector, concat_datasets, default_rules,
                              load_rules, notifications_to_jsonlines)
    from repro.core.congestion import detect
    from repro.experiments import build_scenario
    from repro.report.tables import TextTable
    from repro.simclock import CAMPAIGN_START
    from repro.units import DAY

    rules = load_rules(args.rules) if args.rules else default_rules()
    collector = None
    resumed = False
    if args.state and Path(args.state).exists():
        collector = Collector.from_state_json(
            Path(args.state).read_text(encoding="utf-8"), rules=rules)
        resumed = True
    datasets = []
    watermarks = []
    for _ in range(args.runs):
        # Run k of a daemon sequence covers simulated days
        # [k*days, (k+1)*days); the world rebuilds identically from
        # the seed, only simulated time moves.
        run_index = collector.runs if collector is not None else 0
        run_start = float(CAMPAIGN_START) + run_index * args.days * DAY
        scenario = build_scenario(seed=args.seed, scale=args.scale)
        clasp = scenario.clasp
        selection = clasp.select_topology_servers(args.region)
        plan = clasp.deploy_topology(args.region, selection,
                                     budget_servers=args.servers)
        collector, observer = clasp.collector(rules=rules,
                                              collector=collector)
        dataset = clasp.run_campaign([plan], days=args.days,
                                     start_ts=run_start,
                                     observers=[observer],
                                     shards=args.shards)
        datasets.append(dataset)
        watermarks.append(collector.detector.watermark)
    monotone = all(later > earlier for earlier, later
                   in zip(watermarks, watermarks[1:]))
    if args.state:
        # Keep the collector resumable: no finalize (it would seal
        # still-open days and late-drop the next run's data).
        Path(args.state).write_text(collector.state_json(),
                                    encoding="utf-8")
    else:
        report = collector.finalize()
    evaluator = collector.evaluator
    if args.fmt == "jsonl":
        print(notifications_to_jsonlines(evaluator.notifications),
              end="")
        return 0
    detector = collector.detector
    table = TextTable(["metric", "value"],
                      title=f"daemon: {args.runs} x {args.days}-day "
                            f"runs, {args.region}"
                            + (" (resumed)" if resumed else ""))
    table.add_row(["total runs", collector.runs])
    table.add_row(["watermarks strictly monotone",
                   "yes" if monotone else "NO"])
    table.add_row(["observations", detector.observed])
    table.add_row(["late dropped", detector.late_dropped])
    table.add_row(["sealed pair-days", detector.sealed_days])
    if args.state:
        table.add_row(["state saved", args.state])
    else:
        batch = detect(concat_datasets(datasets))
        table.add_row(["V_H events", len(report.events)])
        table.add_row(["stream == batch on concat",
                       "yes" if report == batch else "NO"])
    table.add_row(["alert rules", len(evaluator.rules)])
    table.add_row(["rule evaluations", evaluator.evaluations])
    table.add_row(["alert notifications", len(evaluator.notifications)])
    table.add_row(["alerts firing now", evaluator.active_count])
    print(table.render())
    print(notifications_to_jsonlines(evaluator.notifications), end="")
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    from repro.alerts import (alerts_to_prometheus, default_rules,
                              load_rules, notifications_to_jsonlines)
    from repro.experiments import build_scenario
    from repro.faults import FaultPlan
    from repro.obs.exporters import metrics_to_prometheus
    from repro.report.tables import TextTable

    plans = {"off": None, "default": FaultPlan.default(),
             "heavy": FaultPlan.heavy()}
    rules = load_rules(args.rules) if args.rules else default_rules()
    scenario = build_scenario(seed=args.seed, scale=args.scale,
                              faults=plans[args.faults])
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(args.region)
    plan = clasp.deploy_topology(args.region, selection,
                                 budget_servers=args.servers)
    collector, observer = clasp.collector(rules=rules)
    clasp.run_campaign([plan], days=args.days, observers=[observer])
    collector.finalize()
    evaluator = collector.evaluator
    if args.fmt == "jsonl":
        print(notifications_to_jsonlines(evaluator.notifications),
              end="")
        return 0
    if args.fmt == "prom":
        print(metrics_to_prometheus(collector.registry.snapshot()),
              end="")
        print(alerts_to_prometheus(evaluator), end="")
        return 0
    table = TextTable(["metric", "value"],
                      title=f"alerts: {args.region}, {args.days} days, "
                            f"{len(rules)} rules")
    table.add_row(["observations", collector.detector.observed])
    table.add_row(["sealed pair-days", collector.detector.sealed_days])
    table.add_row(["rule evaluations", evaluator.evaluations])
    table.add_row(["notifications", len(evaluator.notifications)])
    table.add_row(["firing now", evaluator.active_count])
    print(table.render())
    print(notifications_to_jsonlines(evaluator.notifications), end="")
    for rule, since_ts in evaluator.firing():
        print(f"firing: {rule.name} ({rule.severity}) "
              f"since sim ts {since_ts:.0f}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.experiments import build_scenario
    from repro.faults import FaultPlan
    from repro.obs.exporters import (metrics_to_jsonlines,
                                     metrics_to_prometheus,
                                     render_span_tree, spans_to_jsonlines)

    plans = {"off": None, "default": FaultPlan.default(),
             "heavy": FaultPlan.heavy()}
    obs.enable(capacity=args.capacity)
    try:
        scenario = build_scenario(seed=args.seed, scale=args.scale,
                                  faults=plans[args.faults])
        clasp = scenario.clasp
        selection = clasp.select_topology_servers(args.region)
        plan = clasp.deploy_topology(args.region, selection,
                                     budget_servers=args.servers)
        clasp.run_campaign([plan], days=args.days)
        tracer = obs.tracer()
        snapshot = obs.snapshot()
        spans = tracer.finished()
        if args.fmt == "tree":
            print(render_span_tree(spans).rstrip("\n"))
            recorder = tracer.recorder
            print(f"spans: {recorder.n_recorded} recorded, "
                  f"{recorder.n_dropped} dropped | layers: "
                  f"{', '.join(tracer.layers())} | metrics: "
                  f"{obs.registry().n_metrics}")
        elif args.fmt == "jsonl":
            print(spans_to_jsonlines(spans), end="")
            print(metrics_to_jsonlines(snapshot), end="")
        else:
            print(metrics_to_prometheus(snapshot,
                                        recorder=tracer.recorder),
                  end="")
    finally:
        obs.disable()
    return 0


def _cmd_world(args: argparse.Namespace) -> int:
    from repro.experiments import build_scenario
    from repro.report.tables import TextTable

    scenario = build_scenario(seed=args.seed, scale=args.scale)
    stats = scenario.internet.topology.stats()
    table = TextTable(["component", "count"],
                      title=f"World (seed={args.seed}, "
                            f"scale={args.scale})")
    for key in ("ases", "pops", "links", "interdomain_links"):
        table.add_row([key, stats[key]])
    table.add_row(["cloud interdomain links",
                   len(scenario.internet.topology.interdomain_links(
                       scenario.internet.cloud_asn))])
    table.add_row(["speed test servers", len(scenario.catalog)])
    table.add_row(["US servers",
                   len(scenario.catalog.servers(country="US"))])
    table.add_row(["congested ASNs",
                   len(scenario.internet.congested_asns)])
    table.add_row(["story networks", len(scenario.story_asns)])
    print(table.render())
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.cloud.billing import CostTracker
    from repro.cloud.tiers import NetworkTier
    from repro.core.orchestrator import Orchestrator
    from repro.report.tables import TextTable
    from repro.units import transferred_bytes

    tier = NetworkTier(args.tier)
    n_vms = Orchestrator.vms_needed(args.servers)
    costs = CostTracker()
    vm_usd = costs.charge_vm_hours(0.095 * n_vms, args.days * 24)
    tests = args.servers * 24 * args.days
    upload_bytes = transferred_bytes(95.0, 15.0)  # per test
    egress_usd = costs.charge_egress(tests * upload_bytes, tier)
    storage_usd = costs.charge_storage(tests * 2_000_000,
                                       args.days / 30.0)
    table = TextTable(["item", "USD"],
                      title=f"Estimated bill: {args.servers} servers, "
                            f"{args.days} days, {tier.value} tier")
    table.add_row(["measurement VMs", f"{vm_usd:,.2f}"])
    table.add_row(["egress (upload tests)", f"{egress_usd:,.2f}"])
    table.add_row(["storage", f"{storage_usd:,.2f}"])
    table.add_row(["total", f"{costs.total_usd:,.2f}"])
    print(table.render())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.fmt != "text":
        argv += ["--format", args.fmt]
    if args.graph:
        argv.append("--graph")
    if args.no_cache:
        argv.append("--no-cache")
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "experiment": _cmd_experiment,
    "quickloop": _cmd_quickloop,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "daemon": _cmd_daemon,
    "alerts": _cmd_alerts,
    "obs": _cmd_obs,
    "world": _cmd_world,
    "cost": _cmd_cost,
    "lint": _cmd_lint,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
