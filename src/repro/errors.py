"""Exception hierarchy for the CLASP reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the boundary.  Subsystems raise the more
specific subclasses below; the class an error belongs to tells you which
layer failed (simulation substrate, cloud platform, measurement tooling,
or the CLASP core itself).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "ValidationError",
    "MissingEntryError",
    "AddressingError",
    "TopologyError",
    "RoutingError",
    "NoRouteError",
    "CloudError",
    "ProviderLookupError",
    "QuotaExceededError",
    "BudgetExhaustedError",
    "StorageError",
    "TransientUploadError",
    "VMPreemptedError",
    "MeasurementError",
    "SpeedTestError",
    "TruncatedTransferError",
    "SchedulingError",
    "SelectionError",
    "AnalysisError",
    "TSDBError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class ValidationError(ReproError, ValueError):
    """An argument failed domain validation (bad range, wrong shape, ...).

    Also derives from :class:`ValueError` so call sites that predate the
    hierarchy - and idiomatic callers of numeric helpers - can keep
    catching the builtin.
    """


class MissingEntryError(ReproError, KeyError):
    """A lookup key (server id, pair, series label) is not present.

    Also derives from :class:`KeyError` to preserve mapping semantics
    for callers that treat datasets like dictionaries.
    """


class AddressingError(ReproError):
    """Invalid IPv4 address/prefix arithmetic or an exhausted allocator."""


class TopologyError(ReproError):
    """The network topology is malformed (unknown AS, dangling link, ...)."""


class RoutingError(ReproError):
    """Route computation failed for a reason other than unreachability."""


class NoRouteError(RoutingError):
    """No policy-compliant route exists between the requested endpoints."""

    def __init__(self, src: object, dst: object) -> None:
        super().__init__(f"no valley-free route from {src!r} to {dst!r}")
        self.src = src
        self.dst = dst


class CloudError(ReproError):
    """Cloud-platform operation failed (VM lifecycle, tier config, ...)."""


class ProviderLookupError(CloudError, ValidationError):
    """An unknown name was looked up in a provider catalog.

    Raised by :class:`~repro.cloud.providers.base.CloudProvider` lookup
    methods (regions, machine types, tiers).  Derives from both
    :class:`CloudError` (it is a cloud-platform failure, and historic
    call sites catch that) and :class:`ValidationError` (the provider
    contract promises domain-validation semantics for bad names).
    """


class QuotaExceededError(CloudError):
    """A per-project cloud resource quota would be exceeded."""


class BudgetExhaustedError(CloudError):
    """The monetary measurement budget has been spent."""


class StorageError(CloudError):
    """Storage-bucket operation failed (missing object, bad key, ...)."""


class TransientUploadError(StorageError):
    """A bucket upload failed transiently; retrying may succeed."""


class VMPreemptedError(CloudError):
    """The VM was preempted by the cloud provider and cannot serve work."""


class MeasurementError(ReproError):
    """A measurement tool (traceroute, bdrmap, flow capture) failed."""


class SpeedTestError(MeasurementError):
    """A speed test could not be completed against the target server."""


class TruncatedTransferError(SpeedTestError):
    """A bulk-transfer phase ended early; the result is unusable."""


class SchedulingError(ReproError):
    """The measurement schedule is infeasible (too many tests per hour)."""


class SelectionError(ReproError):
    """Server selection could not satisfy its constraints."""


class AnalysisError(ReproError):
    """Post-processing/analysis was asked for something impossible."""


class TSDBError(ReproError):
    """Time-series store was queried or written incorrectly."""
