"""A Grafana-substitute text dashboard for a campaign dataset.

The paper indexed processed results into InfluxDB and visualised them
with Grafana.  :func:`render_dashboard` builds the equivalent one-page
operational view from a :class:`~repro.core.campaign.CampaignDataset`:
per-region health panels, the top congested servers with hour-of-day
profiles, and a throughput distribution strip.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..core.analysis import congestion_probability, top_congested_pairs
from ..core.campaign import CampaignDataset
from ..core.congestion import CongestionReport, detect
from .ascii import ascii_histogram, sparkline
from .tables import TextTable, format_percent

__all__ = ["render_dashboard"]


def _region_panel(dataset: CampaignDataset, report: CongestionReport,
                  region: str) -> List[str]:
    pairs = dataset.pairs(region=region)
    downloads = []
    for pair in pairs:
        downloads.append(dataset.table.series(pair)["download"])
    merged = np.concatenate(downloads) if downloads else np.array([])
    lines = [f"## {region}"]
    table = TextTable(["servers", "tests", "median down (Mbps)",
                       "congested s-hours", "congested servers"])
    region_report = _slice_report(report, region)
    table.add_row([
        len(pairs),
        int(merged.size),
        f"{np.median(merged):.0f}" if merged.size else "-",
        format_percent(region_report.congested_hour_fraction, 2),
        len(region_report.congested_pairs()),
    ])
    lines.append(table.render())
    return lines


def _slice_report(report: CongestionReport,
                  region: str) -> CongestionReport:
    sliced = CongestionReport(threshold=report.threshold,
                              metric=report.metric)
    sliced.day_records = [d for d in report.day_records
                          if d.pair[0] == region]
    sliced.events = [e for e in report.events if e.pair[0] == region]
    sliced.pair_hours = {p: n for p, n in report.pair_hours.items()
                         if p[0] == region}
    return sliced


def _engine_panel(metrics: Dict[str, Any]) -> List[str]:
    """The engine-events panel from a metrics observer snapshot."""
    lines = ["## engine events"]
    table = TextTable(["event", "count"])
    for kind, count in metrics.get("events", {}).items():
        table.add_row([kind, count])
    lines.append(table.render())
    usd = metrics.get("usd_by_category", {})
    if usd:
        lines.append("billing: " + " | ".join(
            f"{category} ${amount:.2f}"
            for category, amount in usd.items()))
    return lines


def _obs_panel(snapshot: Dict[str, Any]) -> List[str]:
    """Cross-layer observability panel from a repro.obs snapshot."""
    lines = ["## cross-layer metrics (repro.obs)"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        table = TextTable(["metric", "value"])
        for name, value in counters.items():
            table.add_row([name, f"{value:g}"])
        for name, value in gauges.items():
            table.add_row([f"{name} (gauge)", f"{value:g}"])
        lines.append(table.render())
    histograms = snapshot.get("histograms", {})
    if histograms:
        table = TextTable(["histogram", "count", "mean", "max"])
        for name, hist in histograms.items():
            table.add_row([name, hist["count"],
                           f"{hist['mean']:.2f}", f"{hist['max']:.2f}"])
        lines.append(table.render())
    return lines


def _alerts_panel(notifications: List[Any]) -> List[str]:
    """Alerting panel from a notification log (see repro.alerts)."""
    lines = ["## alerts"]
    if not notifications:
        lines.append("no alert transitions")
        return lines
    table = TextTable(["sim ts", "rule", "severity", "status", "value"])
    for notification in notifications:
        table.add_row([f"{notification.ts:.0f}", notification.rule,
                       notification.severity, notification.status,
                       f"{notification.value:.2f}"])
    lines.append(table.render())
    return lines


def render_dashboard(dataset: CampaignDataset,
                     report: Optional[CongestionReport] = None,
                     top_k: int = 5,
                     metrics: Optional[Dict[str, Any]] = None,
                     obs_snapshot: Optional[Dict[str, Any]] = None,
                     notifications: Optional[List[Any]] = None) -> str:
    """Render the full dashboard as one text block.

    *metrics* is an optional
    :meth:`~repro.engine.observers.MetricsObserver.snapshot` dict from
    the campaign run; when given, an engine-events panel (event counts
    and billing totals) is appended.  Without it the header falls back
    to the dataset's own counters.

    *obs_snapshot* is an optional :func:`repro.obs.snapshot` dict; when
    given, a cross-layer metrics panel (per-layer counters and
    histograms) is appended after the engine panel.

    *notifications* is an optional
    :class:`~repro.alerts.engine.Notification` log from a collector
    run; when given (even empty), an alerts panel is appended.
    """
    if report is None:
        report = detect(dataset)
    lines: List[str] = ["# CLASP campaign dashboard", ""]
    lines.append(
        f"window: {dataset.n_days} days | measurements: {len(dataset)} "
        f"| failed tests: {dataset.failed_tests}")
    lines.append(
        f"congested s-days: "
        f"{format_percent(report.congested_day_fraction)} | "
        f"congested s-hours: "
        f"{format_percent(report.congested_hour_fraction, 2)} "
        f"(threshold H={report.threshold})")
    lines.append("")

    for region in dataset.regions():
        lines.extend(_region_panel(dataset, report, region))
        offenders = top_congested_pairs(report, region, k=top_k)
        for pair in offenders:
            profile = congestion_probability(dataset, report, pair)
            lines.append(
                f"  {profile.label[:42]:42s} "
                f"{sparkline(profile.probability)} "
                f"({profile.n_events} events, peak "
                f"@{profile.peak_hour:02d}h)")
        lines.append("")

    all_downloads = np.concatenate([
        dataset.table.series(pair)["download"]
        for pair in dataset.pairs()]) if dataset.pairs() else np.array([])
    if all_downloads.size:
        lines.append("## download throughput distribution (Mbps)")
        lines.append(ascii_histogram(all_downloads, bins=10))
    if metrics is not None:
        lines.append("")
        lines.extend(_engine_panel(metrics))
    if obs_snapshot is not None:
        lines.append("")
        lines.extend(_obs_panel(obs_snapshot))
    if notifications is not None:
        lines.append("")
        lines.extend(_alerts_panel(notifications))
    return "\n".join(lines)
