"""Fixed-width text tables."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence
from ..errors import ValidationError

__all__ = ["TextTable", "format_percent"]


def format_percent(fraction: float, digits: int = 1) -> str:
    """Render a 0-1 fraction as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"


class TextTable:
    """A small monospace table renderer.

    >>> t = TextTable(["region", "links"])
    >>> t.add_row(["us-west1", 5293])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str],
                 title: Optional[str] = None) -> None:
        if not headers:
            raise ValidationError("table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self._rows: List[List[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.headers):
            raise ValidationError(
                f"expected {len(self.headers)} cells, got {len(values)}")
        self._rows.append([_fmt(v) for v in values])

    def add_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(row)

    def __len__(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        out: List[str] = []
        if self.title:
            out.append(self.title)
        out.append(line(self.headers))
        out.append(line(["-" * w for w in widths]))
        for row in self._rows:
            out.append(line(row))
        return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
