"""Figure data containers.

Each experiment produces one or more :class:`FigureSeries` - the exact
numeric series a figure panel plots - so benchmark output, tests, and
any future real plotting all consume the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from .ascii import render_cdf, render_series
from ..errors import ValidationError

__all__ = ["FigureSeries", "figure_to_text"]


@dataclass
class FigureSeries:
    """One plotted series: label plus x/y arrays (y-only is allowed)."""

    label: str
    y: Sequence[float]
    x: Optional[Sequence[float]] = None
    kind: str = "line"           # line | cdf | scatter | bar
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.x is not None and len(self.x) != len(self.y):
            raise ValidationError(
                f"series {self.label!r}: x/y length mismatch")

    @property
    def n(self) -> int:
        return len(self.y)

    def summary(self) -> Dict[str, float]:
        arr = np.asarray(list(self.y), dtype=float)
        if arr.size == 0:
            return {"n": 0}
        return {
            "n": int(arr.size),
            "min": float(arr.min()),
            "median": float(np.median(arr)),
            "mean": float(arr.mean()),
            "max": float(arr.max()),
        }


def figure_to_text(title: str, series: Sequence[FigureSeries],
                   max_series: int = 12) -> str:
    """Render a figure's series as a compact text block."""
    lines = [title, "=" * len(title)]
    for s in list(series)[:max_series]:
        if s.kind == "cdf":
            lines.append(render_cdf(s.label, s.y))
        elif s.kind == "scatter":
            arr = np.asarray(list(s.y), dtype=float)
            if arr.size:
                lines.append(
                    f"{s.label}: n={arr.size} "
                    f"median={np.median(arr):.1f} "
                    f"p5={np.percentile(arr, 5):.1f} "
                    f"p95={np.percentile(arr, 95):.1f}")
            else:
                lines.append(f"{s.label}: (empty)")
        elif s.kind == "bar":
            lines.append(f"{s.label}: " + " ".join(
                f"{v:.0f}" for v in s.y))
        else:
            lines.append(render_series(s.label, s.y))
    hidden = len(series) - max_series
    if hidden > 0:
        lines.append(f"... and {hidden} more series")
    return "\n".join(lines)
