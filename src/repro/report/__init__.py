"""Plain-text reporting: tables, ASCII charts, figure data builders.

The paper visualised with Grafana; benchmarks here print the same
rows/series as text so the harness is self-contained.
"""

from .tables import TextTable, format_percent
from .ascii import (
    ascii_cdf,
    ascii_histogram,
    ascii_series,
    render_cdf,
    render_series,
    sparkline,
)
from .figures import FigureSeries, figure_to_text
from .crosscloud import render_matrix, render_provider_choice

__all__ = [
    "TextTable", "format_percent",
    "ascii_cdf", "ascii_histogram", "ascii_series",
    "render_cdf", "render_series", "sparkline",
    "FigureSeries", "figure_to_text",
    "render_matrix", "render_provider_choice",
]
