"""Text rendering for cross-cloud results.

:func:`render_matrix` prints the CloudCast-style ordered-pair matrix
as two tables (per-pair cells, per-provider-pair medians);
:func:`render_provider_choice` prints which provider wins which
<city, AS> tuples plus the selected server list.  Both consume the
dataclasses from :mod:`repro.core.crosscloud` and return plain
strings, matching the rest of :mod:`repro.report`.
"""

from __future__ import annotations

from typing import List

from .tables import TextTable, format_percent

__all__ = ["render_matrix", "render_provider_choice"]


def render_matrix(matrix, max_rows: int = 64) -> str:
    """The full cell table plus a provider-pair summary."""
    cells = TextTable(
        ["src", "dst", "rtt_ms", "loss", "tput_mbps", "x-cloud"],
        title=(f"cross-cloud matrix: {len(matrix.endpoints)} endpoints "
               f"({', '.join(matrix.providers)}), "
               f"{matrix.n_pairs} ordered pairs"))
    shown = matrix.cells[:max_rows]
    for c in shown:
        cells.add_row([
            f"{c.src_provider}/{c.src_region}",
            f"{c.dst_provider}/{c.dst_region}",
            c.rtt_ms if c.reachable else "unreach",
            format_percent(c.loss_rate, 2) if c.reachable else "-",
            c.throughput_mbps if c.reachable else "-",
            "yes" if c.cross_provider else "",
        ])
    parts: List[str] = [cells.render()]
    if len(matrix.cells) > max_rows:
        parts.append(f"... {len(matrix.cells) - max_rows} more pairs")

    summary = TextTable(
        ["src provider", "dst provider", "pairs", "median rtt_ms",
         "median tput_mbps"],
        title="per provider pair (reachable cells)")
    for (src, dst), stats in matrix.provider_pair_summary().items():
        summary.add_row([src, dst, int(stats["n_pairs"]),
                         stats["median_rtt_ms"],
                         stats["median_throughput_mbps"]])
    parts.append("")
    parts.append(summary.render())
    unreachable = sum(1 for c in matrix.cells if not c.reachable)
    if unreachable:
        parts.append(f"unreachable pairs: {unreachable}")
    return "\n".join(parts)


def render_provider_choice(choice) -> str:
    """Winner counts and the differential selection, as text."""
    counts = choice.winner_counts()
    head = TextTable(
        ["outcome", "tuples"],
        title=(f"provider choice {choice.label}: "
               f"{choice.provider_a}@{choice.region_a} vs "
               f"{choice.provider_b}@{choice.region_b}, "
               f"{len(choice.selection.candidates)} candidate tuples"))
    head.add_row([f"{choice.provider_a} lower",
                  counts[choice.provider_a]])
    head.add_row([f"{choice.provider_b} lower",
                  counts[choice.provider_b]])
    head.add_row(["comparable", counts["comparable"]])

    picks = TextTable(
        ["server", "city", "asn", "class",
         f"{choice.provider_a}_ms", f"{choice.provider_b}_ms",
         "delta_ms"],
        title=f"selected servers ({len(choice.selection.selected)})")
    class_labels = {"premium_lower": f"{choice.provider_a} lower",
                    "standard_lower": f"{choice.provider_b} lower",
                    "comparable": "comparable"}
    for server, cand in choice.selection.selected:
        picks.add_row([server.server_id, server.city_key, cand.asn,
                       class_labels[cand.latency_class.value],
                       cand.premium_ms, cand.standard_ms, cand.delta_ms])
    return head.render() + "\n\n" + picks.render()
