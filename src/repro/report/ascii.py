"""ASCII renderings of series, histograms, and CDFs."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "sparkline",
    "ascii_series",
    "ascii_histogram",
    "ascii_cdf",
    "render_series",
    "render_cdf",
]

_BLOCKS = " .:-=+*#%@"
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of a series."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _SPARK[0] * arr.size
    scaled = (arr - lo) / (hi - lo)
    idx = np.minimum((scaled * len(_SPARK)).astype(int), len(_SPARK) - 1)
    return "".join(_SPARK[i] for i in idx)


def ascii_series(values: Sequence[float], width: int = 72,
                 height: int = 10) -> str:
    """A multi-line plot of a series (column-downsampled)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(empty series)"
    if arr.size > width:
        # Downsample by averaging bins.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else arr[min(a, arr.size - 1)]
                        for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    rows: List[str] = []
    for level in range(height, 0, -1):
        threshold = lo + span * (level - 0.5) / height
        row = "".join("#" if v >= threshold else " " for v in arr)
        rows.append(row)
    rows.append("-" * len(arr))
    rows.append(f"min={lo:.1f}  max={hi:.1f}  n={len(values)}")
    return "\n".join(rows)


def ascii_histogram(values: Sequence[float], bins: int = 12,
                    width: int = 40,
                    value_format: str = "{:.0f}") -> str:
    """A horizontal-bar histogram."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "(no data)"
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        label = f"[{value_format.format(lo)}, {value_format.format(hi)})"
        lines.append(f"{label:>22s} {bar} {count}")
    return "\n".join(lines)


def ascii_cdf(values: Sequence[float], points: int = 15,
              value_format: str = "{:+.2f}") -> str:
    """A textual CDF: probability vs value at evenly spaced quantiles."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        return "(no data)"
    lines = []
    for q in np.linspace(0.0, 1.0, points):
        idx = min(arr.size - 1, int(q * (arr.size - 1)))
        bar = "#" * int(round(q * 40))
        lines.append(f"P<={q:4.2f} {value_format.format(arr[idx]):>9s} {bar}")
    return "\n".join(lines)


def render_series(label: str, values: Sequence[float],
                  width: int = 72) -> str:
    """Label + sparkline + range summary on one compact block."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return f"{label}: (empty)"
    return (f"{label}: {sparkline(arr[:width])}  "
            f"[{arr.min():.1f} .. {arr.max():.1f}]")


def render_cdf(label: str, values: Sequence[float],
               quantiles: Tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95),
               ) -> str:
    """Label + key quantiles on one line."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return f"{label}: (empty)"
    parts = [f"p{int(q * 100)}={np.percentile(arr, q * 100):+.2f}"
             for q in quantiles]
    return f"{label}: " + "  ".join(parts)
