"""Speed test infrastructure: platforms, server catalogs, test protocol.

Models the three infrastructures CLASP leveraged - Ookla, M-Lab, and
Comcast Xfinity - as catalogs of well-provisioned (>= 1 Gbps) servers
hosted across edge networks, plus the web speed test protocol itself
(latency probes, multi-flow download, multi-flow upload) executed from
a headless browser on the measurement VM.
"""

from .server import Platform, ServerRecord, SpeedTestServer
from .catalog import CatalogConfig, ServerCatalog, build_catalog
from .protocol import SpeedTestConfig, SpeedTestEngine, SpeedTestResult
from .browser import BrowserArtifacts, HeadlessBrowser

__all__ = [
    "Platform", "ServerRecord", "SpeedTestServer",
    "CatalogConfig", "ServerCatalog", "build_catalog",
    "SpeedTestConfig", "SpeedTestEngine", "SpeedTestResult",
    "BrowserArtifacts", "HeadlessBrowser",
]
