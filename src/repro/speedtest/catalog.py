"""Server catalog generation and the platform "crawler" view.

Deploys speed test servers across the generated Internet's edge
networks: access ISPs host most servers (they deploy them close to
users to validate speeds), with hosting companies, universities, and
businesses hosting the rest.  M-Lab pods sit in well-connected hosting
metros; the Comcast platform concentrates in big-ISP footprints; Ookla
is everywhere.

Each server is attached to the topology as a host with >= 1 Gbps of
access capacity, and its access link gets a moderate diurnal load
profile (the server is shared with other testers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..netsim.asn import ASType
from ..netsim.generator import GeneratedInternet
from ..netsim.traffic import DiurnalBump, DiurnalProfile
from ..rng import SeedTree
from ..units import gbps
from .server import Platform, ServerRecord, SpeedTestServer

__all__ = ["CatalogConfig", "ServerCatalog", "build_catalog"]


@dataclass
class CatalogConfig:
    """Shape of the worldwide server deployment."""

    #: Target number of U.S. servers (the paper crawled ~1,330).
    n_us_servers: int = 1330
    #: Target number of non-U.S. servers (kept small; only the
    #: differential experiments need them).
    n_global_servers: int = 260
    #: Platform mix (Ookla dominates real deployments).
    platform_shares: Dict[Platform, float] = field(default_factory=lambda: {
        Platform.OOKLA: 0.72,
        Platform.MLAB: 0.17,
        Platform.COMCAST: 0.11,
    })
    #: Probability weights of the hosting AS type for a new server.
    as_type_weights: Dict[ASType, float] = field(default_factory=lambda: {
        ASType.ACCESS_ISP: 0.64,
        ASType.HOSTING: 0.22,
        ASType.EDUCATION: 0.08,
        ASType.BUSINESS: 0.06,
    })
    #: Access capacity choices in Gbps and their weights ("at least
    #: 1 Gbps for Ookla").
    capacity_gbps_choices: Tuple[float, ...] = (1.0, 2.0, 10.0)
    capacity_weights: Tuple[float, ...] = (0.62, 0.23, 0.15)

    def __post_init__(self) -> None:
        total = sum(self.platform_shares.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigError(f"platform shares must sum to 1, got {total}")
        if len(self.capacity_gbps_choices) != len(self.capacity_weights):
            raise ConfigError("capacity choices/weights length mismatch")


class ServerCatalog:
    """All deployed servers, with platform- and country-level views."""

    def __init__(self, servers: Sequence[SpeedTestServer]) -> None:
        self._servers: List[SpeedTestServer] = list(servers)
        self._by_id: Dict[str, SpeedTestServer] = {}
        self._by_ip: Dict[int, SpeedTestServer] = {}
        for server in self._servers:
            if server.server_id in self._by_id:
                raise ConfigError(f"duplicate server id {server.server_id}")
            self._by_id[server.server_id] = server
            self._by_ip[server.ip] = server

    def __len__(self) -> int:
        return len(self._servers)

    def __iter__(self):
        return iter(self._servers)

    def get(self, server_id: str) -> SpeedTestServer:
        try:
            return self._by_id[server_id]
        except KeyError:
            raise ConfigError(f"unknown server {server_id!r}") from None

    def by_ip(self, ip: int) -> Optional[SpeedTestServer]:
        return self._by_ip.get(ip)

    def servers(self, platform: Optional[Platform] = None,
                country: Optional[str] = None) -> List[SpeedTestServer]:
        return [s for s in self._servers
                if (platform is None or s.platform is platform)
                and (country is None or s.country == country)]

    def crawl(self, platform: Platform) -> List[ServerRecord]:
        """What crawling one platform's public server list returns."""
        return [s.record() for s in self._servers if s.platform is platform]

    def crawl_all(self) -> List[ServerRecord]:
        """Union of all three platforms' lists (CLASP's first step)."""
        out: List[ServerRecord] = []
        for platform in Platform:
            out.extend(self.crawl(platform))
        return out

    def distinct_asns(self, country: Optional[str] = None) -> int:
        return len({s.asn for s in self._servers
                    if country is None or s.country == country})


def build_catalog(internet: GeneratedInternet,
                  config: Optional[CatalogConfig] = None,
                  seeds: Optional[SeedTree] = None,
                  ensure_asns: Optional[Dict[int, int]] = None
                  ) -> ServerCatalog:
    """Deploy servers into *internet* and return the catalog.

    *ensure_asns* maps ASN -> minimum server count; used by scenario
    builders that need specific networks (the paper's named ISPs) to
    host test servers.
    """
    cfg = config or CatalogConfig()
    seeds = seeds or SeedTree(0)
    rng = seeds.generator("server-catalog")
    topo = internet.topology

    by_type: Dict[ASType, List[int]] = {
        ASType.ACCESS_ISP: list(internet.access_isp_asns),
        ASType.HOSTING: list(internet.hosting_asns),
        ASType.EDUCATION: list(internet.education_asns),
        ASType.BUSINESS: list(internet.business_asns),
    }

    def pick_as(country_us: bool) -> Optional[int]:
        """Sample a hosting AS of the configured type mix and country."""
        types = list(cfg.as_type_weights.keys())
        weights = np.array([cfg.as_type_weights[t] for t in types])
        weights = weights / weights.sum()
        for _attempt in range(24):
            as_type = types[int(rng.choice(len(types), p=weights))]
            candidates = [
                asn for asn in by_type[as_type]
                if (topo.as_of(asn).country == "US") == country_us
            ]
            if candidates:
                return int(candidates[int(rng.integers(len(candidates)))])
        return None

    servers: List[SpeedTestServer] = []
    counters: Dict[Platform, int] = {p: 0 for p in Platform}
    platforms = list(cfg.platform_shares.keys())
    platform_weights = np.array([cfg.platform_shares[p] for p in platforms])
    platform_weights = platform_weights / platform_weights.sum()
    capacity_weights = np.array(cfg.capacity_weights, dtype=float)
    capacity_weights = capacity_weights / capacity_weights.sum()

    def deploy(asn: int) -> SpeedTestServer:
        """Attach one new server host inside AS *asn*."""
        as_obj = topo.as_of(asn)
        router_pops = [p for p in topo.pops_of_as(asn) if not p.is_host]
        pop = router_pops[int(rng.integers(len(router_pops)))]
        alloc = internet.infra_allocators[asn]
        ip = alloc.allocate_host()
        capacity = gbps(float(rng.choice(
            cfg.capacity_gbps_choices, p=capacity_weights)))
        host = topo.add_host(asn, pop.pop_id, ip,
                             capacity_mbps=capacity, delay_ms=0.15)
        access_link = topo.links_of_pop(host.pop_id)[0]
        platform = platforms[int(rng.choice(len(platforms),
                                            p=platform_weights))]
        counters[platform] += 1
        city = topo.cities[pop.city_key]
        # The server shares its access pipe with other testers and
        # services: moderate base load plus an evening bump.
        profile = DiurnalProfile(
            base=float(rng.uniform(0.12, 0.40)),
            bumps=(DiurnalBump(20.0, 5.0, float(rng.uniform(0.10, 0.35))),),
            utc_offset_hours=city.utc_offset_hours,
            noise_sigma=0.04,
        )
        internet.utilization.set_profile_both(access_link.link_id, profile)
        server = SpeedTestServer(
            server_id=f"{platform.value}-{counters[platform]:05d}",
            platform=platform,
            sponsor=as_obj.name,
            ip=ip,
            asn=asn,
            city_key=pop.city_key,
            country=city.country,
            host_pop_id=host.pop_id,
            access_link_id=access_link.link_id,
            capacity_mbps=capacity,
            lat=city.point.lat,
            lon=city.point.lon,
            service_cap_mbps=min(capacity, float(rng.uniform(230.0, 640.0))),
        )
        servers.append(server)
        return server

    for is_us, count in ((True, cfg.n_us_servers),
                         (False, cfg.n_global_servers)):
        for _ in range(count):
            asn = pick_as(is_us)
            if asn is not None:
                deploy(asn)
    for asn, minimum in sorted((ensure_asns or {}).items()):
        have = sum(1 for s in servers if s.asn == asn)
        for _ in range(max(0, minimum - have)):
            deploy(asn)
    return ServerCatalog(servers)
