"""The web speed test protocol.

A test against one server runs three phases, like the real web UIs:

1. **latency** - a burst of small HTTP probes; the UI reports the
   minimum observed RTT.
2. **download** - the server pushes bulk data over several parallel
   TCP connections for a fixed duration; the UI reports the average
   goodput of the measured window.
3. **upload** - the client pushes data the other way.

The engine computes each phase from the tier-correct routes and the
instantaneous path state, applies the endpoint constraints (tc shaping
on the VM NIC, machine-type CPU ceiling, server access capacity - which
is part of the routed path), and adds multiplicative measurement noise
so repeated tests scatter the way real web tests do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..cloud.api import CloudPlatform, Direction
from ..cloud.vm import VirtualMachine
from ..errors import SpeedTestError, TruncatedTransferError, ValidationError
from ..faults import FaultInjector
from ..netsim.pathmodel import PathMetrics
from ..netsim.routing import Route
from ..netsim.tcp import multiflow_throughput_mbps
from ..rng import SeedTree
from ..units import transferred_bytes
from .server import SpeedTestServer

__all__ = ["SpeedTestConfig", "SpeedTestResult", "SpeedTestEngine"]


@dataclass
class SpeedTestConfig:
    """Protocol parameters (defaults match common web tests)."""

    n_flows: int = 24
    ping_count: int = 5
    download_duration_s: float = 15.0
    upload_duration_s: float = 15.0
    #: Multiplicative measurement noise (sigma of a lognormal-ish factor).
    noise_sigma: float = 0.12
    #: Latency probe jitter in ms (one-sided).
    ping_jitter_ms: float = 1.5
    #: Probability a test fails outright (server busy, browser hiccup).
    failure_rate: float = 0.002

    #: Flow scaling: web tests add connections on long fat paths until
    #: the pipe saturates (Ookla grows to dozens of streams).
    max_flows: int = 128
    flow_scale_rtt_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValidationError(f"n_flows must be >= 1, got {self.n_flows}")
        if self.max_flows < self.n_flows:
            raise ValidationError("max_flows must be >= n_flows")
        if not 0 <= self.failure_rate < 1:
            raise ValidationError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}")

    def flows_for_rtt(self, rtt_ms: float) -> int:
        """Connections the test opens for a path of the given RTT."""
        if rtt_ms <= 0:
            raise ValidationError(f"rtt must be positive, got {rtt_ms}")
        scale = max(1.0, rtt_ms / self.flow_scale_rtt_ms)
        return min(self.max_flows, int(round(self.n_flows * scale)))


@dataclass(frozen=True)
class SpeedTestResult:
    """What one completed test reports (web UI numbers + flow stats).

    ``download_loss_rate`` / ``upload_loss_rate`` are the packet loss
    rates CLASP's pipeline later recovers from the captured TCP flows -
    the web UI itself does not show them.
    """

    server_id: str
    vm_name: str
    ts: float
    latency_ms: float
    download_mbps: float
    upload_mbps: float
    download_loss_rate: float
    upload_loss_rate: float
    download_bytes: float
    upload_bytes: float
    duration_s: float
    cpu_utilization: float

    @property
    def total_bytes(self) -> float:
        return self.download_bytes + self.upload_bytes


class SpeedTestEngine:
    """Executes speed tests from cloud VMs against catalog servers.

    Randomness is drawn from one lazily created stream *per VM name*
    (label ``speedtest-<vm>``), so a VM's measurement-noise sequence
    depends only on its own test history - never on how tests from
    different VMs interleave.  That is what lets a sharded executor
    run lanes in any partition and still reproduce the single-process
    byte stream exactly.
    """

    def __init__(self, platform: CloudPlatform,
                 config: Optional[SpeedTestConfig] = None,
                 seeds: Optional[SeedTree] = None,
                 injector: Optional[FaultInjector] = None) -> None:
        self.platform = platform
        self.config = config or SpeedTestConfig()
        self._seeds = seeds or SeedTree(0)
        self._streams: Dict[str, np.random.Generator] = {}
        self.injector = injector

    def stream_for(self, vm_name: str) -> np.random.Generator:
        """The VM's private noise stream (created on first use).

        Public because the vectorized batch planner consumes the same
        stream, in the same order, when it precomputes an hour's tests.
        """
        gen = self._streams.get(vm_name)
        if gen is None:
            gen = self._seeds.generator(f"speedtest-{vm_name}")
            self._streams[vm_name] = gen
        return gen

    # ------------------------------------------------------------------

    def run(self, vm: VirtualMachine, server: SpeedTestServer,
            ts: float) -> SpeedTestResult:
        """Run the full three-phase test; raises on protocol failure."""
        vm.require_running()
        cfg = self.config
        rng = self.stream_for(vm.name)
        if rng.random() < cfg.failure_rate:
            raise SpeedTestError(
                f"test from {vm.name} to {server.server_id} failed")
        if self.injector is not None:
            if self.injector.speedtest_fails(vm.name, server.server_id, ts):
                raise SpeedTestError(
                    f"injected failure: test from {vm.name} to "
                    f"{server.server_id} at {ts:.0f}")
            fraction = self.injector.truncation_fraction(
                vm.name, server.server_id, ts)
            if fraction is not None:
                raise TruncatedTransferError(
                    f"transfer from {vm.name} to {server.server_id} "
                    f"truncated after {fraction:.0%} of the test")

        # Evaluate each direction's path state once; the latency phase
        # rides the egress (probe) direction.
        ingress_metrics = self.path_snapshot(vm, server, ts,
                                             Direction.INGRESS)
        egress_metrics = self.path_snapshot(vm, server, ts,
                                            Direction.EGRESS)
        latency_ms = self._latency_phase(egress_metrics, rng)
        server_cap = server.effective_cap_mbps
        down_mbps, down_loss = self._bulk_phase(
            vm, ingress_metrics, Direction.INGRESS, server_cap, rng)
        up_mbps, up_loss = self._bulk_phase(
            vm, egress_metrics, Direction.EGRESS, server_cap, rng)

        down_bytes = transferred_bytes(down_mbps, cfg.download_duration_s)
        up_bytes = transferred_bytes(up_mbps, cfg.upload_duration_s)
        duration = (cfg.download_duration_s + cfg.upload_duration_s
                    + 0.2 * cfg.ping_count + 3.0)
        cpu = vm.machine_type.cpu_utilization_during_test(
            max(down_mbps, up_mbps))

        return SpeedTestResult(
            server_id=server.server_id,
            vm_name=vm.name,
            ts=ts,
            latency_ms=round(latency_ms, 2),
            download_mbps=round(down_mbps, 2),
            upload_mbps=round(up_mbps, 2),
            download_loss_rate=down_loss,
            upload_loss_rate=up_loss,
            download_bytes=down_bytes,
            upload_bytes=up_bytes,
            duration_s=duration,
            cpu_utilization=cpu,
        )

    # ------------------------------------------------------------------
    # phases

    def _routes(self, vm: VirtualMachine, server: SpeedTestServer,
                data_direction: Direction) -> Tuple[Route, Route]:
        return self.platform.route_pair(vm, server.host_pop_id,
                                        data_direction)

    def _latency_phase(self, metrics: PathMetrics,
                       rng: np.random.Generator) -> float:
        """Minimum RTT over a burst of small probes."""
        jitter = rng.exponential(self.config.ping_jitter_ms,
                                 size=self.config.ping_count)
        samples = metrics.rtt_ms + jitter
        return float(np.min(samples))

    def _bulk_phase(self, vm: VirtualMachine, metrics: PathMetrics,
                    direction: Direction, server_cap_mbps: float,
                    rng: np.random.Generator) -> Tuple[float, float]:
        """One bulk-transfer phase; returns (reported Mbps, loss rate)."""
        cfg = self.config
        tcp_mbps = multiflow_throughput_mbps(
            rtt_ms=metrics.rtt_ms,
            loss_rate=metrics.tcp_effective_loss_rate,
            n_flows=cfg.flows_for_rtt(metrics.rtt_ms),
            path_avail_mbps=metrics.avail_mbps,
        )
        rate = min(tcp_mbps, self._endpoint_cap(vm, direction),
                   server_cap_mbps)
        rate = min(rate, vm.machine_type.cpu_throughput_cap_mbps)
        # Multiplicative measurement noise: a one-sided shortfall factor
        # (tests rarely over-report) plus a tiny symmetric wiggle.
        shortfall = abs(rng.normal(0.0, cfg.noise_sigma))
        wiggle = rng.normal(0.0, cfg.noise_sigma * 0.25)
        factor = max(0.05, min(1.0, 1.0 - shortfall + wiggle))
        reported = max(0.05, rate * factor)
        return reported, metrics.measured_loss_rate

    @staticmethod
    def _endpoint_cap(vm: VirtualMachine, direction: Direction) -> float:
        """The tc shaping cap that applies to this data direction."""
        if direction is Direction.INGRESS:
            return vm.nic.ingress_cap_mbps()
        return vm.nic.egress_cap_mbps()

    # ------------------------------------------------------------------

    def path_snapshot(self, vm: VirtualMachine, server: SpeedTestServer,
                      ts: float,
                      direction: Direction = Direction.INGRESS) -> PathMetrics:
        """Expose the raw path state (used by analysis & tests)."""
        data_route, ack_route = self._routes(vm, server, direction)
        return self.platform.path_model.evaluate(data_route, ts, ack_route)
