"""Headless-browser wrapper around the speed test engine.

The paper ran web speed tests inside a headless Chromium and scraped
the numbers the page displayed, while ``tcpdump`` captured packet
headers and ``someta`` recorded VM metadata.  This wrapper reproduces
that layering: it runs the engine, rounds values the way the web UIs
render them, retries transient failures once (as the cron wrapper
did), and emits the artefact sizes (compressed pcap + page capture)
that get uploaded to the storage bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .. import obs
from ..cloud.vm import VirtualMachine
from ..errors import SpeedTestError, ValidationError
from .protocol import SpeedTestEngine, SpeedTestResult
from .server import SpeedTestServer

__all__ = ["BrowserArtifacts", "HeadlessBrowser"]

#: Compressed pcap headers come to roughly this fraction of the bytes
#: transferred (headers only, then gzip).
_PCAP_FRACTION = 0.004
#: Fixed size of the page capture + someta metadata blob.
_CAPTURE_OVERHEAD_BYTES = 180_000


@dataclass(frozen=True)
class BrowserArtifacts:
    """Artefacts one browser-driven test leaves on disk."""

    result: SpeedTestResult
    pcap_bytes: int
    capture_bytes: int
    #: Attempts made before the result, including the successful one
    #: (so 1 means it worked first try).
    attempts: int

    @property
    def retried(self) -> bool:
        """Whether the test needed more than one attempt."""
        return self.attempts > 1

    @property
    def upload_size_bytes(self) -> int:
        """Total compressed artefact size shipped to the bucket."""
        return self.pcap_bytes + self.capture_bytes


class HeadlessBrowser:
    """Runs one web speed test end to end inside "Chromium"."""

    def __init__(self, engine: SpeedTestEngine, max_retries: int = 1,
                 backoff: Optional[Callable[[int], float]] = None) -> None:
        if max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {max_retries}")
        self.engine = engine
        self.max_retries = max_retries
        #: Deterministic seconds-before-retry schedule: ``backoff(k)`` is
        #: the delay before retry ``k`` (0-based).  ``None`` retries
        #: immediately, like the original cron wrapper.
        self.backoff = backoff

    def run_test(self, vm: VirtualMachine, server: SpeedTestServer,
                 ts: float) -> BrowserArtifacts:
        """Execute the test, retrying transient failures.

        Retries are bounded by ``max_retries`` and spaced by the
        deterministic ``backoff`` schedule (when configured).  Raises
        :class:`SpeedTestError` when all attempts fail.
        """
        last_error: Optional[SpeedTestError] = None
        # getattr: the engine only needs run(); test doubles may not
        # carry the cosmetic identity fields the span annotates.
        with obs.span("speedtest.run_test", layer="speedtest", sim_ts=ts,
                      vm=getattr(vm, "name", "?"),
                      server=getattr(server, "server_id", "?")) as sp:
            for attempt in range(self.max_retries + 1):
                attempt_ts = ts
                if attempt and self.backoff is not None:
                    attempt_ts = ts + self.backoff(attempt - 1)
                try:
                    result = self.engine.run(vm, server, attempt_ts)
                except SpeedTestError as err:
                    last_error = err
                    continue
                sp.annotate(attempts=attempt + 1)
                obs.inc("speedtest.tests")
                download = getattr(result, "download_mbps", None)
                if download is not None:
                    sp.annotate(download_mbps=round(download, 3))
                    obs.observe("speedtest.download_mbps", download)
                pcap = int(result.total_bytes * _PCAP_FRACTION)
                return BrowserArtifacts(
                    result=result,
                    pcap_bytes=pcap,
                    capture_bytes=_CAPTURE_OVERHEAD_BYTES,
                    attempts=attempt + 1,
                )
            assert last_error is not None
            obs.inc("speedtest.failures")
            raise last_error
