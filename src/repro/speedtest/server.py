"""Speed test server model and crawl-facing metadata records."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..netsim.addressing import format_ip

__all__ = ["Platform", "SpeedTestServer", "ServerRecord"]


class Platform(enum.Enum):
    """The three speed test infrastructures CLASP uses."""

    OOKLA = "ookla"
    MLAB = "mlab"
    COMCAST = "comcast"


@dataclass(frozen=True)
class SpeedTestServer:
    """A deployed test server (simulator-side, with topology handles)."""

    server_id: str
    platform: Platform
    sponsor: str            # network/organisation name shown in the UI
    ip: int
    asn: int
    city_key: str
    country: str
    host_pop_id: int        # host node in the topology
    access_link_id: int     # the server's attachment link
    capacity_mbps: float
    lat: float
    lon: float
    #: Per-client throughput cap the operator configured (test servers
    #: protect their uplink from any single tester).  0 = uncapped.
    service_cap_mbps: float = 0.0

    @property
    def effective_cap_mbps(self) -> float:
        """Per-client ceiling (service cap, else the access capacity)."""
        if self.service_cap_mbps > 0:
            return min(self.service_cap_mbps, self.capacity_mbps)
        return self.capacity_mbps

    @property
    def ip_text(self) -> str:
        return format_ip(self.ip)

    def record(self) -> "ServerRecord":
        """The metadata a platform's public server list exposes."""
        city_name = self.city_key.rsplit(",", 1)[0]
        return ServerRecord(
            server_id=self.server_id,
            platform=self.platform,
            sponsor=self.sponsor,
            ip_text=self.ip_text,
            city=city_name,
            country=self.country,
            lat=self.lat,
            lon=self.lon,
        )


@dataclass(frozen=True)
class ServerRecord:
    """What crawling a platform's server list yields (no topology refs).

    This is the only view CLASP's selection logic is allowed to consume
    directly; network position must be *measured* (traceroute, bdrmap)
    or *resolved* (prefix-to-AS), exactly as in the paper.
    """

    server_id: str
    platform: Platform
    sponsor: str
    ip_text: str
    city: str
    country: str
    lat: float
    lon: float
