"""Simulated hyperscale cloud platform (GCP-like).

Regions and zones, machine types, VM lifecycle with traffic-shaped
NICs, premium/standard network service tiers, egress/VM/storage
billing, storage buckets, and an orchestration API - everything CLASP
touches in the real cloud, implemented against the synthetic Internet
in :mod:`repro.netsim`.
"""

from .regions import Region, Zone, REGIONS, region_by_name
from .machinetypes import MachineType, MACHINE_TYPES, machine_type_by_name
from .nic import NetworkInterface, TokenBucket
from .tiers import NetworkTier
from .vm import VirtualMachine, VMStatus
from .billing import CostTracker, PriceBook
from .storage import StorageBucket, StorageObject, StorageService
from .api import CloudPlatform, Direction

__all__ = [
    "Region", "Zone", "REGIONS", "region_by_name",
    "MachineType", "MACHINE_TYPES", "machine_type_by_name",
    "NetworkInterface", "TokenBucket",
    "NetworkTier",
    "VirtualMachine", "VMStatus",
    "CostTracker", "PriceBook",
    "StorageBucket", "StorageObject", "StorageService",
    "CloudPlatform", "Direction",
]
