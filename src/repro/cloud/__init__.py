"""Simulated hyperscale cloud platforms.

Regions and zones, machine types, VM lifecycle with traffic-shaped
NICs, network service tiers, egress/VM/storage billing, storage
buckets, and an orchestration API - everything CLASP touches in the
real cloud, implemented against the synthetic Internet in
:mod:`repro.netsim`.  Provider-specific vocabulary (region catalogs,
tier enums and their routing tables, rate cards) lives in
:mod:`repro.cloud.providers`; GCP is the default and reproduces the
paper's platform bit-for-bit.
"""

from .regions import Region, Zone, REGIONS, region_by_name
from .machinetypes import MachineType, MACHINE_TYPES, machine_type_by_name
from .nic import NetworkInterface, TokenBucket
from .tiers import Direction, NetworkTier
from .vm import VirtualMachine, VMStatus
from .billing import CostTracker, PriceBook
from .storage import StorageBucket, StorageObject, StorageService
from .providers import (AwsTier, CloudProvider, OpenStackTier, PROVIDERS,
                        WanConfig, get_provider, resolve_tier)
from .api import CloudPlatform
from .fleet import CloudFleet

__all__ = [
    "Region", "Zone", "REGIONS", "region_by_name",
    "MachineType", "MACHINE_TYPES", "machine_type_by_name",
    "NetworkInterface", "TokenBucket",
    "Direction", "NetworkTier", "AwsTier", "OpenStackTier",
    "VirtualMachine", "VMStatus",
    "CostTracker", "PriceBook",
    "StorageBucket", "StorageObject", "StorageService",
    "CloudProvider", "PROVIDERS", "WanConfig", "get_provider",
    "resolve_tier",
    "CloudPlatform", "CloudFleet",
]
