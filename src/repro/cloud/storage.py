"""Cloud storage buckets.

CLASP compresses raw measurement artefacts (pcaps, browser captures,
traceroute warts) on the measurement VM and uploads them to a regional
bucket; the analysis VM in the same region consumes them.  We track
object names, sizes, and timestamps so the pipeline and billing behave
like the real thing, without holding artefact payloads in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..errors import StorageError, TransientUploadError
from .billing import CostTracker

__all__ = ["StorageObject", "StorageBucket", "StorageService", "UploadFaultHook"]

#: Fault hook signature: ``(bucket_name, key, attempt)`` -> fail?
UploadFaultHook = Callable[[str, str, int], bool]


@dataclass(frozen=True)
class StorageObject:
    """Metadata of one stored object."""

    key: str
    size_bytes: int
    uploaded_ts: float
    content_kind: str = "raw"   # raw | processed | index


class StorageBucket:
    """A named bucket pinned to a region."""

    def __init__(self, name: str, region_name: str,
                 fault_hook: Optional[UploadFaultHook] = None) -> None:
        if not name:
            raise StorageError("bucket name cannot be empty")
        self.name = name
        self.region_name = region_name
        self._objects: Dict[str, StorageObject] = {}
        self.fault_hook = fault_hook
        self._upload_attempts: Dict[str, int] = {}

    def upload(self, key: str, size_bytes: int, ts: float,
               content_kind: str = "raw") -> StorageObject:
        """Store object metadata; overwrites an existing key.

        With a fault hook installed, an upload attempt may raise
        :class:`~repro.errors.TransientUploadError`; the attempt
        counter advances per call, so a bounded-retry caller re-rolls
        an independent decision each time.
        """
        if not key:
            raise StorageError("object key cannot be empty")
        if size_bytes < 0:
            raise StorageError(f"object size must be >= 0: {size_bytes}")
        if self.fault_hook is not None:
            attempt = self._upload_attempts.get(key, 0)
            self._upload_attempts[key] = attempt + 1
            if self.fault_hook(self.name, key, attempt):
                raise TransientUploadError(
                    f"upload of {key!r} to bucket {self.name} failed "
                    f"(attempt {attempt + 1})")
        return self.put(key, size_bytes, ts, content_kind)

    def put(self, key: str, size_bytes: int, ts: float,
            content_kind: str = "raw") -> StorageObject:
        """Store object metadata unconditionally (no fault hook).

        This is the settled-state write: shard replay uses it to apply
        uploads that already succeeded inside a worker, where the fault
        decision (and its per-key attempt accounting) was made.
        """
        if not key:
            raise StorageError("object key cannot be empty")
        if size_bytes < 0:
            raise StorageError(f"object size must be >= 0: {size_bytes}")
        obj = StorageObject(key, int(size_bytes), ts, content_kind)
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> StorageObject:
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(
                f"object {key!r} not found in bucket {self.name}") from None

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise StorageError(
                f"object {key!r} not found in bucket {self.name}")
        del self._objects[key]

    def list(self, prefix: str = "") -> List[StorageObject]:
        return sorted((o for k, o in self._objects.items()
                       if k.startswith(prefix)),
                      key=lambda o: o.key)

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StorageObject]:
        return iter(self.list())

    @property
    def total_bytes(self) -> int:
        return sum(o.size_bytes for o in self._objects.values())


class StorageService:
    """Bucket management plus storage billing."""

    def __init__(self, cost_tracker: Optional[CostTracker] = None) -> None:
        self._buckets: Dict[str, StorageBucket] = {}
        self._costs = cost_tracker
        self._fault_hook: Optional[UploadFaultHook] = None

    def set_fault_hook(self, hook: Optional[UploadFaultHook]) -> None:
        """Install a deterministic upload-fault hook on every bucket."""
        self._fault_hook = hook
        for bucket in self._buckets.values():
            bucket.fault_hook = hook

    def create_bucket(self, name: str, region_name: str) -> StorageBucket:
        if name in self._buckets:
            raise StorageError(f"bucket {name!r} already exists")
        bucket = StorageBucket(name, region_name, fault_hook=self._fault_hook)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> StorageBucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise StorageError(f"unknown bucket {name!r}") from None

    def buckets(self) -> List[StorageBucket]:
        return list(self._buckets.values())

    def charge_monthly_storage(self, months: float = 1.0) -> float:
        """Bill all buckets' current contents for *months*; returns USD."""
        if self._costs is None:
            return 0.0
        total = 0.0
        for bucket in self._buckets.values():
            total += self._costs.charge_storage(bucket.total_bytes, months)
        return total
