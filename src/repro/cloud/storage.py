"""Cloud storage buckets.

CLASP compresses raw measurement artefacts (pcaps, browser captures,
traceroute warts) on the measurement VM and uploads them to a regional
bucket; the analysis VM in the same region consumes them.  We track
object names, sizes, and timestamps so the pipeline and billing behave
like the real thing, without holding artefact payloads in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..errors import StorageError
from .billing import CostTracker

__all__ = ["StorageObject", "StorageBucket", "StorageService"]


@dataclass(frozen=True)
class StorageObject:
    """Metadata of one stored object."""

    key: str
    size_bytes: int
    uploaded_ts: float
    content_kind: str = "raw"   # raw | processed | index


class StorageBucket:
    """A named bucket pinned to a region."""

    def __init__(self, name: str, region_name: str) -> None:
        if not name:
            raise StorageError("bucket name cannot be empty")
        self.name = name
        self.region_name = region_name
        self._objects: Dict[str, StorageObject] = {}

    def upload(self, key: str, size_bytes: int, ts: float,
               content_kind: str = "raw") -> StorageObject:
        """Store object metadata; overwrites an existing key."""
        if not key:
            raise StorageError("object key cannot be empty")
        if size_bytes < 0:
            raise StorageError(f"object size must be >= 0: {size_bytes}")
        obj = StorageObject(key, int(size_bytes), ts, content_kind)
        self._objects[key] = obj
        return obj

    def get(self, key: str) -> StorageObject:
        try:
            return self._objects[key]
        except KeyError:
            raise StorageError(
                f"object {key!r} not found in bucket {self.name}") from None

    def delete(self, key: str) -> None:
        if key not in self._objects:
            raise StorageError(
                f"object {key!r} not found in bucket {self.name}")
        del self._objects[key]

    def list(self, prefix: str = "") -> List[StorageObject]:
        return sorted((o for k, o in self._objects.items()
                       if k.startswith(prefix)),
                      key=lambda o: o.key)

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StorageObject]:
        return iter(self.list())

    @property
    def total_bytes(self) -> int:
        return sum(o.size_bytes for o in self._objects.values())


class StorageService:
    """Bucket management plus storage billing."""

    def __init__(self, cost_tracker: Optional[CostTracker] = None) -> None:
        self._buckets: Dict[str, StorageBucket] = {}
        self._costs = cost_tracker

    def create_bucket(self, name: str, region_name: str) -> StorageBucket:
        if name in self._buckets:
            raise StorageError(f"bucket {name!r} already exists")
        bucket = StorageBucket(name, region_name)
        self._buckets[name] = bucket
        return bucket

    def bucket(self, name: str) -> StorageBucket:
        try:
            return self._buckets[name]
        except KeyError:
            raise StorageError(f"unknown bucket {name!r}") from None

    def buckets(self) -> List[StorageBucket]:
        return list(self._buckets.values())

    def charge_monthly_storage(self, months: float = 1.0) -> float:
        """Bill all buckets' current contents for *months*; returns USD."""
        if self._costs is None:
            return 0.0
        total = 0.0
        for bucket in self._buckets.values():
            total += self._costs.charge_storage(bucket.total_bytes, months)
        return total
