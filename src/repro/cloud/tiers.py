"""Network service tiers.

* **Premium** - traffic rides the cloud's private WAN: egress exits at
  the interconnection nearest the destination (cold potato), ingress
  enters the WAN at the edge nearest the source and is carried to the
  region.  Routed over the full peering graph.
* **Standard** - traffic uses the public Internet: egress exits via a
  transit provider at the origin region (hot potato), ingress travels
  transit all the way and is delivered at the interconnection nearest
  the region, because standard-tier prefixes are only announced there.

The mapping to route computation lives in each provider's tier table
(:attr:`repro.cloud.providers.base.CloudProvider.tier_table`), consumed
by :meth:`repro.cloud.api.CloudPlatform.route`.
"""

from __future__ import annotations

import enum

__all__ = ["Direction", "NetworkTier"]


class Direction(enum.Enum):
    """Direction of bulk data relative to the VM."""

    EGRESS = "egress"     # VM -> remote (upload test data direction)
    INGRESS = "ingress"   # remote -> VM (download test data direction)


class NetworkTier(enum.Enum):
    """The two network service tiers GCP sells.

    Other providers carry their own tier enums (see
    :mod:`repro.cloud.providers`); this one stays here because the
    paper's platform is GCP and most of the package speaks it natively.
    """

    PREMIUM = "premium"
    STANDARD = "standard"

    @property
    def egress_price_tier(self) -> str:
        """Billing bucket name used by :class:`~repro.cloud.billing.PriceBook`."""
        return self.value
