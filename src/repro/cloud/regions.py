"""Cloud regions and availability zones.

The catalog mirrors the regions the paper measured from: five U.S.
regions plus europe-west1, each anchored to the real datacenter metro.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import CloudError

__all__ = ["Zone", "Region", "REGIONS", "region_by_name", "PAPER_REGIONS"]


@dataclass(frozen=True)
class Zone:
    """One availability zone within a region."""

    name: str          # e.g. "us-west1-a"
    region_name: str


@dataclass(frozen=True)
class Region:
    """A cloud region: a datacenter campus in one metro."""

    name: str
    city_key: str
    zone_suffixes: Tuple[str, ...] = ("a", "b", "c")

    @property
    def zones(self) -> List[Zone]:
        return [Zone(f"{self.name}-{s}", self.name) for s in self.zone_suffixes]

    def zone(self, suffix: str) -> Zone:
        if suffix not in self.zone_suffixes:
            raise CloudError(f"region {self.name} has no zone -{suffix}")
        return Zone(f"{self.name}-{suffix}", self.name)


#: All regions the simulated platform offers.
REGIONS: Dict[str, Region] = {
    r.name: r for r in [
        Region("us-west1", "The Dalles, US"),
        Region("us-west2", "Los Angeles, US"),
        Region("us-west3", "Salt Lake City, US"),
        Region("us-west4", "Las Vegas, US"),
        Region("us-central1", "Council Bluffs, US", ("a", "b", "c", "f")),
        Region("us-east1", "Moncks Corner, US", ("b", "c", "d")),
        Region("us-east4", "Ashburn, US"),
        Region("europe-west1", "St. Ghislain, BE", ("b", "c", "d")),
        Region("europe-west2", "London, GB"),
        Region("europe-west4", "Amsterdam, NL"),
        Region("asia-southeast1", "Singapore, SG"),
        Region("asia-northeast1", "Tokyo, JP"),
    ]
}

#: Regions used in the paper's measurement campaign.  Table 1 covers the
#: five U.S. regions us-west1/us-west2/us-east1/us-east4/us-central1;
#: Fig. 2 additionally shows us-west4, and the differential experiments
#: use us-central1, us-east1, and europe-west1.
PAPER_US_REGIONS: Tuple[str, ...] = (
    "us-west1", "us-west2", "us-west4", "us-east1", "us-east4",
    "us-central1",
)
PAPER_TABLE1_REGIONS: Tuple[str, ...] = (
    "us-west1", "us-west2", "us-east1", "us-east4", "us-central1",
)
PAPER_DIFFERENTIAL_REGIONS: Tuple[str, ...] = (
    "us-central1", "us-east1", "europe-west1",
)
PAPER_REGIONS: Tuple[str, ...] = PAPER_US_REGIONS + ("europe-west1",)


def region_by_name(name: str) -> Region:
    """Look up a region, raising :class:`CloudError` on a bad name."""
    try:
        return REGIONS[name]
    except KeyError:
        raise CloudError(f"unknown region {name!r}") from None
