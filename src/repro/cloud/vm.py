"""Virtual machine model."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import CloudError, VMPreemptedError
from .machinetypes import MachineType
from .nic import NetworkInterface
from .regions import Zone
from .tiers import NetworkTier

__all__ = ["VMStatus", "VirtualMachine"]


class VMStatus(enum.Enum):
    PROVISIONING = "provisioning"
    RUNNING = "running"
    PREEMPTED = "preempted"
    TERMINATED = "terminated"


@dataclass
class VirtualMachine:
    """A VM instance: shape, placement, tier, and NIC.

    Instances are created through
    :meth:`repro.cloud.api.CloudPlatform.create_vm`; mutating state
    directly will desynchronise billing.
    """

    name: str
    zone: Zone
    machine_type: MachineType
    tier: NetworkTier
    nic: NetworkInterface
    created_ts: float
    status: VMStatus = VMStatus.RUNNING
    terminated_ts: Optional[float] = None

    @property
    def region_name(self) -> str:
        return self.zone.region_name

    @property
    def is_running(self) -> bool:
        return self.status is VMStatus.RUNNING

    def require_running(self) -> None:
        """Raise unless the VM can serve work."""
        if self.status is VMStatus.PREEMPTED:
            raise VMPreemptedError(f"VM {self.name} was preempted")
        if not self.is_running:
            raise CloudError(f"VM {self.name} is {self.status.value}")

    def uptime_hours(self, now_ts: float) -> float:
        """Billable hours so far (or total if terminated)."""
        end = self.terminated_ts if self.terminated_ts is not None else now_ts
        return max(0.0, (end - self.created_ts) / 3600.0)
