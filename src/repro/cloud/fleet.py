"""A fleet: several providers' platforms over one generated Internet.

Cross-cloud workloads (the CloudCast-style VM-pair matrix, the
provider-choice analysis) need VMs from more than one provider living
in the *same* simulated Internet so their paths traverse shared
transit.  :class:`CloudFleet` is that bundle: an ordered, named set of
:class:`~repro.cloud.api.CloudPlatform` instances - one per provider,
each bound to its own WAN ASN in the shared topology, each billing to
its own cost tracker at its own rates.

The fleet does not grow WANs; the scenario layer does that (it owns
the topology generator) and passes the resulting ASNs in here.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigError, ProviderLookupError
from ..netsim.generator import GeneratedInternet
from .api import CloudPlatform
from .providers import CloudProvider, get_provider

__all__ = ["CloudFleet"]


class CloudFleet:
    """Ordered, named cloud platforms sharing one Internet."""

    def __init__(self, platforms: Mapping[str, CloudPlatform]) -> None:
        if not platforms:
            raise ConfigError("a fleet needs at least one platform")
        self._platforms: Dict[str, CloudPlatform] = dict(platforms)
        for name, platform in self._platforms.items():
            if platform.provider.name != name:
                raise ConfigError(
                    f"fleet key {name!r} does not match the platform's "
                    f"provider {platform.provider.name!r}")

    # ------------------------------------------------------------------

    @property
    def primary(self) -> CloudPlatform:
        """The first platform - the one the main campaign runs on."""
        return next(iter(self._platforms.values()))

    def platform(self, name: str) -> CloudPlatform:
        try:
            return self._platforms[name]
        except KeyError:
            raise ProviderLookupError(
                f"no {name!r} platform in this fleet; have: "
                f"{', '.join(self._platforms)}") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._platforms)

    def platforms(self) -> Tuple[CloudPlatform, ...]:
        return tuple(self._platforms.values())

    def __iter__(self) -> Iterator[CloudPlatform]:
        return iter(self._platforms.values())

    def __len__(self) -> int:
        return len(self._platforms)

    def __contains__(self, name: object) -> bool:
        return name in self._platforms

    def total_cost_usd(self) -> float:
        return sum(p.costs.total_usd for p in self)

    # ------------------------------------------------------------------

    @classmethod
    def build(cls, internet: GeneratedInternet,
              providers: Sequence[Union[str, CloudProvider]],
              *,
              cloud_asns: Optional[Mapping[str, int]] = None,
              platforms: Optional[Mapping[str, CloudPlatform]] = None
              ) -> "CloudFleet":
        """One platform per provider, in the given order.

        *cloud_asns* maps provider names to the ASN their WAN occupies
        in the topology; a provider without an entry uses the
        Internet's primary cloud ASN (correct only for the provider
        whose WAN the generator built natively - GCP).  *platforms*
        supplies pre-built platforms by name (so the Clasp-owned
        primary platform can join the fleet instead of being rebuilt).
        """
        asns = dict(cloud_asns or {})
        prebuilt = dict(platforms or {})
        out: Dict[str, CloudPlatform] = {}
        for entry in providers:
            provider = get_provider(entry)
            if provider.name in out:
                raise ConfigError(
                    f"provider {provider.name!r} listed twice")
            if provider.name in prebuilt:
                out[provider.name] = prebuilt[provider.name]
                continue
            out[provider.name] = CloudPlatform(
                internet, provider=provider,
                cloud_asn=asns.get(provider.name))
        return cls(out)
