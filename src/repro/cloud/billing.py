"""Cloud billing: VM hours, egress traffic, storage.

The paper's deployment cost over USD 6,000/month (egress, storage,
VMs), which is why CLASP throttles uplink to 100 Mbps (only egress is
billed) and why only subsets of selected servers were measured in three
regions.  The cost tracker reproduces those economics so budget-driven
decisions in the orchestrator are real decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import BudgetExhaustedError, ConfigError, ValidationError
from ..units import bytes_to_gb
from .tiers import NetworkTier

__all__ = ["PriceBook", "CostTracker"]


@dataclass(frozen=True)
class PriceBook:
    """USD prices, loosely matching 2020 GCP list prices."""

    #: $/GB of egress to the Internet, by network tier.
    egress_per_gb: Dict[str, float] = field(default_factory=lambda: {
        NetworkTier.PREMIUM.value: 0.12,
        NetworkTier.STANDARD.value: 0.085,
    })
    #: $/GB-month of bucket storage.
    storage_per_gb_month: float = 0.020
    #: $/GB for intra-region traffic (VM <-> bucket in same region).
    intra_region_per_gb: float = 0.0

    def egress_usd(self, n_bytes: float, tier: NetworkTier) -> float:
        if n_bytes < 0:
            raise ValidationError(f"bytes must be >= 0, got {n_bytes}")
        # Accept any provider's tier enum (or a raw tier value string):
        # the rate card is keyed on serialized tier values.
        key = getattr(tier, "value", tier)
        try:
            rate = self.egress_per_gb[key]
        except KeyError:
            raise ValidationError(
                f"no egress rate for tier {key!r}; priced tiers: "
                f"{', '.join(sorted(self.egress_per_gb))}") from None
        return bytes_to_gb(n_bytes) * rate

    def storage_usd(self, n_bytes: float, months: float) -> float:
        if n_bytes < 0 or months < 0:
            raise ValidationError("bytes and months must be >= 0")
        return bytes_to_gb(n_bytes) * months * self.storage_per_gb_month


class CostTracker:
    """Accumulates spend by category and enforces an optional budget."""

    CATEGORIES = ("vm_hours", "egress", "storage", "intra_region")

    def __init__(self, prices: Optional[PriceBook] = None,
                 budget_usd: Optional[float] = None) -> None:
        if budget_usd is not None and budget_usd <= 0:
            raise ConfigError(f"budget must be positive, got {budget_usd}")
        self.prices = prices or PriceBook()
        self.budget_usd = budget_usd
        self._spend: Dict[str, float] = {c: 0.0 for c in self.CATEGORIES}

    # ------------------------------------------------------------------

    def _add(self, category: str, usd: float) -> None:
        if category not in self._spend:
            raise ConfigError(f"unknown cost category {category!r}")
        if usd < 0:
            raise ValidationError(f"cannot add negative spend: {usd}")
        if (self.budget_usd is not None
                and self.total_usd + usd > self.budget_usd):
            raise BudgetExhaustedError(
                f"spending ${usd:.2f} on {category} would exceed the "
                f"${self.budget_usd:.2f} budget "
                f"(spent ${self.total_usd:.2f})")
        self._spend[category] += usd

    def charge_vm_hours(self, hourly_usd: float, hours: float) -> float:
        """Charge VM uptime; returns the amount charged."""
        if hours < 0 or hourly_usd < 0:
            raise ValidationError("hours and hourly rate must be >= 0")
        usd = hourly_usd * hours
        self._add("vm_hours", usd)
        return usd

    def charge_egress(self, n_bytes: float, tier: NetworkTier) -> float:
        """Charge Internet egress in the given tier."""
        usd = self.prices.egress_usd(n_bytes, tier)
        self._add("egress", usd)
        return usd

    def charge_storage(self, n_bytes: float, months: float) -> float:
        usd = self.prices.storage_usd(n_bytes, months)
        self._add("storage", usd)
        return usd

    def charge_intra_region(self, n_bytes: float) -> float:
        usd = bytes_to_gb(n_bytes) * self.prices.intra_region_per_gb
        self._add("intra_region", usd)
        return usd

    # ------------------------------------------------------------------

    @property
    def total_usd(self) -> float:
        return sum(self._spend.values())

    def spend_by_category(self) -> Dict[str, float]:
        return dict(self._spend)

    def remaining_usd(self) -> Optional[float]:
        """Budget headroom, or ``None`` when no budget is set."""
        if self.budget_usd is None:
            return None
        return max(0.0, self.budget_usd - self.total_usd)

    def would_exceed(self, usd: float) -> bool:
        """True when adding *usd* of spend would blow the budget."""
        if self.budget_usd is None:
            return False
        return self.total_usd + usd > self.budget_usd
