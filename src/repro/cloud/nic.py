"""VM network interface with ``tc``-style traffic shaping.

CLASP throttles each measurement VM to 1 Gbps down / 100 Mbps up with
Linux ``tc`` so tests cannot overload networks (and so upload egress -
the billable direction - stays cheap).  :class:`TokenBucket` is a real
token-bucket shaper (rate + burst), and :class:`NetworkInterface`
carries one per direction plus the physical attachment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError, ValidationError
from ..units import mbps_to_bytes_per_sec

__all__ = ["TokenBucket", "NetworkInterface"]


class TokenBucket:
    """Token-bucket rate limiter operating on simulated time.

    Tokens are bytes.  ``consume`` asks to send *n* bytes at time *ts*
    and returns the time at which the transmission may complete, which
    is how the shaper expresses both rate limiting and burst absorption.
    """

    def __init__(self, rate_mbps: float, burst_bytes: int = 1_250_000) -> None:
        if rate_mbps <= 0:
            raise ConfigError(f"shaper rate must be positive: {rate_mbps}")
        if burst_bytes <= 0:
            raise ConfigError(f"burst must be positive: {burst_bytes}")
        self.rate_mbps = rate_mbps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_ts: Optional[float] = None

    @property
    def rate_bytes_per_sec(self) -> float:
        return mbps_to_bytes_per_sec(self.rate_mbps)

    def _refill(self, ts: float) -> None:
        if self._last_ts is None:
            self._last_ts = ts
            return
        if ts < self._last_ts:
            raise ValidationError(
                f"time went backwards: {ts} < {self._last_ts}")
        elapsed = ts - self._last_ts
        self._tokens = min(self.burst_bytes,
                           self._tokens + elapsed * self.rate_bytes_per_sec)
        self._last_ts = ts

    def tokens_at(self, ts: float) -> float:
        """Tokens available at *ts* (advances internal clock)."""
        self._refill(ts)
        return self._tokens

    def consume(self, n_bytes: float, ts: float) -> float:
        """Send *n_bytes* starting at *ts*; return the completion time.

        The bucket goes negative while a backlog drains, which models a
        queue in front of the shaper.
        """
        if n_bytes < 0:
            raise ValidationError(f"n_bytes must be >= 0, got {n_bytes}")
        self._refill(ts)
        self._tokens -= n_bytes
        if self._tokens >= 0:
            return ts
        deficit = -self._tokens
        return ts + deficit / self.rate_bytes_per_sec

    def effective_rate_mbps(self, demand_mbps: float) -> float:
        """Steady-state rate for sustained demand (min of demand, rate)."""
        if demand_mbps < 0:
            raise ValidationError(f"demand must be >= 0, got {demand_mbps}")
        return min(demand_mbps, self.rate_mbps)


@dataclass
class NetworkInterface:
    """A VM's NIC: physical attachment plus per-direction shapers.

    ``host_pop_id`` is the host node in the topology; ``ip`` its
    address.  Shapers are optional (``None`` means line rate, bounded
    only by the machine type's egress cap).
    """

    ip: int
    host_pop_id: int
    attach_link_id: int
    egress_shaper: Optional[TokenBucket] = None
    ingress_shaper: Optional[TokenBucket] = None

    def apply_tc(self, ingress_mbps: Optional[float],
                 egress_mbps: Optional[float]) -> None:
        """Install/replace shapers, as ``tc qdisc replace`` would."""
        self.ingress_shaper = (TokenBucket(ingress_mbps)
                               if ingress_mbps is not None else None)
        self.egress_shaper = (TokenBucket(egress_mbps)
                              if egress_mbps is not None else None)

    def ingress_cap_mbps(self) -> float:
        return self.ingress_shaper.rate_mbps if self.ingress_shaper else float("inf")

    def egress_cap_mbps(self) -> float:
        return self.egress_shaper.rate_mbps if self.egress_shaper else float("inf")
