"""The cloud platform facade: orchestration API plus tier routing.

:class:`CloudPlatform` owns the simulated cloud side of the world: it
binds a generated Internet to one provider's region catalog, creates
and terminates VMs (attaching them as hosts in the topology), provides
buckets, bills usage at the provider's rates, and - crucially for the
experiments - computes tier-correct routes between a VM and any
destination.  The tier -> (graph, potato policy) mapping is the
provider's :attr:`~repro.cloud.providers.base.CloudProvider.tier_table`
(see :mod:`repro.cloud.providers.gcp` for the paper's table).
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Tuple, Union

from .. import obs
from ..errors import CloudError, QuotaExceededError
from ..netsim.generator import GeneratedInternet
from ..netsim.linkstate import LinkStateEvaluator
from ..netsim.pathmodel import PathPerformanceModel
from ..netsim.routing import Route, Router
from ..netsim.topology import PoP
from ..units import gbps
from .billing import CostTracker
from .nic import NetworkInterface
from .providers import CloudProvider, get_provider
from .storage import StorageService
from .tiers import Direction
from .vm import VirtualMachine, VMStatus

__all__ = ["Direction", "CloudPlatform"]


class CloudPlatform:
    """One simulated cloud provider bound to one generated Internet."""

    #: Default per-region VM quota (matches a modest real project).
    DEFAULT_VM_QUOTA = 24

    def __init__(self, internet: GeneratedInternet,
                 cost_tracker: Optional[CostTracker] = None,
                 vm_quota_per_region: int = DEFAULT_VM_QUOTA,
                 provider: Optional[Union[str, CloudProvider]] = None,
                 cloud_asn: Optional[int] = None) -> None:
        """Bind *provider* (default: GCP) to *internet*.

        *cloud_asn* is the ASN of this provider's WAN inside the
        generated topology; it defaults to the Internet's primary cloud
        ASN, which is correct for GCP.  Non-GCP providers pass the ASN
        their WAN was grown under (see
        :meth:`~repro.netsim.generator.TopologyGenerator.add_cloud_wan`).
        """
        self.provider = get_provider(provider)
        self.internet = internet
        self.topology = internet.topology
        self.cloud_asn = (internet.cloud_asn if cloud_asn is None
                          else cloud_asn)
        self.router = Router(self.topology, cloud_asn=self.cloud_asn)
        self.evaluator = LinkStateEvaluator(internet.utilization)
        self.path_model = PathPerformanceModel(self.topology, self.evaluator)
        self.costs = cost_tracker or CostTracker(
            prices=self.provider.price_book)
        self.storage = StorageService(self.costs)
        self._vm_quota = vm_quota_per_region
        self._vms: Dict[str, VirtualMachine] = {}
        self._vm_counter = itertools.count(1)
        self._route_cache: Dict[Tuple[int, int, Direction, enum.Enum, int],
                                Route] = {}

    # ------------------------------------------------------------------
    # placement helpers

    def region_pop(self, region_name: str) -> PoP:
        """The cloud WAN PoP hosting a region's datacenter."""
        region = self.provider.region(region_name)
        pop = self.topology.pop_of_as_in_city(self.cloud_asn, region.city_key)
        if pop is None:
            raise CloudError(
                f"region {region_name} city {region.city_key!r} has no "
                f"cloud PoP in this topology")
        return pop

    def available_regions(self) -> List[str]:
        """Regions whose metro exists in the generated topology."""
        out = []
        for name, region in self.provider.regions.items():
            if self.topology.pop_of_as_in_city(self.cloud_asn,
                                               region.city_key) is not None:
                out.append(name)
        return sorted(out)

    # ------------------------------------------------------------------
    # VM lifecycle

    def create_vm(self, region_name: str, machine_type: str,
                  tier: enum.Enum, ts: float,
                  zone_suffix: Optional[str] = None,
                  name: Optional[str] = None,
                  inherit_attachment_from: Optional[VirtualMachine] = None
                  ) -> VirtualMachine:
        """Provision a VM and attach it to the region's PoP.

        *inherit_attachment_from* re-provisions onto a stopped VM's
        physical slot: the new VM reuses that VM's zone, host node, IP,
        and LAN attach link instead of allocating fresh ones.  This is
        how replacements stay deterministic regardless of the order in
        which failures are recovered (topology ids never depend on the
        recovery schedule), and it keeps the route cache valid as-is.
        """
        with obs.span("cloud.create_vm", layer="cloud", sim_ts=ts,
                      region=region_name, machine_type=machine_type,
                      tier=tier.value) as sp:
            vm = self._create_vm(region_name, machine_type, tier, ts,
                                 zone_suffix, name, inherit_attachment_from)
            sp.annotate(vm=vm.name)
        obs.inc("cloud.vms_created")
        return vm

    def _create_vm(self, region_name: str, machine_type: str,
                   tier: enum.Enum, ts: float,
                   zone_suffix: Optional[str],
                   name: Optional[str],
                   donor: Optional[VirtualMachine] = None) -> VirtualMachine:
        region = self.provider.region(region_name)
        running = [v for v in self._vms.values()
                   if v.region_name == region_name and v.is_running]
        if len(running) >= self._vm_quota:
            raise QuotaExceededError(
                f"region {region_name} is at its quota of "
                f"{self._vm_quota} running VMs")
        mtype = self.provider.machine_type(machine_type)
        if donor is not None:
            if donor.is_running:
                raise CloudError(
                    f"cannot inherit the attachment of running VM "
                    f"{donor.name!r}")
            if donor.region_name != region_name:
                raise CloudError(
                    f"attachment donor {donor.name!r} is in "
                    f"{donor.region_name}, not {region_name}")
            zone = donor.zone
            # Fresh NIC object (shapers are per-VM state) on the same
            # physical attachment: host node, IP, and LAN link.
            nic = NetworkInterface(ip=donor.nic.ip,
                                   host_pop_id=donor.nic.host_pop_id,
                                   attach_link_id=donor.nic.attach_link_id)
        else:
            if zone_suffix is None:
                # Spread across zones round-robin, like the paper's
                # availability-zone load balancing.
                suffix = region.zone_suffixes[
                    len(running) % len(region.zone_suffixes)]
            else:
                suffix = zone_suffix
            zone = region.zone(suffix)

            attach_pop = self.region_pop(region_name)
            alloc = self.internet.infra_allocators[self.cloud_asn]
            vm_ip = alloc.allocate_host()
            host = self.topology.add_host(self.cloud_asn, attach_pop.pop_id,
                                          vm_ip, capacity_mbps=gbps(10.0),
                                          delay_ms=0.05)
            # Cached intra-AS tables predate the new leaf node.
            self.router.invalidate_intra_cache(self.cloud_asn)
            attach_link = self.topology.links_of_pop(host.pop_id)[0]
            nic = NetworkInterface(ip=vm_ip, host_pop_id=host.pop_id,
                                   attach_link_id=attach_link.link_id)
        vm_name = name or f"clasp-{region_name}-{next(self._vm_counter):03d}"
        if vm_name in self._vms:
            raise CloudError(f"VM name {vm_name!r} already in use")
        vm = VirtualMachine(name=vm_name, zone=zone, machine_type=mtype,
                            tier=tier, nic=nic, created_ts=ts)
        self._vms[vm_name] = vm
        return vm

    def terminate_vm(self, name: str, ts: float) -> None:
        vm = self.get_vm(name)
        if not vm.is_running:
            raise CloudError(f"VM {name} is not running")
        vm.status = VMStatus.TERMINATED
        vm.terminated_ts = ts

    def preempt_vm(self, name: str, ts: float) -> None:
        """The provider reclaims a running VM (spot/maintenance event).

        The VM stops billing and serving work; callers recover by
        provisioning a replacement via
        :meth:`~repro.core.orchestrator.Orchestrator.replace_vm`.
        """
        vm = self.get_vm(name)
        if not vm.is_running:
            raise CloudError(f"VM {name} is not running")
        vm.status = VMStatus.PREEMPTED
        vm.terminated_ts = ts

    def get_vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise CloudError(f"unknown VM {name!r}") from None

    def vms(self, region_name: Optional[str] = None,
            running_only: bool = True) -> List[VirtualMachine]:
        out = [v for v in self._vms.values()
               if (region_name is None or v.region_name == region_name)
               and (not running_only or v.is_running)]
        return sorted(out, key=lambda v: v.name)

    def charge_vm_uptime(self, hours: float) -> float:
        """Bill *hours* of uptime for every running VM; returns USD."""
        total = 0.0
        for vm in self._vms.values():
            if vm.is_running:
                total += self.costs.charge_vm_hours(
                    vm.machine_type.hourly_usd, hours)
        return total

    # ------------------------------------------------------------------
    # tier routing

    def route(self, vm: VirtualMachine, remote_pop_id: int,
              direction: Direction, flow_id: int = 0) -> Route:
        """Tier-correct route between a VM and a remote host PoP.

        For :data:`Direction.EGRESS` the route runs VM -> remote; for
        :data:`Direction.INGRESS` it runs remote -> VM.  Routes are
        cached per (endpoints, direction, tier, flow).
        """
        key = (vm.nic.host_pop_id, remote_pop_id, direction, vm.tier, flow_id)
        cached = self._route_cache.get(key)
        if cached is not None:
            obs.inc("cloud.route.cache_hits")
            return cached
        obs.inc("cloud.route.cache_misses")
        mode, first_pol, last_pol = self.provider.tier_route(direction,
                                                             vm.tier)
        if direction is Direction.EGRESS:
            src, dst = vm.nic.host_pop_id, remote_pop_id
        else:
            src, dst = remote_pop_id, vm.nic.host_pop_id
        route = self.router.route(src, dst, mode=mode,
                                  first_as_policy=first_pol,
                                  last_as_policy=last_pol,
                                  flow_id=flow_id)
        self._route_cache[key] = route
        return route

    def route_pair(self, vm: VirtualMachine, remote_pop_id: int,
                   data_direction: Direction,
                   flow_id: int = 0) -> Tuple[Route, Route]:
        """(data route, reverse/ACK route) for one transfer."""
        reverse_dir = (Direction.INGRESS if data_direction is Direction.EGRESS
                       else Direction.EGRESS)
        return (self.route(vm, remote_pop_id, data_direction, flow_id),
                self.route(vm, remote_pop_id, reverse_dir, flow_id))
