"""Machine type catalog.

The paper used ``n1-standard-2`` / ``n2-standard-2`` (2 vCPUs, 7-8 GB
of memory, up to 10 Gbps egress) and verified the type had enough CPU
headroom to drive a speed test without throttling the network.  The
catalog models vCPUs, memory, the platform egress cap, and a rough
"speed test CPU cost" so under-provisioned types visibly degrade
measured throughput (as a real headless browser on a shared core
would).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import CloudError, ValidationError
from ..units import gbps

__all__ = ["MachineType", "MACHINE_TYPES", "machine_type_by_name"]


@dataclass(frozen=True)
class MachineType:
    """A VM shape offered by the platform."""

    name: str
    vcpus: int
    memory_gb: float
    egress_cap_mbps: float
    hourly_usd: float

    #: Throughput (Mbps) one vCPU can push through a browser-based
    #: speed test before the CPU becomes the bottleneck.
    CPU_MBPS_PER_VCPU = 1800.0

    @property
    def cpu_throughput_cap_mbps(self) -> float:
        """Max speed-test throughput before CPU starves the test."""
        return self.vcpus * self.CPU_MBPS_PER_VCPU

    def cpu_utilization_during_test(self, rate_mbps: float) -> float:
        """Fraction of total CPU a test at *rate_mbps* consumes."""
        if rate_mbps < 0:
            raise ValidationError(f"rate must be >= 0, got {rate_mbps}")
        return min(1.0, rate_mbps / self.cpu_throughput_cap_mbps)


MACHINE_TYPES: Dict[str, MachineType] = {
    m.name: m for m in [
        MachineType("e2-small", 2, 2.0, gbps(1.0), 0.0168),
        MachineType("e2-medium", 2, 4.0, gbps(2.0), 0.0335),
        MachineType("n1-standard-1", 1, 3.75, gbps(2.0), 0.0475),
        MachineType("n1-standard-2", 2, 7.5, gbps(10.0), 0.0950),
        MachineType("n2-standard-2", 2, 8.0, gbps(10.0), 0.0971),
        MachineType("n1-standard-4", 4, 15.0, gbps(10.0), 0.1900),
        MachineType("n2-standard-4", 4, 16.0, gbps(10.0), 0.1942),
    ]
}


def machine_type_by_name(name: str) -> MachineType:
    """Look up a machine type, raising :class:`CloudError` if unknown."""
    try:
        return MACHINE_TYPES[name]
    except KeyError:
        raise CloudError(f"unknown machine type {name!r}") from None
