"""The GCP provider: the paper's platform, and the package default.

Everything here simply re-packages the catalogs the package has always
shipped (:data:`repro.cloud.regions.REGIONS`,
:data:`repro.cloud.machinetypes.MACHINE_TYPES`,
:class:`repro.cloud.tiers.NetworkTier`) plus the tier routing table
that used to be a private dict in ``cloud/api.py``.  A campaign run
with ``provider="gcp"`` is byte-identical to one run before the
provider abstraction existed - the golden-digest tests pin this.

Tier semantics (paper section 2):

==============  =========  ==============  =====================
direction       tier       graph           potato policy
==============  =========  ==============  =====================
egress (VM->X)  premium    full peering    cold out of the cloud
egress (VM->X)  standard   transit-only    hot (exit at region)
ingress (X->VM) premium    full peering    hot (enter near src)
ingress (X->VM) standard   transit-only    cold into the cloud
==============  =========  ==============  =====================
"""

from __future__ import annotations

from ...netsim.routing import GraphMode, TierPolicy
from ..billing import PriceBook
from ..machinetypes import MACHINE_TYPES
from ..regions import REGIONS
from ..tiers import Direction, NetworkTier
from .base import CloudProvider

__all__ = ["GCP"]

GCP = CloudProvider(
    name="gcp",
    display_name="Google Cloud Platform",
    regions=REGIONS,
    machine_types=MACHINE_TYPES,
    tiers=(NetworkTier.PREMIUM, NetworkTier.STANDARD),
    tier_table={
        (Direction.EGRESS, NetworkTier.PREMIUM):
            (GraphMode.FULL, TierPolicy.COLD_POTATO, TierPolicy.HOT_POTATO),
        (Direction.EGRESS, NetworkTier.STANDARD):
            (GraphMode.STANDARD, TierPolicy.HOT_POTATO,
             TierPolicy.HOT_POTATO),
        (Direction.INGRESS, NetworkTier.PREMIUM):
            (GraphMode.FULL, TierPolicy.HOT_POTATO, TierPolicy.HOT_POTATO),
        (Direction.INGRESS, NetworkTier.STANDARD):
            (GraphMode.STANDARD, TierPolicy.HOT_POTATO,
             TierPolicy.COLD_POTATO),
    },
    price_book=PriceBook(),
    default_region="us-west1",
    default_machine_type="n1-standard-2",
    probe_machine_type="e2-small",
    measurement_tier=NetworkTier.PREMIUM,
    differential_tiers=(NetworkTier.PREMIUM, NetworkTier.STANDARD),
    wan=None,
)
