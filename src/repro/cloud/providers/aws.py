"""An AWS-like provider: hot-potato backbone, one "accelerated" tier.

The WAN personality is the inverse of GCP's: by default traffic leaves
the cloud at the nearest transit interconnection (hot potato both
ways), and there is no cheap transit-only tier because that *is* the
default.  The premium product is instead an accelerated tier (modeled
on Global Accelerator): egress rides the backbone cold-potato to the
interconnection nearest the destination, which is exactly GCP
premium's egress personality.  Ingress acceleration still enters where
the Internet hands the packet over - the provider cannot choose the
entry point of traffic it does not yet carry - so the accelerated
ingress row equals the standard one; what the product buys is the
egress leg plus the pricier rate card.

The tier graph is :data:`GraphMode.FULL` in every row: this WAN buys
transit only (no settlement-free peering fabric), so there is no
peering-free "standard graph" to fall back to - both tiers see the
same interdomain edges and differ purely in potato policy and price.

The WAN itself does not exist in a generated Internet; ``wan``
describes how to grow it (8 metros, 2 transit providers).
"""

from __future__ import annotations

from ...netsim.routing import GraphMode, TierPolicy
from ...units import gbps
from ..billing import PriceBook
from ..machinetypes import MachineType
from ..regions import Region
from ..tiers import Direction
from .base import CloudProvider, WanConfig
from .tiervocab import AwsTier

__all__ = ["AWS"]

_REGIONS = {
    region.name: region
    for region in (
        Region("us-east-1", "Ashburn, US"),
        Region("us-east-2", "Columbus, US"),
        Region("us-west-1", "San Francisco, US"),
        Region("us-west-2", "Portland, US"),
        Region("eu-west-1", "Dublin, IE"),
        Region("eu-central-1", "Frankfurt, DE"),
        Region("ap-southeast-1", "Singapore, SG"),
        Region("ap-northeast-1", "Tokyo, JP"),
    )
}

_MACHINE_TYPES = {
    mtype.name: mtype
    for mtype in (
        MachineType("t3.small", vcpus=2, memory_gb=2.0,
                    egress_cap_mbps=gbps(5.0), hourly_usd=0.0208),
        MachineType("m5.large", vcpus=2, memory_gb=8.0,
                    egress_cap_mbps=gbps(10.0), hourly_usd=0.0960),
        MachineType("m5.xlarge", vcpus=4, memory_gb=16.0,
                    egress_cap_mbps=gbps(10.0), hourly_usd=0.1920),
        MachineType("c5.large", vcpus=2, memory_gb=4.0,
                    egress_cap_mbps=gbps(10.0), hourly_usd=0.0850),
    )
}

AWS = CloudProvider(
    name="aws",
    display_name="Amazon Web Services (modeled)",
    regions=_REGIONS,
    machine_types=_MACHINE_TYPES,
    tiers=(AwsTier.STANDARD, AwsTier.ACCELERATED),
    tier_table={
        (Direction.EGRESS, AwsTier.STANDARD):
            (GraphMode.FULL, TierPolicy.HOT_POTATO, TierPolicy.HOT_POTATO),
        (Direction.INGRESS, AwsTier.STANDARD):
            (GraphMode.FULL, TierPolicy.HOT_POTATO, TierPolicy.HOT_POTATO),
        (Direction.EGRESS, AwsTier.ACCELERATED):
            (GraphMode.FULL, TierPolicy.COLD_POTATO, TierPolicy.HOT_POTATO),
        (Direction.INGRESS, AwsTier.ACCELERATED):
            (GraphMode.FULL, TierPolicy.HOT_POTATO, TierPolicy.HOT_POTATO),
    },
    price_book=PriceBook(
        egress_per_gb={
            AwsTier.STANDARD.value: 0.09,
            AwsTier.ACCELERATED.value: 0.115,
        },
        storage_per_gb_month=0.023,
        intra_region_per_gb=0.01,
    ),
    default_region="us-east-1",
    default_machine_type="m5.large",
    probe_machine_type="t3.small",
    measurement_tier=AwsTier.STANDARD,
    differential_tiers=(AwsTier.ACCELERATED, AwsTier.STANDARD),
    wan=WanConfig(
        asn=16509,
        as_name="AmazonLike",
        city_keys=tuple(r.city_key for r in _REGIONS.values()),
        backbone_gbps=(200.0, 800.0),
        n_transits=2,
    ),
)
