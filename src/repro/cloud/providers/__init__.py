"""Provider registry: every cloud the simulation can speak for.

The registry is built once at import time and frozen behind a
:class:`types.MappingProxyType`, so it is shard-safe by construction
(RPR009's import-time exemption applies - nothing ever mutates it) and
needs no ``SHARD_SAFE_GLOBALS`` allowlist entry.

``get_provider`` is the one resolution point the rest of the package
uses: it accepts a name, an existing :class:`CloudProvider`, or
``None`` (meaning the GCP default), so call sites can thread a
``provider=`` argument through without caring which form they got.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping, Optional, Union

from ...errors import ProviderLookupError
from .aws import AWS
from .base import CloudProvider, TierRoute, WanConfig
from .gcp import GCP
from .openstack import OPENSTACK
from .tiervocab import AwsTier, OpenStackTier

__all__ = ["PROVIDERS", "get_provider", "resolve_tier",
           "CloudProvider", "TierRoute", "WanConfig",
           "GCP", "AWS", "OPENSTACK", "AwsTier", "OpenStackTier"]

#: name -> provider, frozen at import time.  GCP first: it is the
#: default, and the fallback namespace for tier-value resolution.
PROVIDERS: Mapping[str, CloudProvider] = MappingProxyType({
    provider.name: provider for provider in (GCP, AWS, OPENSTACK)
})


def get_provider(
        provider: Optional[Union[str, CloudProvider]] = None
) -> CloudProvider:
    """Resolve a provider name (or pass through an instance).

    ``None`` resolves to GCP, the paper's platform.
    """
    if provider is None:
        return GCP
    if isinstance(provider, CloudProvider):
        return provider
    try:
        return PROVIDERS[provider]
    except KeyError:
        raise ProviderLookupError(
            f"unknown cloud provider {provider!r}; registered: "
            f"{', '.join(sorted(PROVIDERS))}") from None


def resolve_tier(value: str, provider: Optional[str] = None):
    """Tier enum member for a serialized tier value.

    With *provider* given, the lookup is exact within that provider's
    vocabulary.  Without it (legacy datasets that predate the provider
    manifest key), GCP is tried first, then the other providers in
    registry order - so ``"standard"`` keeps meaning GCP standard tier
    for every dataset written before providers existed.
    """
    if provider is not None:
        return get_provider(provider).tier_by_value(value)
    for candidate in PROVIDERS.values():
        for tier in candidate.tiers:
            if tier.value == value:
                return tier
    raise ProviderLookupError(f"no registered provider has a network "
                              f"tier {value!r}")
