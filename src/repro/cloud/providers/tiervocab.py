"""Tier enums for the non-GCP providers.

These live in their own module (rather than inside each provider
definition) so code that only needs the vocabulary - the export
loader's tier resolver, tests, reports - can import it without
touching the provider catalogs.  GCP's :class:`NetworkTier` stays in
:mod:`repro.cloud.tiers` for backwards compatibility.
"""

from __future__ import annotations

import enum

__all__ = ["AwsTier", "OpenStackTier"]


class AwsTier(enum.Enum):
    """AWS-like tiers: the default path, plus an accelerated product."""

    STANDARD = "standard"
    ACCELERATED = "accelerated"

    @property
    def egress_price_tier(self) -> str:
        return self.value


class OpenStackTier(enum.Enum):
    """A private cloud has exactly one network: the datacenter fabric."""

    INTERNAL = "internal"

    @property
    def egress_price_tier(self) -> str:
        return self.value
