"""The provider interface: everything GCP-shaped, made pluggable.

A :class:`CloudProvider` owns the vocabulary the rest of the package
used to hardcode for GCP: the region catalog, machine types, the
network-tier enum, the tier -> ``(GraphMode, TierPolicy, TierPolicy)``
routing table, the billing rate card, and the defaults the orchestrator
and measurement tools reach for (default machine type, probe machine
type, measurement tier, differential tier pair).

Providers are pure data + lookup methods.  They may import ``netsim``
(for the routing vocabulary) and their ``cloud`` siblings, but never
``core`` or ``engine`` - the lint layering rules enforce this, so a
provider can be defined without dragging in the campaign machinery.

Providers whose WAN does not exist in a freshly generated Internet
(everything except GCP) carry a :class:`WanConfig` describing how to
grow one: which ASN, which metros, how much backbone, how many transit
providers.  :meth:`repro.netsim.generator.TopologyGenerator.add_cloud_wan`
consumes it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from ...errors import ConfigError, ProviderLookupError
from ...netsim.routing import GraphMode, TierPolicy
from ..billing import PriceBook
from ..machinetypes import MachineType
from ..regions import Region
from ..tiers import Direction

__all__ = ["TierRoute", "WanConfig", "CloudProvider"]

#: (graph mode, first-AS policy, last-AS policy) - one tier-table row.
TierRoute = Tuple[GraphMode, TierPolicy, TierPolicy]


@dataclass(frozen=True)
class WanConfig:
    """How to grow a provider's WAN into a generated Internet.

    ``city_keys`` lists the metros that get a PoP; a single entry makes
    a single-DC provider with no backbone at all.  ``n_transits`` is
    how many tier-1s the WAN buys transit from (every provider needs at
    least one to be reachable).
    """

    asn: int
    as_name: str
    city_keys: Tuple[str, ...]
    backbone_gbps: Tuple[float, float] = (100.0, 400.0)
    n_transits: int = 2
    transit_parallel: Tuple[int, int] = (2, 4)
    mesh_degree: int = 3


class CloudProvider:
    """One cloud provider's catalogs, tier semantics, and defaults.

    Instances are immutable after construction: the mappings are frozen
    behind :class:`types.MappingProxyType` views, so the module-level
    provider registry is safe to share across shard workers.
    """

    def __init__(self, *, name: str, display_name: str,
                 regions: Mapping[str, Region],
                 machine_types: Mapping[str, MachineType],
                 tiers: Tuple[enum.Enum, ...],
                 tier_table: Mapping[Tuple[Direction, enum.Enum], TierRoute],
                 price_book: PriceBook,
                 default_region: str,
                 default_machine_type: str,
                 probe_machine_type: str,
                 measurement_tier: enum.Enum,
                 differential_tiers: Optional[Tuple[enum.Enum, enum.Enum]],
                 wan: Optional[WanConfig] = None) -> None:
        self.name = name
        self.display_name = display_name
        self.regions: Mapping[str, Region] = MappingProxyType(dict(regions))
        self.machine_types: Mapping[str, MachineType] = MappingProxyType(
            dict(machine_types))
        self.tiers = tuple(tiers)
        self.tier_table: Mapping[Tuple[Direction, enum.Enum], TierRoute] = (
            MappingProxyType(dict(tier_table)))
        self.price_book = price_book
        self.default_region = default_region
        self.default_machine_type = default_machine_type
        self.probe_machine_type = probe_machine_type
        self.measurement_tier = measurement_tier
        self.differential_tiers = differential_tiers
        self.wan = wan
        self._validate()

    def _validate(self) -> None:
        if not self.tiers:
            raise ConfigError(f"provider {self.name!r} declares no tiers")
        for direction in Direction:
            for tier in self.tiers:
                if (direction, tier) not in self.tier_table:
                    raise ConfigError(
                        f"provider {self.name!r} tier table is missing "
                        f"({direction.value}, {tier.value})")
        for label, attr in (("default region", self.default_region),):
            if attr not in self.regions:
                raise ConfigError(
                    f"provider {self.name!r} {label} {attr!r} is not in "
                    f"its region catalog")
        for label, mname in (("default", self.default_machine_type),
                             ("probe", self.probe_machine_type)):
            if mname not in self.machine_types:
                raise ConfigError(
                    f"provider {self.name!r} {label} machine type "
                    f"{mname!r} is not in its catalog")
        tier_set = set(self.tiers)
        if self.measurement_tier not in tier_set:
            raise ConfigError(
                f"provider {self.name!r} measurement tier is not one of "
                f"its tiers")
        if self.differential_tiers is not None:
            a, b = self.differential_tiers
            if a not in tier_set or b not in tier_set or a is b:
                raise ConfigError(
                    f"provider {self.name!r} differential tiers must be "
                    f"two distinct members of its tier enum")
        values = [t.value for t in self.tiers]
        if len(set(values)) != len(values):
            raise ConfigError(
                f"provider {self.name!r} tier values are not unique")

    # ------------------------------------------------------------------
    # lookups (all raise ProviderLookupError, a CloudError that is also
    # a ValidationError, on unknown names)

    def region(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise ProviderLookupError(
                f"unknown {self.name} region {name!r}") from None

    def machine_type(self, name: str) -> MachineType:
        try:
            return self.machine_types[name]
        except KeyError:
            raise ProviderLookupError(
                f"unknown {self.name} machine type {name!r}") from None

    def tier_route(self, direction: Direction, tier: enum.Enum) -> TierRoute:
        try:
            return self.tier_table[(direction, tier)]
        except KeyError:
            raise ProviderLookupError(
                f"provider {self.name} has no tier-table entry for "
                f"({direction.value}, {getattr(tier, 'value', tier)!r})"
            ) from None

    def tier_by_value(self, value: str) -> enum.Enum:
        for tier in self.tiers:
            if tier.value == value:
                return tier
        raise ProviderLookupError(
            f"unknown {self.name} network tier {value!r}")

    # ------------------------------------------------------------------

    def bucket_name(self, region_name: str) -> str:
        """Results-bucket name for a region (provider storage endpoint)."""
        return f"clasp-results-{region_name}"

    def region_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.regions))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CloudProvider(name={self.name!r}, "
                f"regions={len(self.regions)}, tiers={len(self.tiers)})")
