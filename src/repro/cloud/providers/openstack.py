"""An OpenStack-like private cloud: one datacenter, no WAN, flat bill.

The interesting degenerate case for the abstraction: a single region
backed by a single PoP, a one-member tier enum whose table rows are
all identical (there is no backbone to steer traffic onto, so potato
policy is moot - hot potato everywhere), and a rate card with zero
egress pricing because a private cloud bills by capacity, not by the
byte.  The flat cost shows up purely as VM hours on beefier-than-GCP
flavors.

No differential tier pair exists (``differential_tiers=None``), so
differential deployments raise ``SchedulingError`` - the provider
abstraction makes "this workload needs two tiers" an explicit,
testable property instead of an implicit GCP assumption.

The DC still buys transit from one tier-1 (``n_transits=1``): private
clouds are reachable, they just do not run a WAN.
"""

from __future__ import annotations

from ...netsim.routing import GraphMode, TierPolicy
from ...units import gbps
from ..billing import PriceBook
from ..machinetypes import MachineType
from ..regions import Region
from ..tiers import Direction
from .base import CloudProvider, WanConfig
from .tiervocab import OpenStackTier

__all__ = ["OPENSTACK"]

_REGIONS = {
    "dc-1": Region("dc-1", "Chicago, US", zone_suffixes=("a",)),
}

_MACHINE_TYPES = {
    mtype.name: mtype
    for mtype in (
        MachineType("m1.small", vcpus=2, memory_gb=4.0,
                    egress_cap_mbps=gbps(1.0), hourly_usd=0.0500),
        MachineType("m1.medium", vcpus=4, memory_gb=8.0,
                    egress_cap_mbps=gbps(10.0), hourly_usd=0.1000),
        MachineType("m1.large", vcpus=8, memory_gb=16.0,
                    egress_cap_mbps=gbps(10.0), hourly_usd=0.2000),
    )
}

OPENSTACK = CloudProvider(
    name="openstack",
    display_name="OpenStack private cloud (modeled)",
    regions=_REGIONS,
    machine_types=_MACHINE_TYPES,
    tiers=(OpenStackTier.INTERNAL,),
    tier_table={
        (Direction.EGRESS, OpenStackTier.INTERNAL):
            (GraphMode.FULL, TierPolicy.HOT_POTATO, TierPolicy.HOT_POTATO),
        (Direction.INGRESS, OpenStackTier.INTERNAL):
            (GraphMode.FULL, TierPolicy.HOT_POTATO, TierPolicy.HOT_POTATO),
    },
    price_book=PriceBook(
        egress_per_gb={OpenStackTier.INTERNAL.value: 0.0},
        storage_per_gb_month=0.0,
        intra_region_per_gb=0.0,
    ),
    default_region="dc-1",
    default_machine_type="m1.medium",
    probe_machine_type="m1.small",
    measurement_tier=OpenStackTier.INTERNAL,
    differential_tiers=None,
    wan=WanConfig(
        asn=64512,
        as_name="PrivateDC",
        city_keys=("Chicago, US",),
        backbone_gbps=(40.0, 100.0),
        n_transits=1,
    ),
)
