"""Metric history: live state snapshotted into the time-series store.

The rule engine never inspects the detector or the registry directly;
everything it can judge is first written to a
:class:`~repro.core.tsdb.TimeSeriesDB` on *simulated* time, so rules
query windows instead of instants and the whole alerting plane stays
replayable.  Three tables:

``throughput``
    one row per completed speed test, tagged
    ``(provider, region, tier)``.
``vh_events``
    one row per sealed ``V_H`` congestion event, same tags - this is
    the series SLO burn-rate rules meter.
``metrics``
    periodic snapshots of the live :class:`MetricsRegistry`, tagged
    ``(metric, provider, region, tier)``; histograms expand to
    ``<name>.count`` / ``<name>.mean`` / ``<name>.p99`` rows.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from ..core.tsdb import TimeSeriesDB
from ..errors import TSDBError
from ..obs.metrics import snapshot_percentile

__all__ = ["MetricHistory", "TABLES"]

#: ``(table name, tag names, field names)`` for every history table.
TABLES = (
    ("throughput", ("provider", "region", "tier"),
     ("download_mbps", "upload_mbps", "latency_ms")),
    ("vh_events", ("provider", "region", "tier"),
     ("v_h", "throughput_mbps")),
    ("metrics", ("metric", "provider", "region", "tier"), ("value",)),
)

#: Tag value for registry snapshot rows that have no natural scope.
UNSCOPED = "*"


class MetricHistory:
    """Windowed queries over the collector's history tables."""

    def __init__(self, db: Optional[TimeSeriesDB] = None) -> None:
        self.db = db if db is not None else TimeSeriesDB()
        for name, tag_names, field_names in TABLES:
            if name not in self.db:
                self.db.create_table(name, tag_names, field_names)

    # ------------------------------------------------------------------
    # writes

    def record_test(self, provider: str, record: Any) -> None:
        """One completed speed test measurement."""
        self.db.table("throughput").append(
            record.ts, (provider, record.region, record.tier.value),
            (record.download_mbps, record.upload_mbps,
             record.latency_ms))

    def record_vh_event(self, provider: str, region: str, tier: str,
                        event: Any) -> None:
        """One sealed V_H congestion event."""
        self.db.table("vh_events").append(
            event.ts, (provider, region, tier),
            (event.v_h, event.throughput_mbps))

    def snapshot_registry(self, ts: float,
                          snapshot: Mapping[str, Any],
                          provider: str = UNSCOPED) -> int:
        """Write one registry snapshot as ``metrics`` rows at *ts*.

        Counters and gauges land as one row each; histograms expand to
        count/mean/p99 rows.  Returns the number of rows written.
        """
        table = self.db.table("metrics")
        scope = (provider, UNSCOPED, UNSCOPED)
        n = 0
        for name, value in snapshot.get("counters", {}).items():
            table.append(ts, (name,) + scope, (float(value),))
            n += 1
        for name, value in snapshot.get("gauges", {}).items():
            table.append(ts, (name,) + scope, (float(value),))
            n += 1
        for name, hist in snapshot.get("histograms", {}).items():
            table.append(ts, (name + ".count",) + scope,
                         (float(hist["count"]),))
            table.append(ts, (name + ".mean",) + scope,
                         (float(hist["mean"]),))
            table.append(ts, (name + ".p99",) + scope,
                         (snapshot_percentile(hist, 0.99),))
            n += 3
        return n

    # ------------------------------------------------------------------
    # windowed reads (what rules evaluate against)

    def window_values(self, table_name: str, field: str,
                      start_ts: float, end_ts: float,
                      **tags: str) -> np.ndarray:
        """Field values with ``start_ts <= ts < end_ts``, all series.

        Series are visited in sorted tag order and concatenated, so
        the result is deterministic for a given history.
        """
        table = self.db.table(table_name)
        if field not in table.field_names:
            raise TSDBError(
                f"table {table_name!r} has no field {field!r}")
        chunks = []
        for _key, series in table.select(**tags):
            ts = series["ts"]
            lo = int(np.searchsorted(ts, start_ts, side="left"))
            hi = int(np.searchsorted(ts, end_ts, side="left"))
            if hi > lo:
                chunks.append(series[field][lo:hi])
        if not chunks:
            return np.empty(0, dtype=float)
        return np.concatenate(chunks)

    def window_count(self, table_name: str, start_ts: float,
                     end_ts: float, **tags: str) -> int:
        """Number of rows with ``start_ts <= ts < end_ts``."""
        table = self.db.table(table_name)
        total = 0
        for _key, series in table.select(**tags):
            ts = series["ts"]
            total += int(np.searchsorted(ts, end_ts, side="left")
                         - np.searchsorted(ts, start_ts, side="left"))
        return total

    def last_ts(self, table_name: str, **tags: str) -> Optional[float]:
        """Newest row timestamp in scope, or ``None`` when empty."""
        table = self.db.table(table_name)
        newest: Optional[float] = None
        for _key, series in table.select(**tags):
            ts = series["ts"]
            if len(ts) and (newest is None or float(ts[-1]) > newest):
                newest = float(ts[-1])
        return newest
