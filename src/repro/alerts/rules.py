"""Declarative alerting rules over the daemon's metric history.

A rule is a frozen dataclass: what to watch (a history table, a scope
of exact tag matches), how to judge it (a window aggregate, a
staleness horizon, or an SLO burn rate), and how urgently
(*severity*, *for_intervals*).  The taxonomy mirrors
:mod:`repro.engine.events`: every concrete rule class carries a
literal ``kind`` ClassVar, is registered in :data:`RULE_KINDS`, and
must be handled by a ``RuleEvaluator._eval_<kind>`` method - the
cross-file lint rule RPR013 keeps all three in sync.

Rules files are plain JSON - either a list of rule objects or
``{"rules": [...]}`` - each object a flat dict whose ``kind`` picks
the class and whose remaining keys are its fields.  Parsing is strict:
unknown kinds, unknown fields, and invalid values all raise
:class:`~repro.errors.ConfigError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import (Any, ClassVar, Dict, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..errors import ConfigError

__all__ = [
    "RULE_KINDS",
    "AbsenceRule",
    "AlertRule",
    "BurnRateRule",
    "ThresholdRule",
    "default_rules",
    "load_rules",
    "parse_rule",
    "parse_rules",
]

_SEVERITIES = ("page", "ticket", "info")
_AGGREGATES = ("p50", "p90", "p99", "mean", "min", "max", "count")
_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class AlertRule:
    """Base of every alerting rule.

    The optional *provider*/*region*/*tier* fields scope the rule to
    exact tag matches in the history tables (``None`` matches every
    value); *for_intervals* is the number of consecutive breached
    evaluations required before the rule fires (Prometheus ``for:``).
    """

    kind: ClassVar[str] = "rule"

    name: str
    severity: str = "page"
    provider: Optional[str] = None
    region: Optional[str] = None
    tier: Optional[str] = None
    for_intervals: int = 1

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigError("alert rule needs a non-empty name")
        if self.severity not in _SEVERITIES:
            raise ConfigError(
                f"rule {self.name!r}: severity must be one of "
                f"{_SEVERITIES}, got {self.severity!r}")
        if self.for_intervals < 1:
            raise ConfigError(
                f"rule {self.name!r}: for_intervals must be >= 1, "
                f"got {self.for_intervals}")

    def scope(self) -> Dict[str, str]:
        """Exact-match tag filters for history queries."""
        out: Dict[str, str] = {}
        for tag in ("provider", "region", "tier"):
            value = getattr(self, tag)
            if value is not None:
                out[tag] = value
        return out


@dataclass(frozen=True)
class ThresholdRule(AlertRule):
    """An aggregate over a history window compared to a constant.

    Breaches when ``agg(field values in the trailing window_hours)
    op value``; an empty window never breaches (use
    :class:`AbsenceRule` to catch missing data).
    """

    kind: ClassVar[str] = "threshold"

    table: str = "throughput"
    field: str = "download_mbps"
    agg: str = "p50"
    op: str = "<"
    value: float = 0.0
    window_hours: float = 6.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.agg not in _AGGREGATES:
            raise ConfigError(
                f"rule {self.name!r}: agg must be one of "
                f"{_AGGREGATES}, got {self.agg!r}")
        if self.op not in _OPS:
            raise ConfigError(
                f"rule {self.name!r}: op must be one of {_OPS}, "
                f"got {self.op!r}")
        if self.window_hours <= 0:
            raise ConfigError(
                f"rule {self.name!r}: window_hours must be > 0, "
                f"got {self.window_hours}")


@dataclass(frozen=True)
class AbsenceRule(AlertRule):
    """Staleness: no row in the scoped table for *stale_hours*.

    Breaches when the newest matching row (or, before any row exists,
    the collector's anchor time) is more than *stale_hours* behind the
    evaluation watermark.
    """

    kind: ClassVar[str] = "absence"

    table: str = "throughput"
    stale_hours: float = 3.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.stale_hours <= 0:
            raise ConfigError(
                f"rule {self.name!r}: stale_hours must be > 0, "
                f"got {self.stale_hours}")


@dataclass(frozen=True)
class BurnRateRule(AlertRule):
    """SLO burn rate: scoped event arrivals against an error budget.

    The budget allows *budget* events per *period_days*; the observed
    rate over the trailing *window_hours* is divided by the allowed
    rate, and the rule breaches when that ratio exceeds *max_burn*
    (1.0 = burning exactly on budget).
    """

    kind: ClassVar[str] = "burn-rate"

    table: str = "vh_events"
    budget: float = 10.0
    period_days: float = 7.0
    window_hours: float = 24.0
    max_burn: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        for attr in ("budget", "period_days", "window_hours",
                     "max_burn"):
            if getattr(self, attr) <= 0:
                raise ConfigError(
                    f"rule {self.name!r}: {attr} must be > 0, "
                    f"got {getattr(self, attr)}")

    def budget_rate(self) -> float:
        """Allowed events per hour."""
        return self.budget / (self.period_days * 24.0)


#: Every rule kind the evaluator handles, in taxonomy order.  RPR013
#: checks this registry against the classes above and the evaluator.
RULE_KINDS: Tuple[str, ...] = tuple(
    cls.kind for cls in (ThresholdRule, AbsenceRule, BurnRateRule))

_RULE_CLASSES: Dict[str, type] = {
    cls.kind: cls for cls in (ThresholdRule, AbsenceRule, BurnRateRule)}


def parse_rule(spec: Mapping[str, Any]) -> AlertRule:
    """Build one rule from a flat dict with a ``kind`` key."""
    if not isinstance(spec, Mapping):
        raise ConfigError(
            f"rule spec must be an object, got {type(spec).__name__}")
    data = dict(spec)
    kind = data.pop("kind", None)
    cls = _RULE_CLASSES.get(kind)
    if cls is None:
        raise ConfigError(
            f"unknown rule kind {kind!r}; known kinds: "
            f"{', '.join(RULE_KINDS)}")
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigError(
            f"rule {data.get('name', '?')!r}: unknown fields "
            f"{unknown} for kind {kind!r}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigError(f"invalid {kind!r} rule: {exc}") from None


def parse_rules(specs: Sequence[Mapping[str, Any]]
                ) -> Tuple[AlertRule, ...]:
    """Parse a list of rule specs; duplicate names raise."""
    rules = tuple(parse_rule(spec) for spec in specs)
    names = [rule.name for rule in rules]
    dupes = sorted({name for name in names if names.count(name) > 1})
    if dupes:
        raise ConfigError(f"duplicate rule names: {dupes}")
    return rules


def load_rules(path: Union[str, Path]) -> Tuple[AlertRule, ...]:
    """Load a JSON rules file (a list, or ``{"rules": [...]}``)."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read rules file {path}: {exc}"
                          ) from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"rules file {path} is not valid JSON: {exc}"
                          ) from None
    if isinstance(doc, Mapping):
        doc = doc.get("rules")
    if not isinstance(doc, list):
        raise ConfigError(
            f"rules file {path} must hold a JSON list of rules or "
            "an object with a 'rules' list")
    return parse_rules(doc)


def default_rules() -> Tuple[AlertRule, ...]:
    """The shipped rule set (mirrored in examples/rules_default.json).

    One rule per kind: a V_H burn-rate SLO (the paper's headline
    signal), a throughput floor, and a data-staleness guard.
    """
    return (
        BurnRateRule(name="vh-budget-burn", severity="page",
                     budget=6.0, period_days=7.0, window_hours=24.0,
                     max_burn=2.0),
        ThresholdRule(name="download-p50-floor", severity="ticket",
                      table="throughput", field="download_mbps",
                      agg="p50", op="<", value=50.0,
                      window_hours=6.0, for_intervals=3),
        AbsenceRule(name="no-measurements", severity="page",
                    table="throughput", stale_hours=3.0),
    )
