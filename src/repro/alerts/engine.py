"""The rule evaluator: a deterministic firing/resolved state machine.

Rules are evaluated on simulated time whenever the collector's
watermark crosses an evaluation boundary.  Each rule keeps a breach
streak; once the streak reaches ``for_intervals`` the rule transitions
to *firing* and appends a :class:`Notification`, and the first clean
evaluation afterwards transitions it back to *resolved* with a second
notification.  The log is append-only and every input is simulated
data, so the same seed + rules always produce the same bytes.

Evaluation dispatch mirrors :class:`~repro.engine.observers.Observer`:
rule kind ``"burn-rate"`` is handled by ``_eval_burn_rate`` and so on;
the cross-file lint rule RPR013 keeps the taxonomy, the
:data:`~repro.alerts.rules.RULE_KINDS` registry, and these handler
methods in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..units import HOUR
from .history import TABLES, MetricHistory
from .rules import AlertRule

__all__ = ["Notification", "RuleEvaluator"]


@dataclass(frozen=True)
class Notification:
    """One append-only log entry: a rule fired or resolved."""

    ts: float
    rule: str
    kind: str
    severity: str
    #: ``"firing"`` or ``"resolved"``.
    status: str
    #: The evaluated value that crossed (or cleared) the condition.
    value: float
    detail: str

    def payload(self) -> Dict[str, Any]:
        """Plain dict for the JSON-lines export."""
        return {"ts": self.ts, "rule": self.rule, "kind": self.kind,
                "severity": self.severity, "status": self.status,
                "value": self.value, "detail": self.detail}


class _RuleState:
    """Mutable per-rule evaluation state."""

    __slots__ = ("streak", "firing", "since_ts")

    def __init__(self) -> None:
        self.streak = 0
        self.firing = False
        self.since_ts: Optional[float] = None


class RuleEvaluator:
    """Evaluates a fixed rule set against a :class:`MetricHistory`.

    *start_ts* anchors absence rules before any data has arrived.  The
    optional *registry* gets mirror metrics (``alerts.evaluations``,
    ``alerts.fired``, ``alerts.resolved``, ``alerts.active``) so the
    alerting plane is observable through the ordinary obs exporters.
    """

    def __init__(self, rules: Sequence[AlertRule],
                 history: MetricHistory, start_ts: float,
                 registry: Optional[Any] = None) -> None:
        names = [rule.name for rule in rules]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigError(f"duplicate rule names: {dupes}")
        schema = {name: field_names for name, _tags, field_names
                  in TABLES}
        for rule in rules:
            table = getattr(rule, "table", None)
            if table is None:
                continue
            if table not in schema:
                raise ConfigError(
                    f"rule {rule.name!r}: unknown history table "
                    f"{table!r}; known: {sorted(schema)}")
            field = getattr(rule, "field", None)
            if field is not None and field not in schema[table]:
                raise ConfigError(
                    f"rule {rule.name!r}: table {table!r} has no "
                    f"field {field!r}; known: {list(schema[table])}")
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        self.history = history
        self.start_ts = float(start_ts)
        self.registry = registry
        self.evaluations = 0
        self.notifications: List[Notification] = []
        self._states = {rule.name: _RuleState() for rule in self.rules}

    # ------------------------------------------------------------------
    # evaluation

    def evaluate(self, now_ts: float) -> List[Notification]:
        """Evaluate every rule at *now_ts*; returns new notifications."""
        self.evaluations += 1
        new: List[Notification] = []
        for rule in self.rules:
            handler = getattr(
                self, "_eval_" + rule.kind.replace("-", "_"))
            breached, value, detail = handler(rule, now_ts)
            state = self._states[rule.name]
            if breached:
                state.streak += 1
                if (not state.firing
                        and state.streak >= rule.for_intervals):
                    state.firing = True
                    state.since_ts = now_ts
                    new.append(self._notify(now_ts, rule, "firing",
                                            value, detail))
            else:
                state.streak = 0
                if state.firing:
                    state.firing = False
                    state.since_ts = None
                    new.append(self._notify(now_ts, rule, "resolved",
                                            value, detail))
        self.notifications.extend(new)
        if self.registry is not None:
            self.registry.counter("alerts.evaluations").inc()
            for notification in new:
                if notification.status == "firing":
                    self.registry.counter("alerts.fired").inc()
                else:
                    self.registry.counter("alerts.resolved").inc()
            self.registry.gauge("alerts.active").set(self.active_count)
        return new

    def _notify(self, ts: float, rule: AlertRule, status: str,
                value: float, detail: str) -> Notification:
        return Notification(ts=ts, rule=rule.name, kind=rule.kind,
                            severity=rule.severity, status=status,
                            value=value, detail=detail)

    # -- one handler per rule kind (RPR013-checked) --------------------

    def _eval_threshold(self, rule: AlertRule, now_ts: float
                        ) -> Tuple[bool, float, str]:
        values = self.history.window_values(
            rule.table, rule.field,
            now_ts - rule.window_hours * HOUR, now_ts, **rule.scope())
        if values.size == 0:
            return False, 0.0, "no data in window"
        value = _aggregate(values, rule.agg)
        breached = _compare(value, rule.op, rule.value)
        detail = (f"{rule.agg}({rule.table}.{rule.field})"
                  f"={value:.3f} {rule.op} {rule.value:g} "
                  f"over {rule.window_hours:g}h")
        return breached, value, detail

    def _eval_absence(self, rule: AlertRule, now_ts: float
                      ) -> Tuple[bool, float, str]:
        newest = self.history.last_ts(rule.table, **rule.scope())
        anchor = self.start_ts if newest is None else newest
        stale_hours = (now_ts - anchor) / HOUR
        breached = stale_hours > rule.stale_hours
        detail = (f"{rule.table} last seen {stale_hours:.2f}h ago "
                  f"(limit {rule.stale_hours:g}h)")
        return breached, stale_hours, detail

    def _eval_burn_rate(self, rule: AlertRule, now_ts: float
                        ) -> Tuple[bool, float, str]:
        n = self.history.window_count(
            rule.table, now_ts - rule.window_hours * HOUR, now_ts,
            **rule.scope())
        observed_rate = n / rule.window_hours
        burn = observed_rate / rule.budget_rate()
        breached = burn > rule.max_burn
        detail = (f"{n} {rule.table} rows in {rule.window_hours:g}h; "
                  f"burn {burn:.2f}x of {rule.budget:g}/"
                  f"{rule.period_days:g}d budget "
                  f"(limit {rule.max_burn:g}x)")
        return breached, burn, detail

    # ------------------------------------------------------------------
    # introspection

    @property
    def active_count(self) -> int:
        return sum(1 for state in self._states.values() if state.firing)

    def firing(self) -> List[Tuple[AlertRule, float]]:
        """Currently-firing rules with their firing timestamps."""
        out = []
        for rule in self.rules:
            state = self._states[rule.name]
            if state.firing:
                out.append((rule, state.since_ts))
        return out

    # ------------------------------------------------------------------
    # persistence (daemon save/restore)

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable evaluation state + notification log.

        The rules themselves are *not* serialized - a restored
        evaluator is constructed from the same rules file, and
        restoring against a different rule set raises.
        """
        return {
            "evaluations": self.evaluations,
            "states": {
                name: {"streak": state.streak,
                       "firing": state.firing,
                       "since_ts": state.since_ts}
                for name, state in sorted(self._states.items())},
            "notifications": [n.payload() for n in self.notifications],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output onto this rule set."""
        saved = set(state["states"])
        current = set(self._states)
        if saved != current:
            raise ConfigError(
                "cannot restore evaluator state: rule set changed "
                f"(saved {sorted(saved)}, current {sorted(current)})")
        self.evaluations = int(state["evaluations"])
        for name, data in state["states"].items():
            rule_state = self._states[name]
            rule_state.streak = int(data["streak"])
            rule_state.firing = bool(data["firing"])
            rule_state.since_ts = (
                None if data["since_ts"] is None
                else float(data["since_ts"]))
        self.notifications = [
            Notification(ts=float(n["ts"]), rule=n["rule"],
                         kind=n["kind"], severity=n["severity"],
                         status=n["status"], value=float(n["value"]),
                         detail=n["detail"])
            for n in state["notifications"]]


def _aggregate(values: np.ndarray, agg: str) -> float:
    if agg == "count":
        return float(values.size)
    if agg == "mean":
        return float(values.mean())
    if agg == "min":
        return float(values.min())
    if agg == "max":
        return float(values.max())
    quantile = {"p50": 50.0, "p90": 90.0, "p99": 99.0}[agg]
    return float(np.percentile(values, quantile))


def _compare(value: float, op: str, bound: float) -> bool:
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    if op == ">":
        return value > bound
    return value >= bound
