"""Notification-log exporters (pure serializers, like repro.obs).

The append-only :class:`~repro.alerts.engine.Notification` log goes
out two ways: JSON-lines (one object per transition, ``sort_keys``
for stable bytes - this is the artifact the determinism tests compare
byte for byte) and a Prometheus ``ALERTS``-style exposition in the
same dialect :mod:`repro.obs.exporters` speaks.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from .engine import Notification, RuleEvaluator

__all__ = ["alerts_to_prometheus", "notifications_to_jsonlines"]


def notifications_to_jsonlines(
        notifications: Sequence[Notification]) -> str:
    """One JSON object per notification, log order, stable bytes."""
    lines = [json.dumps(n.payload(), sort_keys=True)
             for n in notifications]
    return "\n".join(lines) + ("\n" if lines else "")


def alerts_to_prometheus(evaluator: RuleEvaluator) -> str:
    """Prometheus ``ALERTS`` series + notification totals.

    Mirrors Prometheus' own convention: one ``ALERTS{alertname=...,
    alertstate="firing"} 1`` sample per currently-firing rule, plus
    cumulative transition counters.
    """
    out: List[str] = []
    firing = evaluator.firing()
    if firing:
        out.append("# TYPE ALERTS gauge")
        for rule, _since_ts in firing:
            out.append(
                f'ALERTS{{alertname="{rule.name}",'
                f'alertstate="firing",severity="{rule.severity}"}} 1')
    totals = {"firing": 0, "resolved": 0}
    for notification in evaluator.notifications:
        totals[notification.status] += 1
    out.append("# TYPE alerts_notifications_total counter")
    out.append('alerts_notifications_total{status="firing"} '
               f"{totals['firing']}")
    out.append('alerts_notifications_total{status="resolved"} '
               f"{totals['resolved']}")
    out.append("# TYPE alerts_evaluations_total counter")
    out.append(f"alerts_evaluations_total {evaluator.evaluations}")
    return "\n".join(out) + "\n"
