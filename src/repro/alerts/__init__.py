"""Alerting & SLO layer: daemon collector, metric history, rules.

See DESIGN.md §15.  The paper's system was an always-on monitor; this
package is what makes ours *operable* - one
:class:`~repro.alerts.collector.Collector` keeps a single streaming
detector, metrics registry, and time-series history alive across
successive campaign runs, and a declarative
:class:`~repro.alerts.engine.RuleEvaluator` turns watermark advances
into a deterministic firing/resolved notification log.
"""

from .collector import Collector, CollectorObserver, concat_datasets
from .engine import Notification, RuleEvaluator
from .history import MetricHistory
from .notify import alerts_to_prometheus, notifications_to_jsonlines
from .rules import (RULE_KINDS, AbsenceRule, AlertRule, BurnRateRule,
                    ThresholdRule, default_rules, load_rules,
                    parse_rule, parse_rules)

__all__ = [
    "RULE_KINDS",
    "AbsenceRule",
    "AlertRule",
    "BurnRateRule",
    "Collector",
    "CollectorObserver",
    "MetricHistory",
    "Notification",
    "RuleEvaluator",
    "ThresholdRule",
    "alerts_to_prometheus",
    "concat_datasets",
    "default_rules",
    "load_rules",
    "notifications_to_jsonlines",
    "parse_rule",
    "parse_rules",
]
