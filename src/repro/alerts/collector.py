"""The daemon collector: one live detector across successive campaigns.

A single :class:`Collector` owns one
:class:`~repro.core.streaming.StreamingCongestionDetector`, one
:class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.alerts.history.MetricHistory`, and one
:class:`~repro.alerts.engine.RuleEvaluator`, and survives any number
of campaign runs replayed into it (``Clasp.collector()`` /
``repro daemon``).  Each hour boundary drives one pipeline step:

1. assert watermark continuity (simulated time never moves backwards
   across runs - a daemon replaying campaigns out of order is a bug,
   not late data) and advance the detector;
2. export newly-sealed V_H events into the ``vh_events`` history
   table;
3. on the snapshot cadence, write the registry into the ``metrics``
   table and evaluate every rule at the watermark.

Everything is keyed on simulated time and the whole collector state
round-trips through :meth:`Collector.state_json`, so a daemon can be
stopped and restarted mid-sequence with bit-identical downstream
output (the determinism tests enforce this).
"""

from __future__ import annotations

import json
from typing import (Any, Callable, ClassVar, Dict, List, Optional,
                    Sequence, Set, Tuple)

from ..core.campaign import CampaignDataset
from ..core.congestion import (MIN_SAMPLES_PER_DAY, PAPER_THRESHOLD,
                               CongestionReport, PairKey)
from ..core.streaming import StreamingCongestionDetector
from ..core.tsdb import TimeSeriesDB
from ..engine.observers import Observer
from ..errors import ConfigError, ValidationError
from ..obs.metrics import MetricsRegistry
from ..units import HOUR
from .engine import RuleEvaluator
from .history import MetricHistory
from .rules import AlertRule

__all__ = ["Collector", "CollectorObserver", "concat_datasets"]

_STATE_SCHEMA = "repro-collector/v1"


class Collector:
    """One detector + registry + history + rules across campaign runs.

    *start_ts* anchors the detector's day bucketing and the first
    absence-rule horizon; successive runs must replay at or after the
    current watermark.  *snapshot_hours* is the registry-snapshot and
    rule-evaluation cadence (1.0 = every hour boundary).
    """

    def __init__(self, start_ts: float,
                 rules: Sequence[AlertRule] = (),
                 threshold: float = PAPER_THRESHOLD,
                 metric: str = "download",
                 min_samples: int = MIN_SAMPLES_PER_DAY,
                 window_days: Optional[int] = None,
                 lateness_hours: float = 0.0,
                 snapshot_hours: float = 1.0,
                 registry: Optional[MetricsRegistry] = None,
                 history: Optional[MetricHistory] = None) -> None:
        if snapshot_hours <= 0:
            raise ValidationError(
                f"snapshot_hours must be > 0, got {snapshot_hours}")
        self.detector = StreamingCongestionDetector(
            start_ts, self._resolve_offset, threshold=threshold,
            metric=metric, min_samples=min_samples,
            window_days=window_days, lateness_hours=lateness_hours)
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.history = history if history is not None \
            else MetricHistory()
        self.rules: Tuple[AlertRule, ...] = tuple(rules)
        self.evaluator = RuleEvaluator(self.rules, self.history,
                                       start_ts,
                                       registry=self.registry)
        self.snapshot_hours = float(snapshot_hours)
        #: Completed begin_run() calls.
        self.runs = 0
        #: One entry per run: provider + the watermark it started at.
        self.run_log: List[Dict[str, Any]] = []
        self._offset_of: Optional[Callable[[str], float]] = None
        self._provider = "gcp"
        self._exported: Set[Tuple[PairKey, int]] = set()
        self._last_pipeline_ts: Optional[float] = None

    # ------------------------------------------------------------------
    # run attachment

    def _resolve_offset(self, server_id: str) -> float:
        if self._offset_of is None:
            raise ValidationError(
                "collector has no offset resolver; call begin_run() "
                "before feeding it measurements")
        return self._offset_of(server_id)

    def begin_run(self, offset_of: Callable[[str], float],
                  provider: str = "gcp") -> None:
        """Attach the next campaign's offset resolver and provider.

        The detector itself survives untouched - this only swaps where
        *new* server ids resolve their UTC offsets and which provider
        tag the run's history rows carry.
        """
        self._offset_of = offset_of
        self._provider = provider
        self.runs += 1
        self.run_log.append({"run": self.runs, "provider": provider,
                             "watermark": self.detector.watermark})
        self.registry.counter("collector.runs").inc()

    def observer(self) -> "CollectorObserver":
        """An engine observer feeding this collector."""
        return CollectorObserver(self)

    # ------------------------------------------------------------------
    # the pipeline

    def ingest_record(self, record: Any) -> None:
        """One completed measurement: detector + throughput history."""
        accepted = self.detector.observe_record(record)
        self.history.record_test(self._provider, record)
        self.registry.counter("collector.observed").inc()
        if not accepted:
            self.registry.counter("collector.late_dropped").inc()

    def advance(self, ts: float) -> None:
        """One watermark step: seal, export, snapshot, evaluate.

        Unlike the bare detector (where a backwards ``advance`` is a
        merged-replay no-op), daemon time moving *backwards* means
        runs were replayed out of order and raises.
        """
        if ts < self.detector.watermark:
            raise ValidationError(
                f"daemon watermark went backwards: advance({ts}) "
                f"after {self.detector.watermark}; successive runs "
                "must replay in simulated-time order")
        self.detector.advance(ts)
        self._export_sealed()
        if (self._last_pipeline_ts is None
                or ts >= self._last_pipeline_ts
                + self.snapshot_hours * HOUR):
            self.history.snapshot_registry(ts, self.registry.snapshot(),
                                           provider=self._provider)
            self.evaluator.evaluate(ts)
            self._last_pipeline_ts = ts

    def _export_sealed(self) -> None:
        """Append newly-sealed V_H events to the history, exactly once."""
        for pair, day, summary in self.detector.sealed_items():
            key = (pair, day)
            if key in self._exported:
                continue
            self._exported.add(key)
            self.registry.counter("collector.sealed_days").inc()
            for event in summary.events:
                self.history.record_vh_event(
                    self._provider, pair[0], pair[2], event)
                self.registry.counter("collector.vh_events").inc()

    def finalize(self) -> CongestionReport:
        """Seal every open day, flush, evaluate once more, report.

        The returned report equals batch ``detect()`` on the
        concatenation of every run's dataset (see
        :func:`concat_datasets`) - the streaming equivalence contract
        extended across runs.
        """
        report = self.detector.finalize()
        self._export_sealed()
        ts = self.detector.watermark
        self.history.snapshot_registry(ts, self.registry.snapshot(),
                                       provider=self._provider)
        self.evaluator.evaluate(ts)
        self._last_pipeline_ts = ts
        return report

    # ------------------------------------------------------------------
    # persistence (daemon save/restore)

    def state_dict(self) -> Dict[str, Any]:
        """The collector's complete state, exact to the float."""
        return {
            "schema": _STATE_SCHEMA,
            "provider": self._provider,
            "runs": self.runs,
            "run_log": [dict(entry) for entry in self.run_log],
            "snapshot_hours": self.snapshot_hours,
            "last_pipeline_ts": self._last_pipeline_ts,
            "exported": [[list(pair), day]
                         for pair, day in sorted(self._exported)],
            "detector": self.detector.state_dict(),
            "registry": self.registry.dump_state(),
            "history": self.history.db.dump(),
            "evaluator": self.evaluator.state_dict(),
        }

    def state_json(self) -> str:
        """Stable JSON bytes of :meth:`state_dict`."""
        return json.dumps(self.state_dict(), sort_keys=True)

    @classmethod
    def from_state(cls, state: Dict[str, Any],
                   rules: Sequence[AlertRule] = ()) -> "Collector":
        """Rebuild a collector from :meth:`state_dict` output.

        *rules* must be the same rule set the saved collector ran
        (rules files are code, not state); a changed set raises via
        the evaluator's restore check.  ``begin_run()`` must be called
        before the restored collector can bucket *new* server ids.
        """
        if state.get("schema") != _STATE_SCHEMA:
            raise ConfigError(
                f"unsupported collector state schema "
                f"{state.get('schema')!r} (expected {_STATE_SCHEMA!r})")
        detector_state = state["detector"]
        collector = cls(
            start_ts=float(detector_state["start_ts"]), rules=rules,
            snapshot_hours=float(state["snapshot_hours"]),
            history=MetricHistory(
                TimeSeriesDB.from_dump(state["history"])))
        collector.detector.load_state(detector_state)
        collector.registry.restore_state(state["registry"])
        collector.evaluator.restore_state(state["evaluator"])
        collector.runs = int(state["runs"])
        collector.run_log = [dict(entry) for entry in state["run_log"]]
        collector._provider = state["provider"]
        collector._last_pipeline_ts = (
            None if state["last_pipeline_ts"] is None
            else float(state["last_pipeline_ts"]))
        collector._exported = {
            (tuple(pair), int(day)) for pair, day in state["exported"]}
        return collector

    @classmethod
    def from_state_json(cls, text: str,
                        rules: Sequence[AlertRule] = ()) -> "Collector":
        """Rebuild from :meth:`state_json` bytes."""
        return cls.from_state(json.loads(text), rules=rules)


class CollectorObserver(Observer):
    """Feeds a :class:`Collector` from the engine's event bus.

    Works identically on the inline bus and on the merged shard
    replay, exactly like
    :class:`~repro.core.streaming.StreamingDetectorObserver`.
    """

    #: Kinds with no bearing on alerting state.
    IGNORED_EVENTS: ClassVar[Tuple[str, ...]] = (
        "billing-charged", "test-lost", "test-retried",
        "upload-attempted", "vm-preempted", "vm-replaced")

    def __init__(self, collector: Collector) -> None:
        self.collector = collector

    def on_hour_started(self, event: Any) -> None:
        self.collector.advance(event.ts)

    def on_test_completed(self, event: Any) -> None:
        if event.record is None:
            raise ValidationError(
                "TestCompleted event carries no record payload; the "
                "collector cannot bucket the measurement without it")
        self.collector.ingest_record(event.record)

    def on_campaign_finished(self, event: Any) -> None:
        self.collector.advance(event.ts)


def concat_datasets(datasets: Sequence[CampaignDataset]
                    ) -> CampaignDataset:
    """Concatenate successive runs' datasets into one.

    Used to check the daemon-mode equivalence contract: the
    collector's :meth:`Collector.finalize` report must equal batch
    ``detect()`` on this concatenation.  Datasets must be in
    simulated-time order (each run starting at or after the previous
    end); rows are copied per pair in series order, so within-ts ties
    keep the same arrival order both paths see.
    """
    if not datasets:
        raise ValidationError("concat_datasets needs >= 1 dataset")
    for earlier, later in zip(datasets, datasets[1:]):
        if later.start_ts < earlier.end_ts:
            raise ValidationError(
                f"datasets overlap: a run starting at "
                f"{later.start_ts} precedes an end at "
                f"{earlier.end_ts}")
    merged = CampaignDataset(datasets[0].start_ts,
                             datasets[-1].end_ts,
                             provider=datasets[0].provider)
    for dataset in datasets:
        for server_id in sorted(dataset.servers):
            if server_id not in merged.servers:
                merged.add_server_meta(dataset.servers[server_id])
        rows = []
        for pair in dataset.pairs():
            series = dataset.table.series(pair)
            columns = [series[name]
                       for name in merged.table.field_names]
            for i, ts in enumerate(series["ts"]):
                rows.append((float(ts), pair,
                             tuple(float(col[i]) for col in columns)))
        rows.sort(key=lambda row: row[0])  # stable: ties keep order
        merged.table.extend(rows)
        merged.completed_tests += dataset.completed_tests
        merged.failed_tests += dataset.failed_tests
        merged.retried_tests += dataset.retried_tests
        merged.lost.extend(dataset.lost)
    return merged
