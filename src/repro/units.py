"""Units and physical constants used throughout the simulation.

Internally the simulator works in a small set of base units:

* bit rates in **megabits per second** (Mbps),
* data volumes in **bytes**,
* time in **seconds** (simulated epoch seconds; see :mod:`repro.simclock`),
* distances in **kilometres**,
* latency in **milliseconds**.

This module centralises the conversion helpers so magic constants do not
leak into the rest of the code base.
"""

from __future__ import annotations
from .errors import ValidationError

__all__ = [
    "KBIT", "MBIT", "GBIT",
    "KB", "MB", "GB",
    "SECOND", "MINUTE", "HOUR", "DAY", "WEEK",
    "MSS_BYTES",
    "FIBER_KM_PER_MS", "ROUTE_INFLATION",
    "mbps_to_bytes_per_sec", "bytes_per_sec_to_mbps",
    "bytes_to_gb", "gb_to_bytes",
    "ms_to_s", "s_to_ms",
    "mbps", "gbps", "kbps",
    "transfer_time_s", "transferred_bytes",
]

# Bit-rate multipliers, expressed in Mbps.
KBIT = 1.0 / 1000.0
MBIT = 1.0
GBIT = 1000.0

# Data volumes in bytes (decimal, matching how clouds bill egress).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# Durations in seconds.
SECOND = 1
MINUTE = 60
HOUR = 3600
DAY = 86400
WEEK = 7 * DAY

#: TCP maximum segment size used by the throughput model (typical
#: 1500-byte MTU minus 40 bytes of IP+TCP headers).
MSS_BYTES = 1460

#: Light propagates in fibre at roughly 2/3 c ~= 200 km per millisecond.
FIBER_KM_PER_MS = 200.0

#: Real routes are longer than great-circle distance; measurement studies
#: typically observe 1.5-2.5x inflation.  We use a mid value as default.
ROUTE_INFLATION = 1.8


def kbps(value: float) -> float:
    """Return *value* kilobits/s expressed in the Mbps base unit."""
    return value * KBIT


def mbps(value: float) -> float:
    """Return *value* megabits/s expressed in the Mbps base unit."""
    return value * MBIT


def gbps(value: float) -> float:
    """Return *value* gigabits/s expressed in the Mbps base unit."""
    return value * GBIT


def mbps_to_bytes_per_sec(rate_mbps: float) -> float:
    """Convert a bit rate in Mbps to bytes per second."""
    return rate_mbps * 1e6 / 8.0


def bytes_per_sec_to_mbps(rate_bps: float) -> float:
    """Convert bytes per second to a bit rate in Mbps."""
    return rate_bps * 8.0 / 1e6


def ms_to_s(value_ms: float) -> float:
    """Convert milliseconds to seconds."""
    return value_ms / 1000.0


def s_to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds."""
    return value_s * 1000.0


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to decimal gigabytes (how egress is billed)."""
    return n_bytes / GB


def gb_to_bytes(n_gb: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return n_gb * GB


def transfer_time_s(n_bytes: float, rate_mbps: float) -> float:
    """Seconds needed to move *n_bytes* at *rate_mbps*.

    Raises :class:`~repro.errors.ValidationError` for a non-positive
    rate, because a zero rate would silently yield ``inf`` and poison
    schedule arithmetic.
    """
    if rate_mbps <= 0:
        raise ValidationError(f"rate must be positive, got {rate_mbps}")
    return n_bytes / mbps_to_bytes_per_sec(rate_mbps)


def transferred_bytes(rate_mbps: float, duration_s: float) -> float:
    """Bytes moved at *rate_mbps* over *duration_s* seconds."""
    if duration_s < 0:
        raise ValidationError(f"duration must be >= 0, got {duration_s}")
    return mbps_to_bytes_per_sec(rate_mbps) * duration_s
