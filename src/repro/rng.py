"""Deterministic random-number management.

Every stochastic component in the simulator draws from a
:class:`numpy.random.Generator` handed to it by a :class:`SeedTree`.
A seed tree derives independent child streams from a root seed and a
string label, so:

* the whole simulation is reproducible from one integer seed,
* adding a new consumer of randomness does not perturb the streams of
  existing consumers (each label hashes to its own stream), and
* parallel subsystems (per-link noise, per-test jitter, catalog
  generation) never share a stream by accident.
"""

from __future__ import annotations

import hashlib
from typing import Set

import numpy as np

from .errors import ConfigError, ValidationError

__all__ = ["SeedTree", "stable_hash64"]


def stable_hash64(text: str) -> int:
    """Return a stable (process-independent) 64-bit hash of *text*.

    Python's builtin :func:`hash` is salted per process, so it cannot be
    used for reproducible seeding.  We take the first 8 bytes of the
    BLAKE2b digest instead.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class SeedTree:
    """Hierarchical, label-addressed source of independent RNG streams.

    >>> tree = SeedTree(42)
    >>> gen = tree.generator("netsim.traffic")
    >>> child = tree.child("cloud")
    >>> gen2 = child.generator("billing")

    Two trees built from the same root seed produce identical streams for
    identical label paths.
    """

    def __init__(self, root_seed: int, _path: str = "") -> None:
        if not isinstance(root_seed, int):
            raise TypeError(f"root_seed must be int, got {type(root_seed).__name__}")
        self._root_seed = root_seed
        self._path = _path
        self._handed_out: Set[str] = set()

    @property
    def root_seed(self) -> int:
        """The integer the whole tree derives from."""
        return self._root_seed

    @property
    def path(self) -> str:
        """Slash-joined label path of this node (empty for the root)."""
        return self._path

    def _derive(self, label: str) -> int:
        if not label:
            raise ValidationError("label must be a non-empty string")
        full = f"{self._path}/{label}" if self._path else label
        return (self._root_seed ^ stable_hash64(full)) & 0xFFFF_FFFF_FFFF_FFFF

    def child(self, label: str) -> "SeedTree":
        """Return a sub-tree rooted at *label*."""
        full = f"{self._path}/{label}" if self._path else label
        return SeedTree(self._root_seed, full)

    def seed(self, label: str) -> int:
        """Return the derived 64-bit seed for *label* under this node."""
        return self._derive(label)

    def generator(self, label: str, *,
                  allow_reuse: bool = False) -> np.random.Generator:
        """Return a fresh, independent generator for *label*.

        Requesting the same label twice from one node raises
        :class:`~repro.errors.ConfigError`: the two call sites would
        silently share a stream, which is almost always a labelling bug
        that perturbs every consumer downstream.  Pass
        ``allow_reuse=True`` at call sites that *intend* to re-derive an
        identical stream (e.g. rebuilding a cached noise array).
        """
        if not allow_reuse:
            if label in self._handed_out:
                raise ConfigError(
                    f"RNG label {label!r} requested twice from seed-tree "
                    f"node {self._path or '<root>'!r}; two consumers would "
                    f"share one stream (pass allow_reuse=True if the "
                    f"re-derivation is intentional)")
            self._handed_out.add(label)
        return np.random.default_rng(self._derive(label))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SeedTree(root_seed={self._root_seed}, path={self._path!r})"
