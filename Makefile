# Development entry points.  `make check` is the single gate CI and
# contributors run: repro.lint invariants (per-file and cross-file), a
# SARIF smoke test, then the test suite (with the repro.faults coverage
# floor when pytest-cov is available).

PYTHON ?= python

.PHONY: check lint lint-graph test golden bench-shard bench-streaming \
	bench-alerts bench-trend

check:
	$(PYTHON) scripts/check.py

lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/repro

lint-graph:
	PYTHONPATH=src $(PYTHON) -m repro.lint src/repro --graph

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q

golden:
	$(PYTHON) scripts/regen_golden.py

# Regenerate BENCH_campaign.json (the shards x batch perf trajectory).
bench-shard:
	PYTHONPATH=src $(PYTHON) -m pytest -q -p no:cacheprovider benchmarks/bench_shard_scale.py

# Re-anchor the streaming_detect point (incremental vs rescan + serving).
bench-streaming:
	PYTHONPATH=src $(PYTHON) -m pytest -q -p no:cacheprovider benchmarks/bench_streaming.py

# Re-anchor the alerts_eval point (rule evaluation riding the collector).
bench-alerts:
	PYTHONPATH=src $(PYTHON) -m pytest -q -p no:cacheprovider benchmarks/bench_alerts.py

# Perf-trend gate: fresh batch + streaming ratios vs the committed anchors.
bench-trend:
	$(PYTHON) scripts/bench_trend.py
