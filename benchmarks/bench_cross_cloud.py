"""Cross-cloud matrix throughput: pairs/sec across a 3-provider fleet.

Builds one scenario carrying all three providers (gcp + aws +
openstack WANs in a shared Internet), times :func:`run_matrix` at
``shards=4`` over two regions per provider, runs one provider-choice
analysis, and records a ``cross_cloud_matrix`` point into
``BENCH_campaign.json`` (schema ``bench-campaign/v4``, documented in
``benchmarks/README.md``) alongside the shard-scaling rows - the
existing keys in that file are preserved, so either bench can
re-anchor its own point independently.

Wall-clock timing is inherently nondeterministic; this file lives in
``benchmarks/`` (not ``src/repro``) exactly so the lint determinism
rules do not apply to it.
"""

import json
import pathlib
import time

from repro.core.crosscloud import provider_choice, run_matrix
from repro.experiments.scenario import build_scenario
from repro.report.crosscloud import render_matrix
from repro.report.tables import TextTable

SEED = 7
SCALE = 0.05
PROVIDERS = ("aws", "openstack")  # joins the gcp primary
REGIONS_PER_PROVIDER = 2
SHARDS = 4

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

SCHEMA = "bench-campaign/v4"


def test_bench_cross_cloud(emit):
    build_start = time.perf_counter()
    scenario = build_scenario(seed=SEED, scale=SCALE, stories=False,
                              providers=PROVIDERS)
    build_wall = time.perf_counter() - build_start

    start = time.perf_counter()
    matrix = run_matrix(scenario.fleet,
                        regions_per_provider=REGIONS_PER_PROVIDER,
                        shards=SHARDS)
    matrix_wall = time.perf_counter() - start

    start = time.perf_counter()
    choice = provider_choice(scenario.fleet, scenario.catalog,
                             scenario.clasp.prefix2as, "gcp", "aws",
                             seed=SEED)
    choice_wall = time.perf_counter() - start

    reachable = sum(1 for c in matrix.cells if c.reachable)
    point = {
        "providers": list(scenario.fleet.names()),
        "regions_per_provider": REGIONS_PER_PROVIDER,
        "shards": SHARDS,
        "endpoints": len(matrix.endpoints),
        "pairs": matrix.n_pairs,
        "reachable_pairs": reachable,
        "build_wall_s": round(build_wall, 3),
        "wall_s": round(matrix_wall, 3),
        "pairs_per_sec": round(matrix.n_pairs / matrix_wall, 1),
        "provider_choice_wall_s": round(choice_wall, 3),
        "provider_choice_candidates": len(choice.selection.candidates),
    }

    table = TextTable(
        ["metric", "value"],
        title=f"cross-cloud matrix: {point['endpoints']} endpoints / "
              f"{point['pairs']} pairs at shards={SHARDS}")
    for key in ("wall_s", "pairs_per_sec", "reachable_pairs",
                "provider_choice_wall_s", "provider_choice_candidates"):
        table.add_row([key, point[key]])
    emit("bench_cross_cloud", table.render() + "\n\n"
         + render_matrix(matrix))

    # Merge into the campaign trajectory file without clobbering the
    # shard-scaling rows (and vice versa - see bench_shard_scale.py).
    doc = {}
    if BENCH_PATH.exists():
        doc = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    doc["schema"] = SCHEMA
    doc["cross_cloud_matrix"] = point
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")

    assert reachable == matrix.n_pairs, (
        f"{matrix.n_pairs - reachable} unreachable endpoint pairs - "
        f"every provider WAN buys transit, so all pairs must route")
    cross = [c for c in matrix.cells if c.cross_provider]
    assert cross, "no cross-provider pairs in a 3-provider fleet"
    assert point["pairs_per_sec"] > 0.0
