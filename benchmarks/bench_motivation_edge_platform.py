"""Motivation: why measure from the cloud instead of edge platforms.

Quantifies the paper's introduction on the same synthetic Internet: a
RIPE-Atlas-style volunteer platform has (a) vantage points biased into
large ISPs, (b) residential access caps, and (c) per-probe throughput
quotas - while the speed test catalogs reach many more networks with
well-provisioned servers, and cloud VMs can test them hourly.
"""

from repro.report.tables import TextTable, format_percent
from repro.rng import SeedTree
from repro.tools.edgeplatform import EdgePlatform


def _evaluate(cache):
    scenario = cache.scenario
    platform = EdgePlatform(scenario.internet,
                            n_probes=max(60, len(scenario.catalog) // 4),
                            seeds=SeedTree(4321))
    edge_asns = scenario.internet.edge_asns
    catalog_asns = {s.asn for s in scenario.catalog}
    catalog_coverage = sum(1 for a in edge_asns if a in catalog_asns) \
        / len(edge_asns)
    slow_probes = sum(1 for p in platform.probes
                      if p.access_mbps < 1000.0) / len(platform.probes)
    clasp_daily_tests = sum(
        len(cache.topology_plan(r).server_ids) * 24
        for r in scenario.us_regions)
    return {
        "n_probes": len(platform.probes),
        "probe_coverage": platform.coverage_of(edge_asns),
        "catalog_coverage": catalog_coverage,
        "big_isp_fraction": platform.big_isp_probe_fraction(),
        "slow_access_fraction": slow_probes,
        "edge_daily_tests": platform.max_daily_tests(),
        "clasp_daily_tests": clasp_daily_tests,
    }


def test_motivation_edge_platform(benchmark, cache, emit):
    result = benchmark.pedantic(_evaluate, args=(cache,),
                                rounds=1, iterations=1)
    table = TextTable(["metric", "edge platform", "CLASP"],
                      title="Motivation: edge platform vs cloud-based "
                            "speed tests")
    table.add_row(["edge-AS coverage",
                   format_percent(result["probe_coverage"]),
                   format_percent(result["catalog_coverage"])])
    table.add_row(["VPs in big ISPs",
                   format_percent(result["big_isp_fraction"]),
                   "server-diverse"])
    table.add_row(["VPs below 1 Gbps access",
                   format_percent(result["slow_access_fraction"]),
                   "0% (servers >= 1 Gbps)"])
    table.add_row(["throughput tests per day",
                   result["edge_daily_tests"],
                   result["clasp_daily_tests"]])
    emit("motivation_edge_platform", table.render())

    assert result["probe_coverage"] < result["catalog_coverage"]
    assert result["big_isp_fraction"] > 0.5
    assert result["slow_access_fraction"] > 0.5
    assert result["edge_daily_tests"] < result["clasp_daily_tests"]
