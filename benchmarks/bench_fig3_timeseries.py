"""Fig. 3: a congested pair's two-day download time series."""

from repro.experiments import fig3


def test_fig3_timeseries(benchmark, cache, emit):
    result = benchmark.pedantic(fig3.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("fig3", fig3.render(result))

    assert result.ts.size >= 24, "need at least a day of hourly samples"
    assert result.n_congested_hours >= 1
    # Congestion labels must correspond to throughput below the
    # day-peak threshold.
    assert (result.v_h[result.congested_mask] > result.threshold).all()
