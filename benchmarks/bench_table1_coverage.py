"""Table 1: pilot scans and topology-based selection coverage."""

from repro.experiments import table1


def test_table1_coverage(benchmark, cache, emit):
    result = benchmark.pedantic(table1.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("table1", table1.render(result))

    rows = result.by_region()
    assert set(rows) == set(cache.scenario.table1_regions)
    for row in result.rows:
        # Shape checks against the paper's bands (substrate-scaled).
        assert row.n_interdomain_links > 100
        assert row.n_links_traversed <= row.n_interdomain_links
        assert 0 < row.n_links_covered <= row.n_links_traversed
        assert 0.0 < row.coverage <= 1.0
