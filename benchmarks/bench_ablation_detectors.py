"""Ablation: the deployed V_H detector vs the future-work detectors.

Scores the paper's variability-threshold detector and the two
section-5 proposals (autocorrelation, 2-state Gaussian HMM) against
the simulator's ground truth (was the ingress path actually saturated
when each test ran) - a comparison the paper itself could not make.
"""

import numpy as np

from repro.core.detectors import (
    AutocorrelationDetector,
    HmmDetector,
    VariabilityDetector,
)
from repro.core.validation import congestion_oracle, detector_scores
from repro.report.tables import TextTable, format_percent

DETECTORS = (VariabilityDetector(), AutocorrelationDetector(),
             HmmDetector())


def _evaluate(cache, max_pairs=40):
    dataset = cache.topology_dataset()
    scenario = cache.scenario
    rows = {d.name: [] for d in DETECTORS}
    evaluated = 0
    for pair in dataset.pairs():
        if evaluated >= max_pairs:
            break
        ts, truth = congestion_oracle(scenario.clasp.platform,
                                      scenario.catalog, dataset, pair)
        if truth.sum() < 3:
            continue
        evaluated += 1
        for detector in DETECTORS:
            detection = detector.detect(dataset, pair)
            rows[detector.name].append(
                detector_scores(detection, ts, truth))
    return evaluated, rows


def test_ablation_detectors(benchmark, cache, emit):
    evaluated, rows = benchmark.pedantic(_evaluate, args=(cache,),
                                         rounds=1, iterations=1)
    assert evaluated > 0, "no saturated pairs to score against"

    table = TextTable(
        ["detector", "pairs", "precision", "recall", "F1"],
        title="Ablation: congestion detectors vs ground truth "
              f"({evaluated} saturated pairs)")
    f1 = {}
    for name, scores in rows.items():
        precision = float(np.mean([s.precision for s in scores]))
        recall = float(np.mean([s.recall for s in scores]))
        f1[name] = float(np.mean([s.f1 for s in scores]))
        table.add_row([name, len(scores), format_percent(precision),
                       format_percent(recall), f"{f1[name]:.3f}"])
    emit("ablation_detectors", table.render())

    # The deployed method must be competitive: within 25% of the best.
    best = max(f1.values())
    assert f1["variability"] >= best * 0.75
    # Every detector must beat the trivial all-negative baseline.
    for name, value in f1.items():
        assert value > 0.1, name
